"""Seeded random-program generation for the differential oracle.

Programs are built directly at the ISA level (no mini-C detour) so the
oracle can exercise machine behaviours the compiler never emits: mixed
int/float traffic, phase marks mid-loop, stores that alias loads,
bigint growth past 64 bits, input exhaustion and division faults.

The construction is *structured*: straight-line blocks, bounded counted
loops (nesting ≤ 2) and forward if-skips, so every generated program
terminates on its own — and the oracle additionally runs everything
under an instruction budget, so even a generator bug cannot hang a
check.  Faulting programs (division by zero, exhausted inputs) are kept,
not regenerated: an :class:`~repro.machine.errors.ExecutionError` must
be raised *identically* by a fast path and its reference, which makes
error timing part of the equivalence being checked.

Register discipline keeps the interpreter total: integer opcodes only
ever see the int register pool, FP opcodes the float pool, loop
counters and the address-index register are reserved, and shift
amounts are immediates in ``[0, 8]`` — so no generated program can
raise a *Python*-level ``TypeError`` (as opposed to a machine-level
:class:`~repro.machine.errors.ExecutionError`, which is fair game).

Determinism: everything derives from one ``random.Random(seed)``; the
same seed yields the same program and inputs on every platform and
Python version.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Tuple

from ..isa import Instruction, Number, Opcode, Program, build_program

#: Register pools (see repro.isa.registers conventions; all caller-saved
#: temporaries, so nothing collides with compiled-code conventions).
INT_REGS = (4, 5, 6, 7, 8, 9, 10, 11)
FLOAT_REGS = (16, 17, 18, 19)
COUNTER_REGS = (12, 13)   # one per loop-nesting depth
INDEX_REG = 15            # masked effective-address index

#: Data layout: one integer region and one float region, each a
#: power-of-two so `andi` masking keeps every effective address inside.
REGION_WORDS = 8
INT_BASE, FLOAT_BASE = 0, REGION_WORDS
REGION_MASK = REGION_WORDS - 1

_INT_BINOPS = (
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE,
    # Register divisors may legitimately be zero: DivisionByZero must
    # surface identically on both sides of every pair, so keep these in.
    Opcode.DIV, Opcode.MOD,
)
_INT_IMMOPS = (
    Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.ANDI, Opcode.ORI,
    Opcode.XORI, Opcode.SLTI, Opcode.SLEI, Opcode.SEQI, Opcode.SNEI,
    Opcode.SHLI, Opcode.SHRI, Opcode.DIVI, Opcode.MODI,
)
_FP_BINOPS = (Opcode.FADD, Opcode.FSUB, Opcode.FMUL)
_FP_CMPOPS = (Opcode.FSLT, Opcode.FSLE, Opcode.FSEQ, Opcode.FSNE)


@dataclasses.dataclass(frozen=True)
class CheckCase:
    """One generated oracle input: a program, its input stream, a seed."""

    seed: int
    program: Program
    inputs: Tuple[Number, ...]


class _Builder:
    """Accumulates instructions; patches forward targets after the fact."""

    def __init__(self) -> None:
        self.code: List[Instruction] = []

    def emit(self, opcode: Opcode, dest=None, srcs=(), imm=None, target=None) -> int:
        self.code.append(
            Instruction(opcode, dest=dest, srcs=tuple(srcs), imm=imm, target=target)
        )
        return len(self.code) - 1

    def patch_target(self, index: int, target: int) -> None:
        self.code[index] = dataclasses.replace(self.code[index], target=target)


def _emit_simple(rng: random.Random, builder: _Builder, allow_input: bool) -> None:
    """One straight-line instruction (no control flow)."""
    emit = builder.emit
    choice = rng.random()
    if choice < 0.30:
        op = rng.choice(_INT_BINOPS)
        emit(op, dest=rng.choice(INT_REGS),
             srcs=(rng.choice(INT_REGS), rng.choice(INT_REGS)))
    elif choice < 0.52:
        op = rng.choice(_INT_IMMOPS)
        if op in (Opcode.DIVI, Opcode.MODI):
            imm = rng.choice((-7, -3, -2, 2, 3, 5, 7))
        elif op in (Opcode.SHLI, Opcode.SHRI):
            imm = rng.randrange(0, 9)
        elif op is Opcode.MULI:
            imm = rng.choice((-9, -3, -2, 2, 3, 5, 9))
        else:
            imm = rng.randint(-50, 50)
        emit(op, dest=rng.choice(INT_REGS), srcs=(rng.choice(INT_REGS),), imm=imm)
    elif choice < 0.58:
        emit(Opcode.LI, dest=rng.choice(INT_REGS), imm=rng.randint(-100, 100))
    elif choice < 0.64:
        # Masked integer load: andi keeps the index in [0, REGION_WORDS).
        emit(Opcode.ANDI, dest=INDEX_REG, srcs=(rng.choice(INT_REGS),),
             imm=REGION_MASK)
        emit(Opcode.LD, dest=rng.choice(INT_REGS), srcs=(INDEX_REG,), imm=INT_BASE)
    elif choice < 0.70:
        emit(Opcode.ANDI, dest=INDEX_REG, srcs=(rng.choice(INT_REGS),),
             imm=REGION_MASK)
        emit(Opcode.ST, srcs=(rng.choice(INT_REGS), INDEX_REG), imm=INT_BASE)
    elif choice < 0.76:
        op = rng.choice(_FP_BINOPS)
        emit(op, dest=rng.choice(FLOAT_REGS),
             srcs=(rng.choice(FLOAT_REGS), rng.choice(FLOAT_REGS)))
    elif choice < 0.80:
        emit(rng.choice(_FP_CMPOPS), dest=rng.choice(INT_REGS),
             srcs=(rng.choice(FLOAT_REGS), rng.choice(FLOAT_REGS)))
    elif choice < 0.84:
        emit(Opcode.FLI, dest=rng.choice(FLOAT_REGS),
             imm=round(rng.uniform(-8.0, 8.0), 3))
    elif choice < 0.87:
        emit(Opcode.ANDI, dest=INDEX_REG, srcs=(rng.choice(INT_REGS),),
             imm=REGION_MASK)
        emit(Opcode.FLD, dest=rng.choice(FLOAT_REGS), srcs=(INDEX_REG,),
             imm=FLOAT_BASE)
    elif choice < 0.90:
        emit(Opcode.ANDI, dest=INDEX_REG, srcs=(rng.choice(INT_REGS),),
             imm=REGION_MASK)
        emit(Opcode.FST, srcs=(rng.choice(FLOAT_REGS), INDEX_REG), imm=FLOAT_BASE)
    elif choice < 0.93:
        emit(Opcode.CVTIF, dest=rng.choice(FLOAT_REGS), srcs=(rng.choice(INT_REGS),))
    elif choice < 0.95:
        emit(Opcode.CVTFI, dest=rng.choice(INT_REGS), srcs=(rng.choice(FLOAT_REGS),))
    elif choice < 0.97 and allow_input:
        if rng.random() < 0.5:
            emit(Opcode.IN, dest=rng.choice(INT_REGS))
        else:
            emit(Opcode.FIN, dest=rng.choice(FLOAT_REGS))
    else:
        emit(Opcode.OUT, srcs=(rng.choice(INT_REGS),))


def _emit_segment(rng: random.Random, builder: _Builder, depth: int) -> None:
    """A block, a bounded counted loop, or a forward if-skip."""
    emit = builder.emit
    roll = rng.random()
    if depth < 2 and roll < 0.45:
        counter = COUNTER_REGS[depth]
        trips = rng.randint(1, 8)
        emit(Opcode.LI, dest=counter, imm=trips)
        top = len(builder.code)
        for _ in range(rng.randint(1, 3)):
            if depth < 1 and rng.random() < 0.35:
                _emit_segment(rng, builder, depth + 1)
            else:
                _emit_simple(rng, builder, allow_input=False)
        if rng.random() < 0.25:
            emit(Opcode.PHASE, imm=rng.choice((1, 2)))
        emit(Opcode.SUBI, dest=counter, srcs=(counter,), imm=1)
        emit(Opcode.BNEZ, srcs=(counter,), target=top)
    elif roll < 0.60:
        branch = emit(Opcode.BEQZ, srcs=(rng.choice(INT_REGS),), target=0)
        for _ in range(rng.randint(1, 3)):
            _emit_simple(rng, builder, allow_input=(depth == 0))
        builder.patch_target(branch, len(builder.code))
    else:
        for _ in range(rng.randint(1, 4)):
            _emit_simple(rng, builder, allow_input=(depth == 0))


def generate_case(seed: int, segments: Optional[int] = None) -> CheckCase:
    """Build the deterministic random program and inputs for ``seed``."""
    rng = random.Random(seed)
    builder = _Builder()
    emit = builder.emit

    # Seed the register pools so the first ops see varied values.
    for register in INT_REGS[: rng.randint(3, len(INT_REGS))]:
        emit(Opcode.LI, dest=register, imm=rng.randint(-40, 40))
    for register in FLOAT_REGS[: rng.randint(2, len(FLOAT_REGS))]:
        emit(Opcode.FLI, dest=register, imm=round(rng.uniform(-5.0, 5.0), 3))
    emit(Opcode.PHASE, imm=1)

    for index in range(segments if segments is not None else rng.randint(3, 7)):
        _emit_segment(rng, builder, depth=0)
        if index == 0:
            emit(Opcode.PHASE, imm=2)

    # Make end-state observable even for output-free bodies.
    emit(Opcode.OUT, srcs=(rng.choice(INT_REGS),))
    emit(Opcode.HALT)

    data = {INT_BASE + offset: rng.randint(-30, 30) for offset in range(REGION_WORDS)}
    data.update(
        {
            FLOAT_BASE + offset: round(rng.uniform(-9.0, 9.0), 3)
            for offset in range(REGION_WORDS)
        }
    )
    # Occasionally too short on purpose: InputExhausted is a legitimate
    # observation the oracle compares across paths.
    inputs = tuple(rng.randint(-99, 99) for _ in range(rng.randint(0, 24)))
    program = build_program(
        builder.code, data=data, name=f"check-seed-{seed}"
    )
    return CheckCase(seed=seed, program=program, inputs=inputs)


__all__ = ["CheckCase", "generate_case"]
