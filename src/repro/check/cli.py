"""``python -m repro check`` — run the oracle and the lint from the shell.

Exit status is 0 only when every selected oracle pair agrees and the
lint reports no non-allowlisted violation.  On an oracle divergence the
minimized reproducer is written under ``--artifact-dir`` (default
``check-artifacts/``) so CI can upload it.

Typical invocations::

    python -m repro check                       # full run, default seeds
    python -m repro check --smoke               # pinned CI configuration
    python -m repro check --seed 41 --programs 30
    python -m repro check --pairs trace-replay-disk,profile-io-merge
    python -m repro check --list                # show pairs and exit
    python -m repro check --no-oracle           # lint only
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .lint import load_allowlist, run_lint
from .oracle import DEFAULT_BUDGET, all_pairs, run_oracle

#: The CI configuration: one pinned seed base so a red build is
#: reproducible with the exact command it prints.
SMOKE_SEED = 1997
SMOKE_PROGRAMS = 6


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"pinned CI run: seed {SMOKE_SEED}, {SMOKE_PROGRAMS} programs",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="first generator seed (default 1)"
    )
    parser.add_argument(
        "--programs", type=int, default=12,
        help="number of generated programs per pair (default 12)",
    )
    parser.add_argument(
        "--budget", type=int, default=DEFAULT_BUDGET,
        help=f"dynamic-instruction budget per run (default {DEFAULT_BUDGET})",
    )
    parser.add_argument(
        "--pairs",
        help="comma-separated subset of oracle pairs (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the oracle pairs and exit"
    )
    parser.add_argument(
        "--no-oracle", action="store_true", help="skip the differential oracle"
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the static invariant lint"
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="report the first divergence without shrinking the reproducer",
    )
    parser.add_argument(
        "--artifact-dir", default="check-artifacts",
        help="where divergence reproducers are written (default check-artifacts/)",
    )
    parser.add_argument(
        "--allowlist", default=None,
        help="lint allowlist file (default: .repro-check-allowlist beside "
        "the repo's src/, when present)",
    )


def _default_allowlist() -> Optional[Path]:
    candidate = Path(__file__).resolve().parents[3] / ".repro-check-allowlist"
    return candidate if candidate.is_file() else None


def run_from_arguments(arguments: argparse.Namespace) -> int:
    if arguments.list:
        for pair in all_pairs():
            kind = "generated programs" if pair.uses_program else "fixed workload"
            print(f"{pair.name:<22} [{kind}] {pair.description}")
        return 0

    failed = False

    if not arguments.no_oracle:
        if arguments.smoke:
            seed, programs = SMOKE_SEED, SMOKE_PROGRAMS
        else:
            seed, programs = arguments.seed, arguments.programs
        pairs = arguments.pairs.split(",") if arguments.pairs else None
        try:
            report = run_oracle(
                seeds=range(seed, seed + programs),
                budget=arguments.budget,
                pairs=pairs,
                minimize=not arguments.no_minimize,
            )
        except ValueError as error:
            known = ", ".join(pair.name for pair in all_pairs())
            print(f"repro check: {error} (known: {known})", file=sys.stderr)
            return 2
        print(report.format_text())
        if not report.passed:
            failed = True
            artifact_dir = Path(arguments.artifact_dir)
            artifact_dir.mkdir(parents=True, exist_ok=True)
            for result in report.failures:
                if result.reproducer is None:
                    continue
                path = artifact_dir / f"divergence-{result.pair.name}.asm"
                path.write_text(result.reproducer, encoding="utf-8")
                print(f"  reproducer written to {path}", file=sys.stderr)
            print(
                f"reproduce with: python -m repro check --seed {seed} "
                f"--programs {programs} --budget {arguments.budget}",
                file=sys.stderr,
            )

    if not arguments.no_lint:
        allowlist_path = (
            Path(arguments.allowlist) if arguments.allowlist else _default_allowlist()
        )
        allowlist = load_allowlist(allowlist_path) if allowlist_path else frozenset()
        violations = run_lint(allowlist=allowlist)
        if violations:
            failed = True
            for violation in violations:
                print(violation.format())
            print(
                f"lint: FAIL — {len(violations)} violation(s); grandfather "
                "pre-existing ones in .repro-check-allowlist (key: "
                "'<rule> <path> <detail>')"
            )
        else:
            suffix = f" ({len(allowlist)} allowlisted)" if allowlist else ""
            print(f"lint: PASS{suffix}")

    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check", description="differential oracle + invariant lint"
    )
    add_arguments(parser)
    return run_from_arguments(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
