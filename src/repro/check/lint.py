"""Static invariant lint over the source tree.

Four rules, each guarding an invariant the differential oracle can only
probe dynamically:

``nondet-call``
    No wall-clock, entropy or unseeded randomness in the deterministic
    core (``machine/``, ``core/``, ``predictors/``, ``profiling/``):
    ``time.time``, ``os.urandom``, ``uuid.uuid4`` and module-level
    ``random.*`` calls are flagged (``random.Random(seed)`` instances
    are fine — seeded RNGs are how the repo *does* randomness).
    ``time.perf_counter`` is deliberately exempt: it only feeds
    telemetry timers, never results.
``set-iteration``
    No iteration over unordered sets in the deterministic core — a
    ``for`` loop (or comprehension) directly over a set literal, set
    comprehension or ``set()``/``frozenset()`` call makes trace and
    profile output order depend on hash seeds.  Wrap in ``sorted``.
``metric-name``
    Every ``counter``/``gauge``/``timer`` name literal anywhere in
    ``src/`` must be declared in
    :mod:`repro.telemetry.metrics` — exactly, or via a registered
    dynamic-family prefix for f-string names.  Span names are scoped
    labels, not snapshot metrics, and are not checked.
``pickle-boundary``
    Nothing unpicklable may cross the worker boundary in ``runner/``:
    a ``lambda`` or a function defined inside another function, passed
    to a pool ``submit``, dies in the child with an opaque
    ``PicklingError``.

Findings are keyed ``"<rule> <path> <detail>"`` — stable across line
renumbering — so a committed allowlist can grandfather pre-existing
violations while new ones fail the build.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from ..telemetry.metrics import is_known_metric

#: Top-level packages under ``src/repro/`` whose behaviour must be a pure
#: function of (program, inputs, seed).
DETERMINISTIC_PACKAGES = ("machine", "core", "predictors", "profiling")

_NONDET_CALLS = {
    ("time", "time"): "wall-clock time.time()",
    ("os", "urandom"): "os.urandom() entropy",
    ("uuid", "uuid4"): "uuid.uuid4() entropy",
}
_RANDOM_SAFE = {"Random"}  # seeded instances; everything else on the module is global state

_METRIC_METHODS = ("counter", "gauge", "timer")


@dataclasses.dataclass(frozen=True)
class Violation:
    """One lint finding."""

    rule: str
    path: str
    line: int
    detail: str
    message: str

    @property
    def key(self) -> str:
        """Allowlist key: stable across line renumbering."""
        return f"{self.rule} {self.path} {self.detail}"

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as a name tuple, or ``None`` for anything fancier."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _FileLinter(ast.NodeVisitor):
    def __init__(self, rel_path: str, deterministic: bool, in_runner: bool) -> None:
        self.rel_path = rel_path
        self.deterministic = deterministic
        self.in_runner = in_runner
        self.violations: List[Violation] = []
        self._function_stack: List[ast.AST] = []
        self._nested_defs: set = set()

    def _flag(self, rule: str, node: ast.AST, detail: str, message: str) -> None:
        self.violations.append(
            Violation(rule, self.rel_path, getattr(node, "lineno", 0), detail, message)
        )

    # -- nondet-call ----------------------------------------------------

    def _check_nondet_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted in _NONDET_CALLS:
            name = ".".join(dotted)
            self._flag(
                "nondet-call", node, name,
                f"{_NONDET_CALLS[dotted]} in a deterministic module",
            )
        elif len(dotted) == 2 and dotted[0] == "random":
            if dotted[1] not in _RANDOM_SAFE:
                name = ".".join(dotted)
                self._flag(
                    "nondet-call", node, name,
                    f"global-state {name}() in a deterministic module; "
                    "use a seeded random.Random instance",
                )

    # -- metric-name ----------------------------------------------------

    def _check_metric_name(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_METHODS
            and node.args
        ):
            return
        argument = node.args[0]
        if isinstance(argument, ast.Constant) and isinstance(argument.value, str):
            name = argument.value
            if not is_known_metric(name):
                self._flag(
                    "metric-name", node, name,
                    f"metric {name!r} is not declared in repro.telemetry.metrics",
                )
        elif isinstance(argument, ast.JoinedStr):
            prefix = ""
            for value in argument.values:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    prefix += value.value
                else:
                    break
            if not prefix or not is_known_metric(prefix + "x"):
                detail = f"f'{prefix}...'"
                self._flag(
                    "metric-name", node, detail,
                    f"dynamic metric name {detail} matches no registered "
                    "prefix in repro.telemetry.metrics",
                )

    # -- set-iteration --------------------------------------------------

    def _check_set_iteration(self, iter_node: ast.AST, node: ast.AST) -> None:
        if self.deterministic and _is_set_expression(iter_node):
            self._flag(
                "set-iteration", node, "for-over-set",
                "iteration over an unordered set in a deterministic module; "
                "wrap in sorted(...)",
            )

    # -- pickle-boundary ------------------------------------------------

    def _check_pickle_boundary(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "submit"
        ):
            return
        for argument in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(argument, ast.Lambda):
                self._flag(
                    "pickle-boundary", node, "lambda-to-submit",
                    "lambda passed to a pool submit(); lambdas do not "
                    "pickle across the worker boundary",
                )
            elif isinstance(argument, ast.Name) and argument.id in self._nested_defs:
                self._flag(
                    "pickle-boundary", node, f"closure:{argument.id}",
                    f"locally defined function {argument.id!r} passed to a "
                    "pool submit(); nested functions do not pickle",
                )

    # -- visitors -------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.deterministic:
            self._check_nondet_call(node)
        self._check_metric_name(node)
        if self.in_runner:
            self._check_pickle_boundary(node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_set_iteration(generator.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set *from* a set is order-free; only ordered
        # collections built from sets are flagged.
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        if self._function_stack and self.in_runner:
            self._nested_defs.add(node.name)
        self._function_stack.append(node)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def lint_source(
    source: str, rel_path: str
) -> List[Violation]:
    """Lint one file's source text (``rel_path`` is src-relative)."""
    parts = Path(rel_path).parts
    package = parts[1] if len(parts) > 2 and parts[0] == "repro" else ""
    linter = _FileLinter(
        rel_path,
        deterministic=package in DETERMINISTIC_PACKAGES,
        in_runner=package == "runner",
    )
    linter.visit(ast.parse(source, filename=rel_path))
    return linter.violations


def load_allowlist(path: Union[str, Path]) -> FrozenSet[str]:
    """Read grandfathered violation keys; ``#`` lines are comments."""
    entries = set()
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return frozenset(entries)


def run_lint(
    src_root: Optional[Union[str, Path]] = None,
    allowlist: Iterable[str] = (),
) -> List[Violation]:
    """Lint every ``.py`` file under ``src_root`` (default: this tree).

    Returns violations whose :attr:`Violation.key` is not allowlisted,
    sorted by path then line.
    """
    if src_root is None:
        src_root = Path(__file__).resolve().parents[2]  # .../src
    src_root = Path(src_root)
    allowed = frozenset(allowlist)
    violations: List[Violation] = []
    for path in sorted(src_root.rglob("*.py")):
        rel_path = path.relative_to(src_root).as_posix()
        source = path.read_text(encoding="utf-8")
        violations.extend(lint_source(source, rel_path))
    return sorted(
        (violation for violation in violations if violation.key not in allowed),
        key=lambda violation: (violation.path, violation.line),
    )


__all__ = [
    "DETERMINISTIC_PACKAGES",
    "Violation",
    "lint_source",
    "load_allowlist",
    "run_lint",
]
