"""The differential oracle: every fast path against its reference path.

Each :class:`OraclePair` names one equivalence the codebase relies on:

``batch-vs-record``
    ``Executor.run_batches`` columns, decoded by hand, against the
    ``Executor.run`` per-record adapter.
``trace-replay-memory`` / ``trace-replay-disk``
    a trace replayed from a :class:`~repro.machine.TraceStore` (LRU /
    directory-backed) against a fresh capture.
``annotate-digest``
    an annotated binary must share the base binary's trace key (so it
    replays base traces) *and* execute identically record for record.
``profile-io-merge``
    profile ``save → load → merge`` against merging the in-memory
    images, for both ``require_common`` modes, plus a round-trip of the
    merged image itself.
``fuse-stream-vs-batch``
    the streaming :class:`~repro.profiling.fusion.MergeAccumulator` —
    folding in-memory images and sketch-round-tripped images — against
    batch ``merge_profiles``, for both ``require_common`` modes, down
    to byte-identical text dumps.
``profile-sampled``
    sampled profiling: ``sample_every=1`` must be byte-identical to the
    unsampled profile, and ``sample_every=k`` over the live executor
    (columnar batch path) must equal profiling the drained record list
    thinned to ``records[::k]`` (the per-record reference path).
``simulate-vec-vs-pure``
    ``simulate_prediction_many`` over a ten-engine grid with the
    vectorized (numpy) backend live against the same grid with
    ``REPRO_NO_NUMPY`` forced — on the generated case (which exercises
    mid-run demotion: generated programs always produce floats) *and*
    on an all-integer twin of it (which exercises the actual fold).
``capture-shard-vs-serial``
    ``capture_sharded`` at ``jobs=2`` against a serial capture of the
    same input sets, compared by store-directory fingerprint and
    per-shard outcomes.
``runner-parallel`` / ``runner-faulty``
    the parallel engine at ``jobs=2`` — and a faulted run recovered
    under a retry policy — against a serial walk of the same graph.
``classify-train-determinism``
    the learned predictability model trained on the same labeled corpus
    presented in reversed row order (canonical sorting must make input
    order irrelevant), byte-for-byte on the serialized model, plus a
    ``loads -> dumps`` round trip of the model file itself.

Program-consuming pairs draw seeded random programs from
:mod:`repro.check.generator`; the runner pairs run a pinned experiment
workload.  Observations are canonicalized before comparison (floats by
``repr`` so ``3`` never masquerades as ``3.0`` and NaN compares equal
to itself) and :func:`first_divergence` reports the first differing
path.  On a program-pair failure the case is shrunk by NOP substitution
and input truncation into a minimized reproducer.
"""

from __future__ import annotations

import dataclasses
import math
import tempfile
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa import Directive, Instruction, Opcode, disassemble
from ..machine import Executor, TraceStore
from ..machine.errors import ExecutionError
from ..machine.tracestore import trace_key
from ..profiling import collect_profile, merge_profiles
from ..profiling.fusion import MergeAccumulator
from ..profiling.image_io import dumps_profile, loads_profile
from ..profiling.sketch import ProfileSketch, dumps_sketch, loads_sketch
from .generator import CheckCase, generate_case

DEFAULT_BUDGET = 20_000

_Obs = Tuple  # canonical observation; structural, compared by first_divergence


# -- canonical observations -------------------------------------------------


def _canon_value(value) -> str:
    if value is None:
        return "none"
    if isinstance(value, float):
        if math.isnan(value):
            return "f:nan"
        return f"f:{value!r}"
    return f"i:{value}"


def _observe_records(record_iter) -> Dict[str, object]:
    """Drain a TraceRecord iterator into a canonical observation.

    An :class:`ExecutionError` is part of the observation, not a test
    failure: both sides of a pair must fault with the same error type
    and message after the same record prefix.
    """
    records: List[Tuple[int, str, int, object]] = []
    outcome: Tuple[str, ...] = ("halt",)
    try:
        for record in record_iter:
            records.append(
                (record.address, _canon_value(record.value), record.phase,
                 record.mem_address)
            )
    except ExecutionError as exc:
        outcome = ("error", type(exc).__name__, str(exc))
    return {"records": records, "outcome": outcome}


def _observe_run(case: CheckCase, budget: int, program=None) -> Dict[str, object]:
    """Reference observation: a fresh ``Executor.run``."""
    executor = Executor(
        program if program is not None else case.program,
        inputs=list(case.inputs),
        max_instructions=budget,
    )
    return _observe_records(executor.run())


def _observe_batches_raw(case: CheckCase, budget: int) -> Dict[str, object]:
    """Fast-side observation: decode the columnar batches by hand.

    Deliberately re-implements the column walk (phase segments, dense
    ``mems`` cursor against the static ``mem_flags`` bitmap, packed
    produced-value cursor against the static ``value_flags`` bitmap)
    instead of calling ``TraceBatch.records`` — the adapter is the thing
    under test.
    """
    executor = Executor(
        case.program, inputs=list(case.inputs), max_instructions=budget
    )
    records: List[Tuple[int, str, int, object]] = []
    outcome: Tuple[str, ...] = ("halt",)
    try:
        for batch in executor.run_batches():
            flags = batch.mem_flags
            vflags = batch.value_flags
            mems = batch.mems
            produced = batch.values
            cursor = 0
            vcursor = 0
            for start, end, phase in batch.phase_segments():
                for index in range(start, end):
                    address = batch.addresses[index]
                    if flags[address]:
                        mem_address = mems[cursor]
                        cursor += 1
                    else:
                        mem_address = None
                    if vflags[address]:
                        value = produced[vcursor]
                        vcursor += 1
                    else:
                        value = None
                    records.append(
                        (address, _canon_value(value), phase, mem_address)
                    )
    except ExecutionError as exc:
        outcome = ("error", type(exc).__name__, str(exc))
    return {"records": records, "outcome": outcome}


def _observe_image(image) -> Dict[str, object]:
    """Canonical view of a ProfileImage, exact counts and group detail."""
    return {
        "program": image.program_name,
        "run": image.run_label,
        "instructions": {
            address: (
                profile.executions,
                profile.attempts,
                profile.correct,
                profile.nonzero_stride_correct,
            )
            for address, profile in sorted(image.instructions.items())
        },
        "groups": {
            f"{category.value}/{phase}/{address}": tuple(counts)
            for (category, phase), members in sorted(
                image.group_detail.items(),
                key=lambda item: (item[0][0].value, item[0][1]),
            )
            for address, counts in sorted(members.items())
        },
    }


# -- structural diff --------------------------------------------------------


def first_divergence(fast, reference, path: str = "$") -> Optional[Tuple[str, str, str]]:
    """First ``(path, fast, reference)`` where the observations differ."""
    if isinstance(fast, dict) and isinstance(reference, dict):
        for key in sorted(set(fast) | set(reference), key=str):
            if key not in fast:
                return (f"{path}.{key}", "<missing>", repr(reference[key]))
            if key not in reference:
                return (f"{path}.{key}", repr(fast[key]), "<missing>")
            found = first_divergence(fast[key], reference[key], f"{path}.{key}")
            if found is not None:
                return found
        return None
    if isinstance(fast, (list, tuple)) and isinstance(reference, (list, tuple)):
        for index, (left, right) in enumerate(zip(fast, reference)):
            found = first_divergence(left, right, f"{path}[{index}]")
            if found is not None:
                return found
        if len(fast) != len(reference):
            return (f"{path}.length", str(len(fast)), str(len(reference)))
        return None
    if type(fast) is not type(reference) or fast != reference:
        return (path, repr(fast), repr(reference))
    return None


@dataclasses.dataclass(frozen=True)
class Divergence:
    """One fast/reference disagreement, located to a record field."""

    pair: str
    seed: Optional[int]
    path: str
    fast: str
    reference: str

    def format(self) -> str:
        seed = f" seed={self.seed}" if self.seed is not None else ""
        return (
            f"{self.pair}{seed}: diverged at {self.path}\n"
            f"  fast:      {self.fast}\n"
            f"  reference: {self.reference}"
        )


# -- the pairs --------------------------------------------------------------


def _check_batch_vs_record(case: CheckCase, budget: int):
    return first_divergence(
        _observe_batches_raw(case, budget), _observe_run(case, budget)
    )


def _check_trace_replay(case: CheckCase, budget: int, directory=None):
    store = TraceStore(directory=directory)
    captured = _observe_records(
        record
        for batch in store.batches(case.program, case.inputs, budget)
        for record in batch.records()
    )
    replayed = _observe_records(
        record
        for batch in store.batches(case.program, case.inputs, budget)
        for record in batch.records()
    )
    fresh = _observe_run(case, budget)
    found = first_divergence(captured, fresh, "$capture")
    if found is not None:
        return found
    return first_divergence(replayed, fresh, "$replay")


def _check_trace_replay_memory(case: CheckCase, budget: int):
    return _check_trace_replay(case, budget)


def _check_trace_replay_disk(case: CheckCase, budget: int):
    with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
        return _check_trace_replay(case, budget, directory=tmp)


def _check_annotate_digest(case: CheckCase, budget: int):
    directive_map = {
        address: Directive.STRIDE if address % 2 == 0 else Directive.LAST_VALUE
        for address in case.program.candidate_addresses
    }
    annotated = case.program.with_directives(directive_map)
    base_key = trace_key(case.program, list(case.inputs), budget)
    annotated_key = trace_key(annotated, list(case.inputs), budget)
    if annotated_key != base_key:
        return ("$trace_key", annotated_key, base_key)
    store = TraceStore()
    base_obs = _observe_records(
        record
        for batch in store.batches(case.program, case.inputs, budget)
        for record in batch.records()
    )
    replay_obs = _observe_records(
        record
        for batch in store.batches(annotated, case.inputs, budget)
        for record in batch.records()
    )
    fresh_obs = _observe_run(case, budget, program=annotated)
    found = first_divergence(replay_obs, fresh_obs, "$annotated_replay")
    if found is not None:
        return found
    return first_divergence(fresh_obs, base_obs, "$annotated_fresh")


def _drain_records(case: CheckCase, inputs: Sequence, budget: int) -> List:
    """Records retired before a clean halt *or* a legitimate fault."""
    executor = Executor(case.program, inputs=list(inputs), max_instructions=budget)
    records: List = []
    try:
        for record in executor.run():
            records.append(record)
    except ExecutionError:
        pass
    return records


def _reference_merge_obs(images, require_common: bool) -> Dict[str, object]:
    """Independent first-principles merge, as a canonical observation.

    Deliberately *not* a call into :func:`merge_profiles` — this is the
    reference model the production merge is differenced against, so a
    regression in merge.py itself (e.g. dropping the ``require_common``
    filter from group accumulation) diverges here.
    """
    keep = None
    if require_common:
        address_sets = [set(image.instructions) for image in images]
        keep = set.intersection(*address_sets) if address_sets else set()
    instructions: Dict[int, List[int]] = {}
    groups: Dict[str, List[int]] = {}
    for image in images:
        for address, profile in image.instructions.items():
            if keep is not None and address not in keep:
                continue
            slot = instructions.setdefault(address, [0, 0, 0, 0])
            slot[0] += profile.executions
            slot[1] += profile.attempts
            slot[2] += profile.correct
            slot[3] += profile.nonzero_stride_correct
        for (category, phase), members in image.group_detail.items():
            for address, counts in members.items():
                if keep is not None and address not in keep:
                    continue
                slot = groups.setdefault(f"{category.value}/{phase}/{address}", [0, 0, 0])
                slot[0] += counts[0]
                slot[1] += counts[1]
                slot[2] += counts[2]
    return {
        "instructions": {
            address: tuple(slot) for address, slot in sorted(instructions.items())
        },
        "groups": {name: tuple(slot) for name, slot in sorted(groups.items())},
    }


def _check_profile_io_merge(case: CheckCase, budget: int):
    # The two training images must profile genuinely different address
    # sets — otherwise the ``require_common`` intersection filters
    # nothing and a filtering regression could never diverge.  The
    # second image drops every record above the first run's median
    # static address (a valid partial trace), which guarantees at least
    # the maximum address is exclusive to the first image.
    records_full = _drain_records(case, list(case.inputs), budget)
    addresses = sorted({record.address for record in records_full})
    cutoff = addresses[len(addresses) // 2] if addresses else 0
    records_partial = [
        record
        for record in _drain_records(case, list(reversed(case.inputs)), budget)
        if record.address <= cutoff
    ]
    images = [
        collect_profile(case.program, records=records, run_label=f"train-{index}")
        for index, records in enumerate((records_full, records_partial))
    ]
    for require_common in (False, True):
        in_memory = merge_profiles(images, require_common=require_common)
        in_memory_obs = _observe_image(in_memory)
        found = first_divergence(
            {key: in_memory_obs[key] for key in ("instructions", "groups")},
            _reference_merge_obs(images, require_common),
            f"$merge[require_common={require_common}].model",
        )
        if found is not None:
            return found
        reloaded = [loads_profile(dumps_profile(image)) for image in images]
        via_disk = merge_profiles(reloaded, require_common=require_common)
        label = f"$merge[require_common={require_common}]"
        found = first_divergence(
            _observe_image(via_disk), _observe_image(in_memory), label
        )
        if found is not None:
            return found
        round_trip = loads_profile(dumps_profile(in_memory))
        found = first_divergence(
            _observe_image(round_trip), _observe_image(in_memory),
            f"{label}.round_trip",
        )
        if found is not None:
            return found
    return None


def _check_fuse_stream_vs_batch(case: CheckCase, budget: int):
    # Three training images with genuinely different address sets (full
    # run, the low half, the high half) so the streaming intersection
    # both shrinks and has survivors — a regression in the incremental
    # ``require_common`` pruning cannot hide behind identical inputs.
    records_full = _drain_records(case, list(case.inputs), budget)
    addresses = sorted({record.address for record in records_full})
    cutoff = addresses[len(addresses) // 2] if addresses else 0
    records_low = [
        record
        for record in _drain_records(case, list(reversed(case.inputs)), budget)
        if record.address <= cutoff
    ]
    records_high = [
        record for record in records_full if record.address >= cutoff
    ]
    images = [
        collect_profile(case.program, records=records, run_label=f"train-{index}")
        for index, records in enumerate((records_full, records_low, records_high))
    ]
    for require_common in (False, True):
        batch = merge_profiles(images, require_common=require_common)
        batch_obs = _observe_image(batch)
        label = f"$fuse[require_common={require_common}]"

        accumulator = MergeAccumulator(require_common=require_common)
        for image in images:
            accumulator.fold(image)
        streamed = accumulator.result()
        found = first_divergence(
            _observe_image(streamed), batch_obs, f"{label}.stream"
        )
        if found is not None:
            return found
        if dumps_profile(streamed) != dumps_profile(batch):
            return (f"{label}.stream.dump_bytes", "<differs>", "<batch dump>")

        # Sketch transport: the same fold through a lossless (level 0)
        # encode/decode round trip must land on the same merged image.
        via_sketch = MergeAccumulator(require_common=require_common)
        for image in images:
            via_sketch.fold(
                loads_sketch(dumps_sketch(ProfileSketch.from_image(image)))
            )
        found = first_divergence(
            _observe_image(via_sketch.result()), batch_obs, f"{label}.sketch"
        )
        if found is not None:
            return found
    return None


def _check_profile_sampled(case: CheckCase, budget: int):
    # The sampling rule is defined over the *full* dynamic stream
    # (global record position modulo k, before the candidate filter),
    # so profiling with ``sample_every=k`` must equal profiling the
    # drained record list thinned to ``records[::k]`` — and k=1 must be
    # byte-for-byte the unsampled image.
    records = _drain_records(case, list(case.inputs), budget)
    full = collect_profile(case.program, records=records, run_label="train")
    k1 = collect_profile(
        case.program, records=records, run_label="train", sample_every=1
    )
    if dumps_profile(k1) != dumps_profile(full):
        return ("$sampled[k=1].dump_bytes", "<differs>", "<unsampled dump>")
    for k in (2, 3, 7):
        reference = collect_profile(
            case.program, records=records[::k], run_label="train"
        )
        via_records = collect_profile(
            case.program, records=records, run_label="train", sample_every=k
        )
        found = first_divergence(
            _observe_image(via_records),
            _observe_image(reference),
            f"$sampled[k={k}].records",
        )
        if found is not None:
            return found
    # The live-executor path takes the columnar batch fast path; it must
    # land on the same image as the record-list reference for every k.
    # A faulting case is skipped here — its record prefix is already
    # covered above, and the executor path surfaces the fault instead.
    for k in (1, 4):
        try:
            via_executor = collect_profile(
                case.program,
                list(case.inputs),
                run_label="train",
                sample_every=k,
                max_instructions=budget,
            )
        except ExecutionError:
            return None
        reference = collect_profile(
            case.program, records=records[::k], run_label="train"
        )
        found = first_divergence(
            _observe_image(via_executor),
            _observe_image(reference),
            f"$sampled[k={k}].executor",
        )
        if found is not None:
            return found
        if dumps_profile(via_executor) != dumps_profile(reference):
            return (
                f"$sampled[k={k}].executor.dump_bytes",
                "<differs>",
                "<records[::k] dump>",
            )
    return None


def _engine_grid(program):
    """A predictor/scheme grid covering every vectorized code path.

    Families: stride, last-value, two-delta and the hybrid split table;
    schemes: unconditional, FSM-classified, profile-classified and the
    probe-wrapped variants — so the vec backend's allocation masks, take
    policies, FSM scan and directive routing all face their pure twins.
    """
    from ..core.schemes import (
        AlwaysClassification,
        HardwareClassification,
        ProbeScheme,
        ProfileClassification,
    )
    from ..core.simulate import PredictionEngine
    from ..predictors import (
        HybridPredictor,
        LastValuePredictor,
        StridePredictor,
        TwoDeltaStridePredictor,
    )

    directives = {
        address: Directive.STRIDE if address % 2 == 0 else Directive.LAST_VALUE
        for address in program.candidate_addresses
    }

    def profile():
        return ProfileClassification.from_directives(directives)

    return {
        "stride/always": PredictionEngine(
            program, StridePredictor(), AlwaysClassification()
        ),
        "stride/fsm": PredictionEngine(
            program, StridePredictor(), HardwareClassification()
        ),
        "stride/profile": PredictionEngine(program, StridePredictor(), profile()),
        "stride/probe-profile": PredictionEngine(
            program, StridePredictor(), ProbeScheme(profile())
        ),
        "lv/always": PredictionEngine(
            program, LastValuePredictor(), AlwaysClassification()
        ),
        "lv/fsm": PredictionEngine(
            program, LastValuePredictor(), HardwareClassification()
        ),
        "2d/always": PredictionEngine(
            program, TwoDeltaStridePredictor(), AlwaysClassification()
        ),
        "2d/fsm": PredictionEngine(
            program, TwoDeltaStridePredictor(), HardwareClassification()
        ),
        "hybrid/profile": PredictionEngine(program, HybridPredictor(), profile()),
        "hybrid/probe-fsm": PredictionEngine(
            program, HybridPredictor(), ProbeScheme(HardwareClassification())
        ),
    }


def _observe_engine(engine) -> Dict[str, object]:
    """Canonical engine end-state: stats, tables, entries, FSM counters.

    Entries are keyed by sorted address (infinite-table insertion order
    is an internal detail the pure fast and step paths already disagree
    on); values go through :func:`_canon_value` so a float-valued entry
    can never masquerade as its int twin.
    """
    from ..predictors.last_value import LastValueEntry
    from ..predictors.stride import StrideEntry
    from ..predictors.two_delta import TwoDeltaEntry

    def canon_entry(entry):
        if isinstance(entry, StrideEntry):
            return (
                "stride",
                _canon_value(entry.last_value),
                _canon_value(entry.stride),
            )
        if isinstance(entry, TwoDeltaEntry):
            return (
                "two-delta",
                _canon_value(entry.last_value),
                _canon_value(entry.candidate_stride),
                _canon_value(entry.committed_stride),
            )
        if isinstance(entry, LastValueEntry):
            return ("last-value", _canon_value(entry.last_value))
        return ("?", repr(entry))  # pragma: no cover - closed entry set

    tables = {}
    for index, table in enumerate(engine.predictor.tables()):
        tables[f"table{index}"] = {
            "meters": (table.lookups, table.hits, table.evictions),
            "entries": {
                address: canon_entry(entry)
                for address, entry in sorted(table)
            },
        }
    scheme = engine.scheme
    inner = getattr(scheme, "inner", scheme)
    counters = {}
    fsm = getattr(inner, "fsm", None)
    if fsm is not None:
        counters = {
            address: counter.value
            for address, counter in sorted(fsm._counters.items())
        }
    return {
        "stats": engine.stats.to_dict(),
        "tables": tables,
        "fsm": counters,
    }


def _simulate_observation(case: CheckCase, budget: int) -> Dict[str, object]:
    from ..core.simulate import simulate_prediction_many

    engines = _engine_grid(case.program)
    outcome: Tuple[str, ...] = ("halt",)
    try:
        simulate_prediction_many(
            case.program, list(case.inputs), engines, max_instructions=budget
        )
    except ExecutionError as exc:
        outcome = ("error", type(exc).__name__, str(exc))
    return {
        "outcome": outcome,
        "engines": {
            label: _observe_engine(engine) for label, engine in engines.items()
        },
    }


def _forced_pure(fn):
    """Run ``fn`` with the vectorized backend disabled via the env flag."""
    import os

    from ..core.simulate_vec import DISABLE_ENV

    previous = os.environ.get(DISABLE_ENV)
    os.environ[DISABLE_ENV] = "1"
    try:
        return fn()
    finally:
        if previous is None:
            os.environ.pop(DISABLE_ENV, None)
        else:
            os.environ[DISABLE_ENV] = previous


#: Opcode substitution turning a generated program into an all-integer
#: twin: float producers become their integer counterparts, so the
#: vectorized backend's packed-int fast fold genuinely engages (mixed
#: int/float programs only ever exercise its demotion path).
_INT_SUBSTITUTES = {
    Opcode.FLI: Opcode.LI,
    Opcode.FADD: Opcode.ADD,
    Opcode.FSUB: Opcode.SUB,
    Opcode.FMUL: Opcode.MUL,
    Opcode.FDIV: Opcode.DIV,
    Opcode.FNEG: Opcode.NEG,
    Opcode.FMOV: Opcode.MOV,
    Opcode.FSLT: Opcode.SLT,
    Opcode.FSLE: Opcode.SLE,
    Opcode.FSEQ: Opcode.SEQ,
    Opcode.FSNE: Opcode.SNE,
    Opcode.CVTIF: Opcode.MOV,
    Opcode.CVTFI: Opcode.MOV,
    Opcode.FLD: Opcode.LD,
    Opcode.FST: Opcode.ST,
    Opcode.FIN: Opcode.IN,
}


def _int_only_case(case: CheckCase) -> CheckCase:
    """The case with every float source replaced by an integer twin.

    Derived from the *current* program (not regenerated from the seed),
    so NOP minimization shrinks the integer variant along with the
    original.
    """
    from ..isa import build_program

    code = []
    for instruction in case.program.instructions:
        replacement = _INT_SUBSTITUTES.get(instruction.opcode)
        imm = instruction.imm
        if isinstance(imm, float):
            imm = int(imm)
        if replacement is None and imm is instruction.imm:
            code.append(instruction)
        else:
            code.append(
                dataclasses.replace(
                    instruction,
                    opcode=replacement or instruction.opcode,
                    imm=imm,
                )
            )
    data = {address: int(value) for address, value in case.program.data.items()}
    return CheckCase(
        seed=case.seed,
        program=build_program(
            code, data=data, name=f"{case.program.name}-int"
        ),
        inputs=case.inputs,
    )


def _check_simulate_vec(case: CheckCase, budget: int):
    # The raw case (mixed int/float traffic) exercises mid-run demotion;
    # the integer twin exercises the actual vectorized fold.
    for variant, label in (
        (case, "$simulate"),
        (_int_only_case(case), "$simulate.int"),
    ):
        fast = _simulate_observation(variant, budget)
        reference = _forced_pure(lambda: _simulate_observation(variant, budget))
        found = first_divergence(fast, reference, label)
        if found is not None:
            return found
    return None


def _store_fingerprint(directory) -> Dict[str, str]:
    """Relative path -> content hash for every file under ``directory``."""
    import hashlib
    from pathlib import Path

    root = Path(directory)
    fingerprint = {}
    for path in sorted(p for p in root.rglob("*") if p.is_file()):
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        fingerprint[str(path.relative_to(root))] = digest
    return fingerprint


def _check_capture_shard(case: CheckCase, budget: int):
    from ..machine.sharding import capture_sharded

    input_sets = [
        list(case.inputs),
        list(reversed(case.inputs)),
        [value + 1 for value in case.inputs],
        list(case.inputs)[: max(1, len(case.inputs) // 2)],
    ]

    def observe(jobs: int) -> Dict[str, object]:
        with tempfile.TemporaryDirectory(prefix="repro-shard-") as tmp:
            report = capture_sharded(
                case.program,
                input_sets,
                directory=tmp,
                jobs=jobs,
                max_instructions=budget,
            )
            return {
                "store": _store_fingerprint(tmp),
                "shards": [
                    (result.key, result.records, result.error)
                    for result in report.results
                ],
            }

    return first_divergence(observe(jobs=2), observe(jobs=1), "$shard[jobs=2]")


_RUNNER_EXPERIMENT = "fig-4.2"


def _runner_outcome(jobs: int = 1, **engine_options) -> str:
    from ..experiments.context import ExperimentContext
    from ..runner import build_experiment_graph
    from ..runner.executor import execute_graph

    context = ExperimentContext(scale=0.02, training_runs=2)
    graph = build_experiment_graph([_RUNNER_EXPERIMENT], context)
    outcome = execute_graph(graph, context, jobs=jobs, **engine_options)
    return outcome.tables[_RUNNER_EXPERIMENT].to_tsv()


_serial_baseline: List[str] = []


def _runner_baseline() -> str:
    if not _serial_baseline:
        _serial_baseline.append(_runner_outcome(jobs=1))
    return _serial_baseline[0]


def _check_runner_parallel(case: None, budget: int):
    return first_divergence(
        {"table": _runner_outcome(jobs=2)},
        {"table": _runner_baseline()},
        "$runner[jobs=2]",
    )


def _check_runner_faulty(case: None, budget: int):
    from ..runner import build_experiment_graph
    from ..runner.faults import FaultPlan
    from ..runner.retry import RetryPolicy
    from ..experiments.context import ExperimentContext

    context = ExperimentContext(scale=0.02, training_runs=2)
    graph = build_experiment_graph([_RUNNER_EXPERIMENT], context)
    pool_ids = [job.job_id for job in graph.order() if not job.inline]
    plan = FaultPlan.generate(
        pool_ids, seed=1997, rate=0.3, kinds=("transient",), max_attempt=1
    )
    from ..runner.executor import execute_graph

    outcome = execute_graph(
        graph, context, jobs=1, retry=RetryPolicy(max_attempts=3), fault_plan=plan
    )
    return first_divergence(
        {"table": outcome.tables[_RUNNER_EXPERIMENT].to_tsv()},
        {"table": _runner_baseline()},
        "$runner[faulty]",
    )


def _check_classify_determinism(case: None, budget: int):
    from ..classify import (
        build_dataset,
        dataset_rows,
        dumps_model,
        loads_model,
        train_model,
    )
    from ..workloads.corpus import DEFAULT_MIX, generate_corpus

    workloads = generate_corpus(1997, 6, DEFAULT_MIX)
    rows = dataset_rows(build_dataset(workloads, training_runs=2, scale=0.1))
    reference = dumps_model(train_model(rows, seed=1997))
    reordered = dumps_model(train_model(list(reversed(rows)), seed=1997))
    if reordered != reference:
        return ("$classify.row_order", "<differs>", "<canonical model bytes>")
    round_trip = dumps_model(loads_model(reference))
    if round_trip != reference:
        return ("$classify.round_trip", "<differs>", "<original model bytes>")
    return None


@dataclasses.dataclass(frozen=True)
class OraclePair:
    """One fast/reference equivalence the oracle exercises."""

    name: str
    description: str
    uses_program: bool
    check: Callable[[Optional[CheckCase], int], Optional[Tuple[str, str, str]]]


_PAIRS: Tuple[OraclePair, ...] = (
    OraclePair(
        "batch-vs-record",
        "run_batches columns decoded by hand vs the run() record adapter",
        True, _check_batch_vs_record,
    ),
    OraclePair(
        "trace-replay-memory",
        "TraceStore replay (in-memory LRU) vs fresh capture",
        True, _check_trace_replay_memory,
    ),
    OraclePair(
        "trace-replay-disk",
        "TraceStore replay (directory-backed) vs fresh capture",
        True, _check_trace_replay_disk,
    ),
    OraclePair(
        "annotate-digest",
        "annotated binary: same trace key, same execution as the base",
        True, _check_annotate_digest,
    ),
    OraclePair(
        "profile-io-merge",
        "profile save->load->merge vs merging the in-memory images",
        True, _check_profile_io_merge,
    ),
    OraclePair(
        "fuse-stream-vs-batch",
        "streaming MergeAccumulator (image + sketch transports) vs batch merge",
        True, _check_fuse_stream_vs_batch,
    ),
    OraclePair(
        "profile-sampled",
        "sampled profiling (k=1 byte-identical; executor vs records[::k])",
        True, _check_profile_sampled,
    ),
    OraclePair(
        "simulate-vec-vs-pure",
        "vectorized simulation backend vs the pure-Python consumers",
        True, _check_simulate_vec,
    ),
    OraclePair(
        "capture-shard-vs-serial",
        "sharded multi-process capture vs a serial capture of the same sets",
        True, _check_capture_shard,
    ),
    OraclePair(
        "runner-parallel",
        "experiment engine at jobs=2 vs a serial walk",
        False, _check_runner_parallel,
    ),
    OraclePair(
        "runner-faulty",
        "faulted run recovered under retries vs a clean serial walk",
        False, _check_runner_faulty,
    ),
    OraclePair(
        "classify-train-determinism",
        "model trained on reversed row order vs canonical, byte-for-byte",
        False, _check_classify_determinism,
    ),
)


def all_pairs() -> Tuple[OraclePair, ...]:
    """Every registered fast/reference pair, in run order."""
    return _PAIRS


# -- minimization -----------------------------------------------------------


def _case_with(case: CheckCase, code, inputs) -> CheckCase:
    from ..isa import build_program

    program = case.program
    return CheckCase(
        seed=case.seed,
        program=build_program(
            code, data=dict(program.data), name=f"{program.name}-min"
        ),
        inputs=tuple(inputs),
    )


def minimize_case(
    case: CheckCase,
    still_diverges: Callable[[CheckCase], bool],
) -> CheckCase:
    """Shrink ``case`` while the pair still diverges.

    NOP substitution keeps addresses (and therefore branch targets)
    stable, so any subset of instructions can be blanked without
    re-validating control flow; spans shrink from coarse to single
    instructions, then the input stream is truncated from the tail.
    """
    code = list(case.program.instructions)
    inputs = list(case.inputs)
    nop = Instruction(Opcode.NOP)

    span = max(1, len(code) // 4)
    while span >= 1:
        index = 0
        while index < len(code):
            stop = min(index + span, len(code))
            if any(code[i].opcode is not Opcode.NOP for i in range(index, stop)):
                trial = list(code)
                trial[index:stop] = [nop] * (stop - index)
                try:
                    diverges = still_diverges(_case_with(case, trial, inputs))
                except Exception:
                    diverges = False
                if diverges:
                    code = trial
            index = stop
        span //= 2

    while inputs:
        trial = inputs[:-1]
        try:
            diverges = still_diverges(_case_with(case, code, trial))
        except Exception:
            diverges = False
        if not diverges:
            break
        inputs = trial

    return _case_with(case, code, inputs)


def render_reproducer(case: CheckCase, divergence: Divergence) -> str:
    """Self-contained text artifact: the divergence plus the program."""
    lines = [
        f"# repro check reproducer: pair {divergence.pair}",
        f"# seed: {case.seed}",
        f"# diverged at: {divergence.path}",
        f"# fast:      {divergence.fast}",
        f"# reference: {divergence.reference}",
        f"# inputs: {list(case.inputs)!r}",
        f"# data: {dict(case.program.data)!r}",
        "",
        disassemble(case.program),
    ]
    return "\n".join(lines)


# -- the driver -------------------------------------------------------------


@dataclasses.dataclass
class PairResult:
    """Outcome of running one pair over the generated cases."""

    pair: OraclePair
    cases: int = 0
    divergence: Optional[Divergence] = None
    reproducer: Optional[str] = None

    @property
    def passed(self) -> bool:
        return self.divergence is None


@dataclasses.dataclass
class OracleReport:
    """Everything one oracle run produced."""

    results: List[PairResult]
    seeds: Tuple[int, ...]
    budget: int

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> List[PairResult]:
        return [result for result in self.results if not result.passed]

    def format_text(self) -> str:
        lines = []
        for result in self.results:
            status = "ok" if result.passed else "DIVERGED"
            suffix = f"{result.cases} cases" if result.pair.uses_program else "1 run"
            lines.append(f"  {result.pair.name:<22} {status:<8} ({suffix})")
            if result.divergence is not None:
                lines.append("    " + result.divergence.format().replace("\n", "\n    "))
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"oracle: {verdict} — {len(self.results)} pairs, "
            f"{len(self.seeds)} seeds, budget {self.budget}"
        )
        return "\n".join(lines)


def run_oracle(
    seeds: Iterable[int] = range(1, 13),
    budget: int = DEFAULT_BUDGET,
    pairs: Optional[Sequence[str]] = None,
    minimize: bool = True,
) -> OracleReport:
    """Run every (selected) pair; stop each pair at its first divergence."""
    seeds = tuple(seeds)
    selected = [
        pair for pair in _PAIRS if pairs is None or pair.name in pairs
    ]
    unknown = set(pairs or ()) - {pair.name for pair in _PAIRS}
    if unknown:
        raise ValueError(f"unknown oracle pairs: {sorted(unknown)}")
    cases = [generate_case(seed) for seed in seeds]
    results = []
    for pair in selected:
        result = PairResult(pair=pair)
        if not pair.uses_program:
            result.cases = 1
            found = pair.check(None, budget)
            if found is not None:
                path, fast, reference = found
                result.divergence = Divergence(pair.name, None, path, fast, reference)
        else:
            for case in cases:
                result.cases += 1
                found = pair.check(case, budget)
                if found is None:
                    continue
                if minimize:
                    case = minimize_case(
                        case,
                        lambda trial: pair.check(trial, budget) is not None,
                    )
                    found = pair.check(case, budget) or found
                path, fast, reference = found
                result.divergence = Divergence(
                    pair.name, case.seed, path, fast, reference
                )
                result.reproducer = render_reproducer(case, result.divergence)
                break
        results.append(result)
    return OracleReport(results=results, seeds=seeds, budget=budget)


__all__ = [
    "DEFAULT_BUDGET",
    "Divergence",
    "OraclePair",
    "OracleReport",
    "PairResult",
    "all_pairs",
    "first_divergence",
    "minimize_case",
    "render_reproducer",
    "run_oracle",
]
