"""Correctness tooling: the differential oracle and the invariant lint.

The repo's performance work keeps adding *fast paths* whose only excuse
for existing is bit-for-bit equivalence with a slower reference path —
the columnar batch executor vs the per-record adapter, trace replay vs
fresh capture, the parallel runner vs a serial walk, profile
save→load→merge vs merging in memory.  ``python -m repro check`` is the
net that keeps those equivalences honest:

* :mod:`repro.check.oracle` — a seeded random-program generator feeds
  every fast/reference pair through one equivalence harness; the first
  diverging record/field is reported together with a minimized
  reproducer program.
* :mod:`repro.check.lint` — an AST pass over ``src/`` that flags
  nondeterminism in deterministic modules, unordered-set iteration,
  undeclared telemetry metric names and unpicklable objects crossing
  the worker boundary, with an allowlist for grandfathered findings.

Both run in CI as ``repro check --smoke`` next to the bench regression
guard.
"""

from .generator import CheckCase, generate_case
from .lint import Violation, run_lint
from .oracle import (
    Divergence,
    OraclePair,
    OracleReport,
    PairResult,
    all_pairs,
    first_divergence,
    run_oracle,
)

__all__ = [
    "CheckCase",
    "Divergence",
    "OraclePair",
    "OracleReport",
    "PairResult",
    "Violation",
    "all_pairs",
    "first_divergence",
    "generate_case",
    "run_lint",
    "run_oracle",
]
