"""repro — a reproduction of Gabbay & Mendelson, "Can Program Profiling
Support Value Prediction?" (MICRO-30, 1997).

Subpackages
-----------

* :mod:`repro.isa` — the RISC-like instruction set (SPARC stand-in),
  including the ``stride``/``last-value`` opcode directives.
* :mod:`repro.lang` — the mini-C compiler (gcc stand-in).
* :mod:`repro.machine` — the tracing functional simulator (SHADE stand-in).
* :mod:`repro.predictors` — last-value / stride / hybrid predictors and
  the saturating-counter classifier.
* :mod:`repro.profiling` — profile collection, the profile-image file
  format, multi-run merging, streaming fleet fusion with compact
  sketches, and the Section-4 similarity metrics.
* :mod:`repro.annotate` — phase-3 directive insertion.
* :mod:`repro.classify` — learned predictability classification: static
  feature extraction and a seed-deterministic model trained on
  profile-labeled corpus programs.
* :mod:`repro.core` — the classified value-prediction simulation drivers
  and the end-to-end three-phase methodology.
* :mod:`repro.ilp` — the 40-entry-window abstract ILP machine.
* :mod:`repro.workloads` — the 13 SPEC95-idiom workloads and their input
  generators.
* :mod:`repro.experiments` — one harness per paper table/figure.
* :mod:`repro.runner` — the parallel experiment engine and its
  content-addressed artifact cache.
* :mod:`repro.telemetry` — counters/timers/spans threaded through every
  layer above, plus the ``python -m repro bench`` suite.

This module is the stable facade: everything in ``__all__`` is supported
API, re-exported from the subpackages above.  Prefer ``from repro import
compile_source`` over reaching into submodules.

Quickstart::

    from repro import ProfileScheme, evaluate_scheme, run_methodology
    from repro.workloads import get_workload

    workload = get_workload("129.compress")
    program = workload.compile()
    result = run_methodology(program, workload.training_inputs())
    stats = evaluate_scheme(ProfileScheme(result), workload.test_inputs())
    print(stats.taken_accuracy)

Or drive the full experiment suite programmatically::

    from repro import ExperimentContext, run_experiments

    context = ExperimentContext(scale=0.1, cache_dir="~/.cache/repro")
    run_experiments(["fig-2.2", "table-5.2"], context, jobs=4)
"""

from .annotate import AnnotationPolicy, annotate_program
from .core import (
    EvaluationScheme,
    HardwareClassification,
    HardwareScheme,
    LearnedClassification,
    LearnedScheme,
    PredictionEngine,
    PredictionStats,
    ProfileClassification,
    ProfileScheme,
    evaluate_scheme,
    run_methodology,
    simulate_prediction,
)
from .ilp import IlpConfig, IlpResult, measure_ilp
from .isa import Directive, Program, assemble, disassemble
from .lang import compile_source
from .machine import run_program, trace_program
from .predictors import (
    FsmClassifier,
    HybridPredictor,
    LastValuePredictor,
    StridePredictor,
)
from .profiling import (
    MergeAccumulator,
    ProfileImage,
    ProfileSketch,
    collect_profile,
    fidelity_report,
    fuse_images,
    merge_profiles,
    read_profile,
    save_profile,
)

__version__ = "1.0.0"

#: Facade names resolved lazily — the experiments layer (and with it the
#: parallel engine) loads only when first touched, keeping plain
#: ``import repro`` cheap and the import graph cycle-free.
_LAZY = {
    "PredictabilityModel": ("repro.classify", "PredictabilityModel"),
    "train_model": ("repro.classify", "train_model"),
    "extract_features": ("repro.classify", "extract_features"),
    "dumps_model": ("repro.classify", "dumps_model"),
    "loads_model": ("repro.classify", "loads_model"),
    "ExperimentContext": ("repro.experiments.context", "ExperimentContext"),
    "run_experiments": ("repro.experiments.runner", "run_experiments"),
    "ArtifactCache": ("repro.runner.cache", "ArtifactCache"),
    "default_cache_dir": ("repro.runner.cache", "default_cache_dir"),
    "Telemetry": ("repro.telemetry", "Telemetry"),
    "Span": ("repro.telemetry", "Span"),
    "get_registry": ("repro.telemetry", "get_registry"),
    "bench_main": ("repro.telemetry.bench", "bench_main"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target[0]), target[1])
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "AnnotationPolicy",
    "ArtifactCache",
    "Directive",
    "EvaluationScheme",
    "ExperimentContext",
    "FsmClassifier",
    "HardwareClassification",
    "HardwareScheme",
    "HybridPredictor",
    "IlpConfig",
    "IlpResult",
    "LastValuePredictor",
    "LearnedClassification",
    "LearnedScheme",
    "MergeAccumulator",
    "PredictabilityModel",
    "PredictionEngine",
    "PredictionStats",
    "ProfileClassification",
    "ProfileImage",
    "ProfileScheme",
    "ProfileSketch",
    "Program",
    "Span",
    "StridePredictor",
    "Telemetry",
    "annotate_program",
    "assemble",
    "bench_main",
    "collect_profile",
    "compile_source",
    "default_cache_dir",
    "disassemble",
    "dumps_model",
    "evaluate_scheme",
    "extract_features",
    "fidelity_report",
    "fuse_images",
    "get_registry",
    "loads_model",
    "measure_ilp",
    "train_model",
    "merge_profiles",
    "read_profile",
    "run_experiments",
    "run_methodology",
    "run_program",
    "save_profile",
    "simulate_prediction",
    "trace_program",
    "__version__",
]
