"""repro — a reproduction of Gabbay & Mendelson, "Can Program Profiling
Support Value Prediction?" (MICRO-30, 1997).

Subpackages
-----------

* :mod:`repro.isa` — the RISC-like instruction set (SPARC stand-in),
  including the ``stride``/``last-value`` opcode directives.
* :mod:`repro.lang` — the mini-C compiler (gcc stand-in).
* :mod:`repro.machine` — the tracing functional simulator (SHADE stand-in).
* :mod:`repro.predictors` — last-value / stride / hybrid predictors and
  the saturating-counter classifier.
* :mod:`repro.profiling` — profile collection, the profile-image file
  format, multi-run merging and the Section-4 similarity metrics.
* :mod:`repro.annotate` — phase-3 directive insertion.
* :mod:`repro.core` — the classified value-prediction simulation drivers
  and the end-to-end three-phase methodology.
* :mod:`repro.ilp` — the 40-entry-window abstract ILP machine.
* :mod:`repro.workloads` — the 13 SPEC95-idiom workloads and their input
  generators.
* :mod:`repro.experiments` — one harness per paper table/figure.

Quickstart::

    from repro import run_methodology, evaluate_profile_scheme
    from repro.workloads import get_workload

    workload = get_workload("129.compress")
    program = workload.compile()
    result = run_methodology(program, workload.training_inputs())
    stats = evaluate_profile_scheme(result, workload.test_inputs())
    print(stats.taken_accuracy)
"""

from .annotate import AnnotationPolicy, annotate_program
from .core import (
    HardwareClassification,
    ProfileClassification,
    evaluate_hardware_scheme,
    evaluate_profile_scheme,
    run_methodology,
    simulate_prediction,
)
from .ilp import IlpConfig, measure_ilp
from .isa import Directive, Program, assemble, disassemble
from .lang import compile_source
from .machine import run_program, trace_program
from .predictors import (
    FsmClassifier,
    HybridPredictor,
    LastValuePredictor,
    StridePredictor,
)
from .profiling import ProfileImage, collect_profile, merge_profiles

__version__ = "1.0.0"

__all__ = [
    "AnnotationPolicy",
    "Directive",
    "FsmClassifier",
    "HardwareClassification",
    "HybridPredictor",
    "IlpConfig",
    "LastValuePredictor",
    "ProfileClassification",
    "ProfileImage",
    "Program",
    "StridePredictor",
    "annotate_program",
    "assemble",
    "collect_profile",
    "compile_source",
    "disassemble",
    "evaluate_hardware_scheme",
    "evaluate_profile_scheme",
    "measure_ilp",
    "merge_profiles",
    "run_methodology",
    "run_program",
    "simulate_prediction",
    "trace_program",
    "__version__",
]
