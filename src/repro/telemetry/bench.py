"""``python -m repro bench`` — the pinned performance suite.

Runs a fixed micro/meso benchmark ladder against the current tree and
writes a ``BENCH_<rev>.json`` file in a stable schema
(:data:`SCHEMA_VERSION`), plus a human summary table:

* **executor** — a pinned arithmetic loop through the functional
  simulator; reports dynamic instructions, wall seconds and simulated
  MIPS.
* **predictor** — a pinned address/value stream against the finite
  512-entry 2-way stride table; reports table ops/sec and hit rate.
* **trace** — the pinned loop captured once into a
  :class:`~repro.machine.TraceStore` and replayed from packed batches;
  reports capture and replay records/sec and their ratio.
* **fuse** — streaming profile fusion: a seeded synthetic fleet of
  edge-run profile images is sketch-encoded and folded through
  :class:`~repro.profiling.fusion.MergeAccumulator`; reports fuse
  throughput (images/s) and the sketch wire size against the v1 text
  dump (bytes/image, compression ratio).
* **corpus** — the seeded mini-C generator
  (:mod:`repro.workloads.corpus`): generate + compile a pinned corpus
  slice; reports programs/sec and the mean static program size.
* **sampling** — sampled phase-2 profiling: one corpus program profiled
  in full and at the pinned sampling rate from the same captured trace;
  reports records/sec both ways and the sampled-path speedup.
* **analysis** — multi-scheme prediction simulation: a pinned
  all-integer trace replayed through a six-engine fig-5.1-style grid on
  the vectorized (numpy) backend and again with the backend disabled;
  reports records/sec both ways and the vectorization speedup.
* **suite** — one end-to-end experiment (``fig-5.1``) at small scale,
  cold cache then warm cache, with per-kind artifact-cache hit rates
  and the whole-pipeline simulated MIPS taken from the telemetry
  registry.

The JSON file seeds the repository's performance trajectory: future
perf-oriented PRs regress against the latest committed ``BENCH_*.json``,
and ``--baseline PATH`` turns that comparison into an exit status —
the run fails when ``suite.simulated_mips`` drops below
``--min-mips-ratio`` (a deliberately generous default, so only real
regressions trip CI, not machine-to-machine noise).  ``--smoke``
shrinks every knob for CI schema checks.
"""

from __future__ import annotations

import argparse
import dataclasses
import io
import json
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO

from .export import cache_summary
from .registry import Telemetry, use_registry

#: Stable schema identifier; bump on any incompatible payload change.
#: v2 added the ``trace`` section (trace-store capture/replay throughput).
#: v3 added the ``fuse`` section (streaming fusion throughput + sketch size).
#: v4 added the ``corpus`` section (generator throughput) and the
#: ``sampling`` section (sampled vs full profiling throughput).
#: v5 added the ``analysis`` section (vectorized vs pure multi-scheme
#: simulation throughput).
SCHEMA_VERSION = "repro-bench/5"

#: Required ``metrics`` sections and the keys each must carry.
REQUIRED_METRICS = {
    "executor": ("instructions", "seconds", "mips"),
    "predictor": ("ops", "seconds", "ops_per_sec", "hit_rate", "evictions"),
    "trace": (
        "records",
        "capture_seconds",
        "capture_records_per_sec",
        "replay_seconds",
        "replay_records_per_sec",
        "replay_speedup",
    ),
    "fuse": (
        "images",
        "seconds",
        "images_per_sec",
        "text_bytes_per_image",
        "sketch_bytes_per_image",
        "compression_ratio",
    ),
    "corpus": (
        "programs",
        "seconds",
        "programs_per_sec",
        "mean_static_instructions",
    ),
    "sampling": (
        "records",
        "sample_every",
        "full_seconds",
        "full_records_per_sec",
        "sampled_seconds",
        "sampled_records_per_sec",
        "speedup",
    ),
    "analysis": (
        "records",
        "engines",
        "numpy",
        "vec_seconds",
        "vec_records_per_sec",
        "pure_seconds",
        "pure_records_per_sec",
        "speedup",
    ),
    "suite": ("experiment", "cold_seconds", "warm_seconds", "simulated_mips", "cache"),
}


class BenchSchemaError(ValueError):
    """A bench payload does not conform to :data:`SCHEMA_VERSION`."""


@dataclasses.dataclass(frozen=True)
class BenchConfig:
    """The pinned knobs of one bench run."""

    executor_iterations: int
    predictor_ops: int
    suite_experiment: str
    suite_scale: float
    suite_training_runs: int
    suite_jobs: int = 1
    trace_iterations: int = 50_000
    trace_replays: int = 5
    fuse_images: int = 300
    fuse_addresses: int = 128
    corpus_count: int = 48
    corpus_seed: int = 1997
    sampling_rate: int = 10
    analysis_iterations: int = 50_000
    analysis_replays: int = 3


#: The default (committed-trajectory) configuration.
FULL = BenchConfig(
    executor_iterations=50_000,
    predictor_ops=200_000,
    suite_experiment="fig-5.1",
    suite_scale=0.05,
    suite_training_runs=3,
)

#: The CI configuration: same shape, minutes smaller.
SMOKE = BenchConfig(
    executor_iterations=5_000,
    predictor_ops=20_000,
    suite_experiment="fig-5.1",
    suite_scale=0.01,
    suite_training_runs=1,
    trace_iterations=5_000,
    trace_replays=3,
    fuse_images=60,
    fuse_addresses=64,
    corpus_count=8,
    analysis_iterations=2_000,
    analysis_replays=1,
)

#: Pinned executor workload: {iterations} is substituted per config.
_EXECUTOR_ASM = """
.name bench-loop
.text
    li r1, 0
    li r2, {iterations}
loop:
    addi r1, r1, 1
    add r3, r1, r1
    mul r4, r3, r1
    sub r5, r4, r3
    and r6, r5, r4
    slt r7, r1, r2
    bnez r7, loop
    out r5
    halt
"""


def git_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    revision = result.stdout.strip()
    return revision if result.returncode == 0 and revision else "unknown"


# -- sections ----------------------------------------------------------------


def bench_executor(iterations: int) -> Dict[str, Any]:
    """Time the functional simulator on the pinned arithmetic loop."""
    from ..isa import assemble
    from ..machine import run_program

    program = assemble(_EXECUTOR_ASM.format(iterations=iterations))
    started = time.perf_counter()
    result = run_program(program, max_instructions=None)
    seconds = time.perf_counter() - started
    return {
        "instructions": result.instruction_count,
        "seconds": seconds,
        "mips": result.instruction_count / seconds / 1e6 if seconds else 0.0,
    }


def bench_predictor(ops: int) -> Dict[str, Any]:
    """Time a pinned access stream against the finite stride table.

    Two phases, half the ops each, matching how the simulation drivers
    hit the table: a *resident* phase cycling 512 addresses (exactly
    table capacity, so steady-state accesses hit and the predict/update
    path is timed) followed by a *pressure* phase cycling 1024 addresses
    (twice capacity, so replacement is exercised and every access
    misses).  The blended hit rate lands near 50% — a stream that only
    thrashed would time nothing but allocation.
    """
    from ..predictors import StridePredictor

    predictor = StridePredictor(512, 2)
    resident = ops // 2
    stream = [
        (index % 512, (index % 512) * 3 + index // 512)
        for index in range(resident)
    ]
    stream += [
        (index % 1024, (index % 1024) * 3 + index // 1024)
        for index in range(resident, ops)
    ]
    access = predictor.access
    started = time.perf_counter()
    for address, value in stream:
        access(address, value)
    seconds = time.perf_counter() - started
    table = predictor.table
    return {
        "ops": ops,
        "seconds": seconds,
        "ops_per_sec": ops / seconds if seconds else 0.0,
        "hit_rate": 100.0 * table.hits / table.lookups if table.lookups else 0.0,
        "evictions": table.evictions,
    }


def bench_trace(iterations: int, replays: int) -> Dict[str, Any]:
    """Time trace capture once and batched replay many times.

    The pinned loop runs once through a memory-only
    :class:`~repro.machine.TraceStore` (execution plus packing), then the
    packed trace is replayed ``replays`` times as columnar batches.
    Replay records/sec is the number the trace/analyze split lives on:
    every consumer after the first walks packed batches instead of
    re-executing the program, so ``replay_speedup`` (replay throughput
    over capture throughput) is the per-consumer win.
    """
    from ..isa import assemble
    from ..machine import TraceStore

    program = assemble(_EXECUTOR_ASM.format(iterations=iterations))
    store = TraceStore(None)
    records = 0
    started = time.perf_counter()
    for batch in store.batches(program):
        records += len(batch)
    capture_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(replays):
        for batch in store.batches(program):
            pass
    replay_seconds = (time.perf_counter() - started) / replays
    capture_rate = records / capture_seconds if capture_seconds else 0.0
    replay_rate = records / replay_seconds if replay_seconds else 0.0
    return {
        "records": records,
        "replays": replays,
        "capture_seconds": capture_seconds,
        "capture_records_per_sec": capture_rate,
        "replay_seconds": replay_seconds,
        "replay_records_per_sec": replay_rate,
        "replay_speedup": replay_rate / capture_rate if capture_rate else 0.0,
    }


def _synthetic_fleet(images: int, addresses: int) -> "List[Any]":
    """A seeded fleet of edge-run profile images for the fuse section.

    Counts follow the shape real collector output has — executions in
    the thousands, attempts one training miss behind, accuracy bimodal
    (the paper's predictable/unpredictable split) — so the sketch codec
    is timed against realistic deltas rather than uniform noise.
    """
    import random

    from ..isa import Category
    from ..profiling.collector import InstructionProfile, ProfileImage

    rng = random.Random(1997)
    fleet = []
    for index in range(images):
        image = ProfileImage("bench-fuse", run_label=f"edge-{index}")
        for slot in range(addresses):
            address = slot * 2
            executions = 1_000 + rng.randrange(0, 4_000)
            attempts = executions - 1
            accuracy = 0.95 if slot % 3 else 0.15
            correct = int(attempts * accuracy)
            nonzero = correct if slot % 2 else 0
            image.instructions[address] = InstructionProfile(
                address, executions, attempts, correct, nonzero
            )
            category = Category.INT_LOAD if slot % 2 else Category.INT_ALU
            detail = image.group_detail.setdefault((category, 0), {})
            detail[address] = [executions, attempts, correct]
        fleet.append(image)
    return fleet


def bench_fuse(images: int, addresses: int) -> Dict[str, Any]:
    """Time streaming fusion of a synthetic fleet; size the sketch wire.

    Each image is serialized both ways — v1 text dump and compact
    sketch — then the sketch payloads are decoded and folded through a
    single :class:`~repro.profiling.fusion.MergeAccumulator`, which is
    exactly the fleet-aggregation path ``repro fuse`` and the service's
    ``fuse`` job run.  ``images_per_sec`` times decode+fold+result;
    ``compression_ratio`` is text bytes over sketch bytes at q=0.
    """
    from ..profiling import ProfileSketch, dumps_profile
    from ..profiling.fusion import MergeAccumulator
    from ..profiling.sketch import dumps_sketch, loads_sketch

    fleet = _synthetic_fleet(images, addresses)
    text_bytes = sum(len(dumps_profile(image).encode("utf-8")) for image in fleet)
    payloads = [dumps_sketch(ProfileSketch.from_image(image)) for image in fleet]
    sketch_bytes = sum(len(payload) for payload in payloads)
    started = time.perf_counter()
    accumulator = MergeAccumulator(run_label="bench-fuse")
    for payload in payloads:
        accumulator.fold(loads_sketch(payload).to_image())
    merged = accumulator.result()
    seconds = time.perf_counter() - started
    return {
        "images": images,
        "addresses": addresses,
        "merged_instructions": len(merged),
        "seconds": seconds,
        "images_per_sec": images / seconds if seconds else 0.0,
        "text_bytes_per_image": text_bytes / images if images else 0.0,
        "sketch_bytes_per_image": sketch_bytes / images if images else 0.0,
        "compression_ratio": text_bytes / sketch_bytes if sketch_bytes else 0.0,
    }


def bench_corpus(count: int, seed: int) -> Dict[str, Any]:
    """Time generating and compiling a pinned corpus slice.

    ``programs_per_sec`` covers the full pipeline a ``repro corpus``
    invocation pays per workload — grammar expansion, input-set
    derivation, and mini-C compilation — so a generator or compiler
    regression shows up here before it slows the sweep experiments.
    """
    from ..workloads.corpus import generate_corpus

    started = time.perf_counter()
    workloads = generate_corpus(seed, count)
    static_sizes = [len(workload.compile()) for workload in workloads]
    seconds = time.perf_counter() - started
    return {
        "programs": count,
        "seed": seed,
        "seconds": seconds,
        "programs_per_sec": count / seconds if seconds else 0.0,
        "mean_static_instructions": (
            sum(static_sizes) / len(static_sizes) if static_sizes else 0.0
        ),
    }


def bench_sampling(seed: int, sample_every: int) -> Dict[str, Any]:
    """Time full vs sampled profiling of one corpus program.

    The program's test run is captured once into a memory
    :class:`~repro.machine.TraceStore`; both profiling passes then
    replay the same packed batches, so the timed difference is purely
    the collector's sampled batch path against its full path.
    ``speedup`` is wall-time full/sampled — the payoff a profiling
    deployment buys by keeping every ``sample_every``-th record.
    """
    from ..machine import TraceStore
    from ..profiling import collect_profile
    from ..workloads.corpus import generate_corpus

    workload = generate_corpus(seed, 1)[0]
    program = workload.compile()
    inputs = workload.test_inputs()
    store = TraceStore(None)
    records = 0
    for batch in store.batches(program, inputs):
        records += len(batch)
    started = time.perf_counter()
    collect_profile(program, inputs, run_label="bench-full", store=store)
    full_seconds = time.perf_counter() - started
    started = time.perf_counter()
    sampled = collect_profile(
        program,
        inputs,
        run_label="bench-sampled",
        sample_every=sample_every,
        store=store,
    )
    sampled_seconds = time.perf_counter() - started
    kept = sum(profile.executions for profile in sampled.instructions.values())
    return {
        "records": records,
        "sample_every": sample_every,
        "sampled_candidate_records": kept,
        "full_seconds": full_seconds,
        "full_records_per_sec": records / full_seconds if full_seconds else 0.0,
        "sampled_seconds": sampled_seconds,
        "sampled_records_per_sec": (
            records / sampled_seconds if sampled_seconds else 0.0
        ),
        "speedup": full_seconds / sampled_seconds if sampled_seconds else 0.0,
    }


#: Pinned analysis workload: an all-integer loop whose candidate stream
#: mixes stride-predictable (counters, scaled indices), last-value
#: friendly (periodic masks/moduli) and hard (quadratic) addresses — the
#: value mix a fig-5.1 multi-scheme comparison walks.
_ANALYSIS_ASM = """
.name bench-analysis
.text
    li r1, 0
    li r2, {iterations}
    li r3, 0
loop:
    addi r1, r1, 1
    addi r3, r3, 3
    add r4, r1, r3
    shli r5, r1, 2
    andi r6, r1, 15
    modi r7, r1, 7
    mul r8, r1, r1
    sub r9, r4, r3
    xor r10, r6, r7
    slt r11, r1, r2
    bnez r11, loop
    out r4
    halt
"""


def _analysis_engines(program) -> "Dict[str, Any]":
    """A fresh fig-5.1-style engine grid (three predictors, two schemes)."""
    from ..core.schemes import AlwaysClassification, HardwareClassification
    from ..core.simulate import PredictionEngine
    from ..predictors import (
        LastValuePredictor,
        StridePredictor,
        TwoDeltaStridePredictor,
    )

    predictors = {
        "stride": StridePredictor,
        "lv": LastValuePredictor,
        "2d": TwoDeltaStridePredictor,
    }
    return {
        f"{name}/{scheme}": PredictionEngine(
            program,
            factory(),
            AlwaysClassification()
            if scheme == "always"
            else HardwareClassification(),
        )
        for name, factory in predictors.items()
        for scheme in ("always", "fsm")
    }


def bench_analysis(iterations: int, replays: int) -> Dict[str, Any]:
    """Time multi-scheme analysis, vectorized backend against pure Python.

    The pinned loop is captured once into a memory
    :class:`~repro.machine.TraceStore`; both passes then replay the same
    packed batches through :func:`~repro.core.simulate.simulate_prediction_many`
    over the same six-engine grid, so the timed difference is purely the
    analysis backend — the numpy fold versus the per-record consumers
    (forced via the backend's disable switch).  ``speedup`` is the
    ``vec_records_per_sec`` / ``pure_records_per_sec`` ratio; without
    numpy both passes run the pure path and it sits near 1.0.
    """
    import os

    from ..core.simulate import simulate_prediction_many
    from ..core.simulate_vec import DISABLE_ENV, numpy_or_none
    from ..isa import assemble
    from ..machine import TraceStore

    program = assemble(_ANALYSIS_ASM.format(iterations=iterations))
    store = TraceStore(None)
    records = 0
    for batch in store.batches(program):
        records += len(batch)

    def timed_pass() -> float:
        started = time.perf_counter()
        for _ in range(replays):
            simulate_prediction_many(
                program, (), _analysis_engines(program), store=store
            )
        return (time.perf_counter() - started) / replays

    vec_seconds = timed_pass()
    saved = os.environ.get(DISABLE_ENV)
    os.environ[DISABLE_ENV] = "1"
    try:
        pure_seconds = timed_pass()
    finally:
        if saved is None:
            os.environ.pop(DISABLE_ENV, None)
        else:
            os.environ[DISABLE_ENV] = saved
    vec_rate = records / vec_seconds if vec_seconds else 0.0
    pure_rate = records / pure_seconds if pure_seconds else 0.0
    return {
        "records": records,
        "engines": 6,
        "replays": replays,
        "numpy": numpy_or_none() is not None,
        "vec_seconds": vec_seconds,
        "vec_records_per_sec": vec_rate,
        "pure_seconds": pure_seconds,
        "pure_records_per_sec": pure_rate,
        "speedup": vec_rate / pure_rate if pure_rate else 0.0,
    }


def _run_suite_once(config: BenchConfig, cache_dir: str) -> Dict[str, Any]:
    """One full experiment pass under a fresh live registry."""
    from ..experiments.context import ExperimentContext
    from ..experiments.runner import run_experiments

    registry = Telemetry()
    with use_registry(registry):
        context = ExperimentContext(
            scale=config.suite_scale,
            training_runs=config.suite_training_runs,
            cache_dir=cache_dir,
        )
        started = time.perf_counter()
        run_experiments(
            [config.suite_experiment],
            context,
            stream=io.StringIO(),
            jobs=config.suite_jobs,
        )
        seconds = time.perf_counter() - started
    return {"seconds": seconds, "telemetry": registry.snapshot()}


def bench_suite(config: BenchConfig) -> Dict[str, Any]:
    """End-to-end experiment run, cold cache then warm cache."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold = _run_suite_once(config, cache_dir)
        warm = _run_suite_once(config, cache_dir)
    counters = cold["telemetry"].get("counters", {})
    timers = cold["telemetry"].get("timers", {})
    instructions = counters.get("machine.instructions", 0)
    machine_seconds = timers.get("machine.run", {}).get("seconds", 0.0)
    return {
        "experiment": config.suite_experiment,
        "cold_seconds": cold["seconds"],
        "warm_seconds": warm["seconds"],
        "simulated_mips": (
            instructions / machine_seconds / 1e6 if machine_seconds else 0.0
        ),
        "simulated_instructions": instructions,
        "cache": cache_summary(warm["telemetry"]),
        "telemetry": cold["telemetry"],
    }


# -- payload -----------------------------------------------------------------


def build_payload(config: BenchConfig, smoke: bool) -> Dict[str, Any]:
    """Run every section and assemble the schema-versioned payload."""
    suite = bench_suite(config)
    telemetry = suite.pop("telemetry")
    return {
        "schema": SCHEMA_VERSION,
        "revision": git_revision(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "smoke": smoke,
        "config": dataclasses.asdict(config),
        "metrics": {
            "executor": bench_executor(config.executor_iterations),
            "predictor": bench_predictor(config.predictor_ops),
            "trace": bench_trace(config.trace_iterations, config.trace_replays),
            "fuse": bench_fuse(config.fuse_images, config.fuse_addresses),
            "corpus": bench_corpus(config.corpus_count, config.corpus_seed),
            "sampling": bench_sampling(config.corpus_seed, config.sampling_rate),
            "analysis": bench_analysis(
                config.analysis_iterations, config.analysis_replays
            ),
            "suite": suite,
        },
        "telemetry": telemetry,
    }


def validate_payload(payload: Dict[str, Any]) -> None:
    """Raise :class:`BenchSchemaError` listing every schema violation."""
    problems: List[str] = []
    if payload.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA_VERSION!r}"
        )
    for key in ("revision", "created", "python", "platform", "config", "telemetry"):
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("missing or non-mapping 'metrics'")
        metrics = {}
    for section, keys in REQUIRED_METRICS.items():
        data = metrics.get(section)
        if not isinstance(data, dict):
            problems.append(f"missing metrics section {section!r}")
            continue
        for key in keys:
            if key not in data:
                problems.append(f"metrics.{section} missing {key!r}")
    cache = metrics.get("suite", {}).get("cache")
    if isinstance(cache, dict):
        for kind, entry in cache.items():
            if "hit_rate" not in entry:
                problems.append(f"metrics.suite.cache.{kind} missing 'hit_rate'")
    if problems:
        raise BenchSchemaError("; ".join(problems))


def summary_table(payload: Dict[str, Any]) -> str:
    """The human-readable roll-up printed after a bench run."""
    metrics = payload["metrics"]
    executor = metrics["executor"]
    predictor = metrics["predictor"]
    trace = metrics["trace"]
    fuse = metrics["fuse"]
    corpus = metrics["corpus"]
    sampling = metrics["sampling"]
    analysis = metrics["analysis"]
    suite = metrics["suite"]
    lines = [
        f"repro bench — revision {payload['revision']} "
        f"({'smoke' if payload.get('smoke') else 'full'}, "
        f"python {payload['python']})",
        f"  executor   {executor['instructions']:>12,} instr "
        f"{executor['seconds']:>8.3f}s  {executor['mips']:>8.3f} MIPS",
        f"  predictor  {predictor['ops']:>12,} ops   "
        f"{predictor['seconds']:>8.3f}s  {predictor['ops_per_sec']:>10,.0f} ops/s  "
        f"hit {predictor['hit_rate']:.1f}%",
        f"  trace      {trace['records']:>12,} recs  "
        f"capture {trace['capture_records_per_sec'] / 1e6:>6.3f} Mrec/s  "
        f"replay {trace['replay_records_per_sec'] / 1e6:>7.3f} Mrec/s  "
        f"({trace['replay_speedup']:.1f}x)",
        f"  fuse       {fuse['images']:>12,} imgs  "
        f"{fuse['seconds']:>8.3f}s  {fuse['images_per_sec']:>10,.0f} img/s  "
        f"sketch {fuse['sketch_bytes_per_image']:,.0f} B/img "
        f"({fuse['compression_ratio']:.1f}x)",
        f"  corpus     {corpus['programs']:>12,} progs "
        f"{corpus['seconds']:>8.3f}s  {corpus['programs_per_sec']:>10,.0f} prog/s  "
        f"mean {corpus['mean_static_instructions']:.0f} instr",
        f"  sampling   {sampling['records']:>12,} recs  "
        f"full {sampling['full_records_per_sec'] / 1e6:>6.3f} Mrec/s  "
        f"k={sampling['sample_every']} "
        f"{sampling['sampled_records_per_sec'] / 1e6:>6.3f} Mrec/s  "
        f"({sampling['speedup']:.1f}x)",
        f"  analysis   {analysis['records']:>12,} recs  "
        f"vec {analysis['vec_records_per_sec'] / 1e6:>7.3f} Mrec/s  "
        f"pure {analysis['pure_records_per_sec'] / 1e6:>6.3f} Mrec/s  "
        f"({analysis['speedup']:.1f}x"
        f"{'' if analysis['numpy'] else ', no numpy'})",
        f"  suite      {suite['experiment']:<12} cold {suite['cold_seconds']:>8.2f}s  "
        f"warm {suite['warm_seconds']:>7.2f}s  "
        f"simulated {suite['simulated_mips']:.3f} MIPS",
    ]
    for kind, entry in suite["cache"].items():
        lines.append(
            f"  cache      {kind:<12} {entry['hits']}/{entry['hits'] + entry['misses']} "
            f"hits ({entry['hit_rate']:.0f}%)"
            + (f", {entry['corrupt']} corrupt" if entry["corrupt"] else "")
        )
    return "\n".join(lines)


def check_regression(
    payload: Dict[str, Any],
    baseline: Dict[str, Any],
    min_mips_ratio: float,
) -> List[str]:
    """Compare a fresh payload against a committed baseline payload.

    Returns a list of human-readable regression descriptions (empty when
    the run is acceptable).  Only rate metrics are compared — absolute
    wall times vary with suite scale and machine, but ``simulated_mips``
    is a throughput and transfers across configs.  ``min_mips_ratio``
    should stay generous (well below 1.0): the guard exists to catch
    order-of-magnitude regressions, not scheduler jitter between CI
    hosts.
    """
    problems: List[str] = []
    revision = baseline.get("revision", "unknown")
    new_mips = payload["metrics"]["suite"]["simulated_mips"]
    old_mips = baseline.get("metrics", {}).get("suite", {}).get("simulated_mips")
    if not old_mips:
        problems.append("baseline has no metrics.suite.simulated_mips to compare")
    elif new_mips < old_mips * min_mips_ratio:
        problems.append(
            f"suite.simulated_mips regressed: {new_mips:.3f} < "
            f"{min_mips_ratio:.2f} x baseline {old_mips:.3f} "
            f"(revision {revision})"
        )
    # Every throughput field of the analysis section is gated the same
    # way, each with its own failure report, so a lost fast path (e.g.
    # the vectorized fold silently demoting) can't hide behind the
    # suite-level number.  Old baselines predate the section; skip them.
    new_analysis = payload["metrics"].get("analysis", {})
    old_analysis = baseline.get("metrics", {}).get("analysis", {})
    throughput_fields = [
        key
        for key in old_analysis
        if key.endswith("_per_sec") or key == "speedup"
    ]
    for key in throughput_fields:
        old_value = old_analysis[key]
        new_value = new_analysis.get(key)
        if not old_value:
            continue
        if new_value is None:
            problems.append(f"analysis.{key} missing from this run")
        elif new_value < old_value * min_mips_ratio:
            problems.append(
                f"analysis.{key} regressed: {new_value:,.1f} < "
                f"{min_mips_ratio:.2f} x baseline {old_value:,.1f} "
                f"(revision {revision})"
            )
    return problems


def run_bench(
    *,
    smoke: bool = False,
    output: Optional[str] = None,
    config: Optional[BenchConfig] = None,
    stream: Optional[TextIO] = None,
) -> Dict[str, Any]:
    """Run the pinned suite, validate, write JSON, print the summary.

    Returns the payload.  ``config`` overrides the smoke/full presets
    (used by tests to shrink the suite further).
    """
    stream = stream or sys.stdout
    config = config or (SMOKE if smoke else FULL)
    payload = build_payload(config, smoke)
    validate_payload(payload)
    # Guard the schema contract: the payload must survive a JSON round trip.
    text = json.dumps(payload, indent=2, sort_keys=True)
    validate_payload(json.loads(text))
    path = Path(output) if output else Path(f"BENCH_{payload['revision']}.json")
    path.write_text(text + "\n", encoding="utf-8")
    print(summary_table(payload), file=stream)
    print(f"wrote {path}", file=stream)
    return payload


# -- CLI ---------------------------------------------------------------------


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the bench options on ``parser`` (shared with the repro CLI)."""
    parser.add_argument(
        "--output",
        "-o",
        default=None,
        help="output JSON path (default: BENCH_<git-rev>.json in the cwd)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minutes-smaller pinned suite for CI schema checks",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for the suite section (default 1 = serial)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="committed BENCH_*.json to regress against; the run exits "
        "non-zero if suite.simulated_mips falls below --min-mips-ratio "
        "times the baseline's",
    )
    parser.add_argument(
        "--min-mips-ratio",
        type=float,
        default=0.3,
        metavar="RATIO",
        help="lowest acceptable simulated-MIPS fraction of the baseline "
        "(default 0.3 — generous, so only real regressions fail CI)",
    )


def run_from_arguments(arguments: argparse.Namespace) -> int:
    config = SMOKE if arguments.smoke else FULL
    if arguments.jobs != 1:
        config = dataclasses.replace(config, suite_jobs=arguments.jobs)
    payload = run_bench(smoke=arguments.smoke, output=arguments.output, config=config)
    if arguments.baseline is not None:
        baseline = json.loads(Path(arguments.baseline).read_text(encoding="utf-8"))
        problems = check_regression(payload, baseline, arguments.min_mips_ratio)
        if problems:
            for problem in problems:
                print(f"bench regression: {problem}", file=sys.stderr)
            return 1
        old_mips = baseline["metrics"]["suite"]["simulated_mips"]
        new_mips = payload["metrics"]["suite"]["simulated_mips"]
        gated = 1 + sum(
            1
            for key in baseline.get("metrics", {}).get("analysis", {})
            if key.endswith("_per_sec") or key == "speedup"
        )
        print(
            f"bench regression guard passed ({gated} gated fields): "
            f"{new_mips:.3f} MIPS vs baseline {old_mips:.3f} "
            f"(floor {arguments.min_mips_ratio:.2f}x)"
        )
    return 0


def bench_main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro bench`` delegates here)."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the pinned performance suite and write BENCH_<rev>.json.",
    )
    add_arguments(parser)
    return run_from_arguments(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(bench_main())
