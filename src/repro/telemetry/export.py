"""Exporters for telemetry snapshots: JSON and an aligned text table."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from .registry import Telemetry


def _snapshot_of(source: Union[Telemetry, Dict[str, Any]]) -> Dict[str, Any]:
    if isinstance(source, Telemetry):
        return source.snapshot()
    return source


def to_json(source: Union[Telemetry, Dict[str, Any]], indent: int = 2) -> str:
    """A registry (or snapshot) as deterministic, sorted JSON text."""
    return json.dumps(_snapshot_of(source), indent=indent, sort_keys=True)


def format_text(source: Union[Telemetry, Dict[str, Any]]) -> str:
    """A registry (or snapshot) as an aligned human-readable table."""
    snapshot = _snapshot_of(source)
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    timers = snapshot.get("timers", {})
    spans = snapshot.get("spans", {})
    width = max(
        (len(name) for name in (*counters, *gauges, *timers, *spans)), default=0
    )
    if counters:
        lines.append("counters:")
        lines.extend(
            f"  {name:<{width}}  {value:>14,}" for name, value in sorted(counters.items())
        )
    if gauges:
        lines.append("gauges:")
        lines.extend(
            f"  {name:<{width}}  {value:>14,.3f}" for name, value in sorted(gauges.items())
        )
    if timers:
        lines.append("timers:")
        lines.extend(
            f"  {name:<{width}}  {stats['seconds']:>11.3f}s  x{stats['count']}"
            for name, stats in sorted(timers.items())
        )
    if spans:
        lines.append("spans:")
        lines.extend(
            f"  {path:<{width}}  {stats['seconds']:>11.3f}s  x{stats['count']}"
            for path, stats in sorted(spans.items())
        )
    return "\n".join(lines) if lines else "(no telemetry recorded)"


def hit_rate(hits: int, misses: int) -> float:
    """Hit percentage of a hit/miss counter pair (0.0 when untouched)."""
    total = hits + misses
    return 100.0 * hits / total if total else 0.0


def cache_summary(source: Union[Telemetry, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-kind artifact-cache statistics from ``cache.*`` counters.

    Returns ``{kind: {"hits": n, "misses": n, "corrupt": n, "stores": n,
    "hit_rate": pct}}`` for every artifact kind that appears in the
    snapshot's ``cache.hit.<kind>`` / ``cache.miss.<kind>`` /
    ``cache.corrupt.<kind>`` / ``cache.store.<kind>`` counters.
    """
    counters = _snapshot_of(source).get("counters", {})
    kinds: Dict[str, Dict[str, Any]] = {}
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) != 3 or parts[0] != "cache":
            continue
        _, event, kind = parts
        if event not in ("hit", "miss", "corrupt", "store"):
            continue
        entry = kinds.setdefault(
            kind, {"hits": 0, "misses": 0, "corrupt": 0, "stores": 0}
        )
        key = {"hit": "hits", "miss": "misses", "corrupt": "corrupt", "store": "stores"}
        entry[key[event]] += value
    for entry in kinds.values():
        entry["hit_rate"] = hit_rate(entry["hits"], entry["misses"])
    return dict(sorted(kinds.items()))
