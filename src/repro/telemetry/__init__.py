"""Lightweight, zero-dependency telemetry for the reproduction pipeline.

The paper's Phase-2 profiler is itself an observability tool; this
package gives the *pipeline* the same treatment: monotonic counters,
wall-clock timers, gauges, nesting spans and an event-hook registry,
with a process-global default registry that is a no-op until enabled.

Instrumented layers (all publish in bulk, never per record):

* ``machine.*`` — dynamic instructions retired and executor wall time
  (:mod:`repro.machine.executor`), from which simulated MIPS derives.
* ``predictor.*`` / ``core.*`` — table lookups/hits/evictions and
  classification outcomes (:mod:`repro.core.simulate`).
* ``profiling.*`` — profile records collected and collection time
  (:mod:`repro.profiling.collector`).
* ``cache.*`` / ``runner.*`` — per-kind artifact-cache hits, misses,
  corrupt entries and stores, per-job compute time and queue latency
  (:mod:`repro.runner`).  Pool workers snapshot their registries and the
  coordinator merges them, so parallel runs roll up like serial ones.
  Fault-tolerance counters ride alongside: ``runner.retries``,
  ``runner.timeouts``, ``runner.pool_rebuilds``, ``runner.cache.corrupt``
  and ``runner.jobs_failed`` / ``runner.jobs_skipped``, plus per-attempt
  ``attempt:<kind>`` spans.  Only metrics from *committed* attempts are
  merged — a retried run's totals equal a clean run's.
* ``experiments`` spans — per-phase (build/execute/emit) rollups
  (:mod:`repro.experiments.runner`).

Typical use::

    from repro.telemetry import Telemetry, use_registry

    registry = Telemetry()
    with use_registry(registry):
        run_experiments(["fig-5.1"], context)
    print(registry.snapshot()["counters"]["machine.instructions"])

``python -m repro bench`` (:mod:`repro.telemetry.bench`) builds the
pinned performance suite on top and writes the ``BENCH_<rev>.json``
trajectory files.
"""

from .export import cache_summary, format_text, hit_rate, to_json
from .metrics import KNOWN_METRIC_PREFIXES, KNOWN_METRICS, is_known_metric
from .registry import (
    Counter,
    EventHook,
    Gauge,
    NullTelemetry,
    Span,
    Telemetry,
    Timer,
    enable,
    get_registry,
    set_registry,
    use_registry,
)

__all__ = [
    "Counter",
    "EventHook",
    "Gauge",
    "KNOWN_METRICS",
    "KNOWN_METRIC_PREFIXES",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "Timer",
    "bench_main",
    "cache_summary",
    "enable",
    "format_text",
    "get_registry",
    "hit_rate",
    "is_known_metric",
    "set_registry",
    "to_json",
    "use_registry",
]


def __getattr__(name: str):
    # The bench suite pulls in the experiments layer; load it lazily so
    # `import repro.telemetry` stays cheap for the hot instrumented paths.
    if name == "bench_main":
        from .bench import bench_main

        return bench_main
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
