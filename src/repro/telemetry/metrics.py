"""The canonical registry of telemetry metric names.

Every counter/gauge/timer name used anywhere in :mod:`repro` must be
declared here — either exactly (:data:`KNOWN_METRICS`) or as a dynamic
family (:data:`KNOWN_METRIC_PREFIXES`, for names built with an f-string
such as ``runner.job.<kind>``).  The ``repro check`` invariant lint
(:mod:`repro.check.lint`) statically extracts metric-name literals from
the source tree and fails on any name missing from this registry, so a
new instrument cannot ship undeclared (and therefore undocumented — the
"Well-known metric names" table in ``docs/api.md`` mirrors this module).

Keeping the registry in code rather than in the docs makes it cheap to
test: :func:`is_known_metric` is the single decision point shared by the
lint and by anything else that wants to validate a snapshot.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

#: Exact metric names, grouped by subsystem.
KNOWN_METRICS: FrozenSet[str] = frozenset(
    {
        # machine: the trace-generating executor and the trace store.
        "machine.instructions",
        "machine.run",
        "machine.trace.captures",
        "machine.trace.captured_records",
        "machine.trace.capture",
        "machine.trace.replays",
        "machine.trace.replayed_records",
        "machine.trace.replay",
        "machine.columns.values",
        "machine.columns.escapes",
        # capture.shard: multi-process sharded trace capture.
        "capture.shard.runs",
        "capture.shard.jobs",
        "capture.shard.shards",
        "capture.shard.records",
        "capture.shard.capture",
        # predictors: shared by the core simulation engines.
        "predictor.lookups",
        "predictor.hits",
        "predictor.evictions",
        # core: classified hardware simulation.
        "core.simulate",
        "core.simulations",
        "core.candidates",
        "core.attempts",
        "core.taken",
        "core.taken_correct",
        "core.would_correct",
        "core.allocations",
        # simulate.vec: the vectorized (numpy) analysis backend.
        "simulate.vec.runs",
        "simulate.vec.records",
        "simulate.vec.candidates",
        "simulate.vec.engines",
        # profiling: phase-2 profile collection.
        "profiling.records",
        "profiling.runs",
        "profiling.collect",
        "profiling.sampled.runs",
        "profiling.sampled.records",
        # corpus: the seeded mini-C workload generator.
        "corpus.programs",
        "corpus.generate",
        # fusion: streaming profile merge and the sketch wire format.
        "fusion.images",
        "fusion.runs",
        "fusion.fold",
        "fusion.encode",
        "fusion.decode",
        "fusion.sketch_bytes",
        # classify: the learned predictability classifier.
        "classify.features",
        "classify.extract",
        "classify.programs",
        "classify.dataset",
        "classify.trained",
        "classify.train",
        "classify.predictions",
        "classify.predict",
        # runner: the parallel experiment engine and its recovery paths.
        "runner.jobs",
        "runner.jobs_cached",
        "runner.jobs_failed",
        "runner.jobs_skipped",
        "runner.queue_wait",
        "runner.retries",
        "runner.timeouts",
        "runner.pool_rebuilds",
        "runner.cache.corrupt",
        # experiments: suite-level rollups.
        "experiments.tables",
        "experiments.wall_seconds",
        # serve: the profiling-as-a-service daemon.
        "serve.requests",
        "serve.admissions",
        "serve.rejections",
        "serve.queue_depth",
        "serve.jobs",
        "serve.jobs_failed",
        "serve.retries",
        "serve.job_latency",
        "serve.drains",
    }
)

#: Prefixes for dynamically named metric families (name = prefix + tail).
KNOWN_METRIC_PREFIXES: Tuple[str, ...] = (
    "runner.job.",      # runner.job.<kind> per-kind timers
    "runner.jobs_",     # runner.jobs_<status> degraded-run counters
    "cache.hit.",       # cache.{hit,miss,store,corrupt}.<kind>
    "cache.miss.",
    "cache.store.",
    "cache.corrupt.",
    "serve.job.",       # serve.job.<kind> per-kind latency timers
    "serve.tenant.",    # serve.tenant.<tenant>.{admissions,rejections}
)


def is_known_metric(name: str) -> bool:
    """Whether ``name`` is declared, exactly or via a dynamic family."""
    if name in KNOWN_METRICS:
        return True
    return any(name.startswith(prefix) for prefix in KNOWN_METRIC_PREFIXES)


__all__ = ["KNOWN_METRICS", "KNOWN_METRIC_PREFIXES", "is_known_metric"]
