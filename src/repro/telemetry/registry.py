"""Metric primitives and the telemetry registry.

The registry is deliberately tiny and stdlib-only: four instrument kinds
(:class:`Counter`, :class:`Gauge`, :class:`Timer`, spans) plus an event
hook table, all addressed by dotted string names.  Instruments are
created on first use and live for the registry's lifetime, so hot code
fetches an instrument once and mutates plain attributes afterwards.

Two implementations share the interface:

* :class:`Telemetry` — the real thing.  Everything is recorded and can
  be exported (:mod:`repro.telemetry.export`) or merged from worker
  processes (:meth:`Telemetry.merge`).
* :class:`NullTelemetry` — the process-wide default.  Every accessor
  returns a shared no-op instrument, so the cost of an instrumented
  code path with telemetry disabled is one attribute lookup and one
  no-op method call.

The process-global registry (:func:`get_registry` / :func:`set_registry`
/ :func:`use_registry`) is how the pipeline layers find their sink
without threading a handle through every call signature.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

Value = Union[int, float]

#: Event hooks receive the event name and its payload mapping.
EventHook = Callable[[str, Dict[str, Any]], None]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins numeric metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: Value = 0

    def set(self, value: Value) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gauge({self.name!r}, {self.value})"


class Timer:
    """Accumulated wall-clock seconds plus an observation count."""

    __slots__ = ("name", "seconds", "count")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.seconds = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator["Timer"]:
        """Time a ``with`` block into this timer."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.add(time.perf_counter() - started)

    @property
    def mean(self) -> float:
        return self.seconds / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timer({self.name!r}, {self.seconds:.6f}s/{self.count})"


class Span:
    """One timed, named region; nests via the registry's span stack.

    Spans are recorded under their slash-joined path ("suite/execute/…"),
    so per-phase rollups fall out of the export without the instrumented
    code knowing where in the hierarchy it runs.  Use through
    :meth:`Telemetry.span`.
    """

    __slots__ = ("name", "path", "started", "seconds")

    def __init__(self, name: str, path: str) -> None:
        self.name = name
        self.path = path
        self.started: Optional[float] = None
        self.seconds = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Span({self.path!r})"


class Telemetry:
    """A live metrics registry: counters, gauges, timers, spans, hooks."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        #: span path -> (count, total seconds)
        self._spans: Dict[str, List[Value]] = {}
        self._span_stack: List[Span] = []
        self._hooks: Dict[str, List[EventHook]] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer(name)
        return instrument

    # -- spans ---------------------------------------------------------------

    @property
    def current_path(self) -> str:
        """The active span path ("" outside any span)."""
        return self._span_stack[-1].path if self._span_stack else ""

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Time a named region, nested under the active span (if any)."""
        parent = self.current_path
        span = Span(name, f"{parent}/{name}" if parent else name)
        span.started = time.perf_counter()
        self._span_stack.append(span)
        try:
            yield span
        finally:
            span.seconds = time.perf_counter() - span.started
            self._span_stack.pop()
            self._record_span(span.path, span.seconds)

    def _record_span(self, path: str, seconds: float, count: int = 1) -> None:
        stats = self._spans.get(path)
        if stats is None:
            self._spans[path] = [count, seconds]
        else:
            stats[0] += count
            stats[1] += seconds

    # -- event hooks ---------------------------------------------------------

    def on(self, event: str, hook: EventHook) -> None:
        """Register ``hook`` to run on every :meth:`emit` of ``event``."""
        self._hooks.setdefault(event, []).append(hook)

    def emit(self, event: str, **payload: Any) -> None:
        """Fire an event; hooks see ``(event, payload)``."""
        for hook in self._hooks.get(event, ()):
            hook(event, payload)

    # -- export / merge ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able copy of everything recorded so far."""
        return {
            "counters": {
                name: counter.value for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "timers": {
                name: {"seconds": timer.seconds, "count": timer.count}
                for name, timer in sorted(self._timers.items())
            },
            "spans": {
                path: {"count": stats[0], "seconds": stats[1]}
                for path, stats in sorted(self._spans.items())
            },
        }

    def merge(self, payload: Dict[str, Any], prefix: Optional[str] = None) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and timers add, gauges take the incoming value, and span
        paths are re-rooted under ``prefix`` (a worker's spans merged while
        the coordinator sits inside ``suite/execute`` land at
        ``suite/execute/<worker path>`` — this is how spans nest across
        the process pool).
        """
        for name, value in payload.get("counters", {}).items():
            self.counter(name).add(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, stats in payload.get("timers", {}).items():
            timer = self.timer(name)
            timer.seconds += stats["seconds"]
            timer.count += stats["count"]
        for path, stats in payload.get("spans", {}).items():
            merged_path = f"{prefix}/{path}" if prefix else path
            self._record_span(merged_path, stats["seconds"], stats["count"])

    def clear(self) -> None:
        """Drop all recorded metrics (hooks are kept)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._spans.clear()


class _NullInstrument:
    """Shared sink for every disabled counter/gauge/timer."""

    __slots__ = ()
    name = ""
    value = 0
    seconds = 0.0
    count = 0
    mean = 0.0

    def add(self, amount: Value = 1) -> None:
        pass

    def set(self, value: Value) -> None:
        pass

    @contextmanager
    def time(self) -> Iterator["_NullInstrument"]:
        yield self


class _NullSpan:
    """Reusable, reentrant no-op span context manager."""

    __slots__ = ()
    name = ""
    path = ""
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()


class NullTelemetry(Telemetry):
    """The disabled registry: records nothing, costs almost nothing.

    Every accessor returns a shared no-op instrument, so instrumented
    code pays one attribute lookup plus one no-op call per bulk update —
    never per-record allocation or arithmetic.
    """

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def span(self, name: str):  # type: ignore[override]
        return _NULL_SPAN

    def emit(self, event: str, **payload: Any) -> None:
        pass

    def merge(self, payload: Dict[str, Any], prefix: Optional[str] = None) -> None:
        pass


#: The process-global registry; null until someone installs a live one.
_REGISTRY: Telemetry = NullTelemetry()


def get_registry() -> Telemetry:
    """The process-global registry (the null registry by default)."""
    return _REGISTRY


def set_registry(registry: Telemetry) -> Telemetry:
    """Install ``registry`` globally; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def use_registry(registry: Telemetry) -> Iterator[Telemetry]:
    """Install ``registry`` for the duration of a ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enable() -> Telemetry:
    """Ensure the global registry is live; returns it.

    Idempotent: an already-enabled registry is kept (with its contents).
    """
    if not _REGISTRY.enabled:
        set_registry(Telemetry())
    return _REGISTRY
