"""A seed-deterministic decision tree over static instruction features.

The learned counterpart of the paper's profile thresholds: instead of
measuring each instruction's predictability, predict it from the static
feature vectors of :mod:`repro.classify.features`.  Labels are the
phase-3 directive classes — ``none`` / ``last-value`` / ``stride`` — so
a trained model *is* a directive policy that needs no profile.

Pure stdlib, and deterministic to the byte:

* split selection uses exact integer arithmetic (cross-multiplied
  Gini comparisons — no float accumulation, no representation drift);
* ties break on the lowest feature index, then the lowest threshold;
* training rows are canonically sorted, so row order cannot matter;
* any subsampling is driven by the repo :class:`~repro.workloads.inputs.Lcg`,
  never by :mod:`random` or hash order.

The model file format (``repro-classify-model/1``) is a single header
line carrying the format version and the SHA-256 digest of the canonical
JSON body that follows; :func:`loads_model` rejects digest mismatches,
so a model file is self-verifying the way service jobs are
(:func:`repro.service.api.job_digest`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..isa import Directive
from ..telemetry import get_registry
from ..workloads.inputs import Lcg
from .features import FEATURE_NAMES, FEATURE_SCHEMA_VERSION, FeatureVector

#: Model file format version (header magic below).
MODEL_FORMAT_VERSION = 1

MODEL_MAGIC = f"repro-classify-model/{MODEL_FORMAT_VERSION}"

#: The label classes, index == label integer.
LABEL_NONE = 0
LABEL_LAST_VALUE = 1
LABEL_STRIDE = 2
LABEL_NAMES: Tuple[str, ...] = ("none", "last-value", "stride")

_DIRECTIVE_TO_LABEL = {
    None: LABEL_NONE,
    Directive.LAST_VALUE: LABEL_LAST_VALUE,
    Directive.STRIDE: LABEL_STRIDE,
}
_LABEL_TO_DIRECTIVE = {
    LABEL_NONE: None,
    LABEL_LAST_VALUE: Directive.LAST_VALUE,
    LABEL_STRIDE: Directive.STRIDE,
}

#: One training example: (feature vector, label).
Row = Tuple[FeatureVector, int]


class ModelFormatError(ValueError):
    """Raised when a model file fails to parse or verify."""


def directive_label(directive: Optional[Directive]) -> int:
    """Map a phase-3 directive (or ``None``) to its label integer."""
    return _DIRECTIVE_TO_LABEL[directive]


def label_directive(label: int) -> Optional[Directive]:
    """Map a label integer back to its directive (``None`` for untagged)."""
    try:
        return _LABEL_TO_DIRECTIVE[label]
    except KeyError:
        raise ValueError(f"unknown label {label!r}") from None


@dataclasses.dataclass(frozen=True)
class TreeLeaf:
    """Terminal node: the majority label plus its training class counts."""

    label: int
    counts: Tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class TreeNode:
    """Internal split: ``features[feature] <= threshold`` goes left."""

    feature: int
    threshold: int
    left: "Node"
    right: "Node"


Node = Union[TreeLeaf, TreeNode]


@dataclasses.dataclass(frozen=True)
class PredictabilityModel:
    """A trained predictability classifier plus its provenance."""

    tree: Node
    seed: int
    training_rows: int
    schema_version: int = FEATURE_SCHEMA_VERSION
    feature_names: Tuple[str, ...] = FEATURE_NAMES
    labels: Tuple[str, ...] = LABEL_NAMES

    def predict(self, features: FeatureVector) -> int:
        """The label integer for one feature vector."""
        node = self.tree
        while isinstance(node, TreeNode):
            node = node.left if features[node.feature] <= node.threshold else node.right
        return node.label

    def predict_directive(self, features: FeatureVector) -> Optional[Directive]:
        """The predicted directive (``None`` = leave untagged)."""
        return label_directive(self.predict(features))

    @property
    def node_count(self) -> int:
        return _count_nodes(self.tree)

    @property
    def depth(self) -> int:
        return _tree_depth(self.tree)


def _count_nodes(node: Node) -> int:
    if isinstance(node, TreeLeaf):
        return 1
    return 1 + _count_nodes(node.left) + _count_nodes(node.right)


def _tree_depth(node: Node) -> int:
    if isinstance(node, TreeLeaf):
        return 0
    return 1 + max(_tree_depth(node.left), _tree_depth(node.right))


# -- training ----------------------------------------------------------------


def _class_counts(rows: Sequence[Row]) -> List[int]:
    counts = [0] * len(LABEL_NAMES)
    for _, label in rows:
        counts[label] += 1
    return counts


def _majority(counts: Sequence[int]) -> int:
    best = 0
    for label in range(1, len(counts)):
        if counts[label] > counts[best]:
            best = label
    return best


def _best_split(
    rows: Sequence[Row], min_leaf: int
) -> Optional[Tuple[int, int]]:
    """The (feature, threshold) minimizing weighted Gini impurity.

    Comparisons are exact: for a binary split the weighted impurity is
    proportional to ``I / (n_left * n_right)`` with
    ``I = n_right*(n_left^2 - S_left) + n_left*(n_right^2 - S_right)``
    (``S`` = sum of squared class counts), so two candidates compare by
    integer cross-multiplication.  Ties keep the earliest feature, then
    the smallest threshold.
    """
    total = len(rows)
    best: Optional[Tuple[int, int]] = None
    best_score: Optional[Tuple[int, int]] = None  # (numerator, denominator)
    for feature in range(len(FEATURE_NAMES)):
        ordered = sorted(rows, key=lambda row: row[0][feature])
        left_counts = [0] * len(LABEL_NAMES)
        left_square = 0
        total_counts = _class_counts(ordered)
        total_square = sum(count * count for count in total_counts)
        for index in range(1, total):
            label = ordered[index - 1][1]
            left_square += 2 * left_counts[label] + 1
            left_counts[label] += 1
            if ordered[index - 1][0][feature] == ordered[index][0][feature]:
                continue
            n_left, n_right = index, total - index
            if n_left < min_leaf or n_right < min_leaf:
                continue
            right_square = total_square
            for label_index in range(len(LABEL_NAMES)):
                delta = total_counts[label_index] - left_counts[label_index]
                right_square += delta * delta - total_counts[label_index] * total_counts[label_index]
            score = (
                n_right * (n_left * n_left - left_square)
                + n_left * (n_right * n_right - right_square)
            )
            denominator = n_left * n_right
            if best_score is None or score * best_score[1] < best_score[0] * denominator:
                best_score = (score, denominator)
                best = (feature, ordered[index - 1][0][feature])
    return best


def _grow(
    rows: Sequence[Row], depth: int, max_depth: int, min_leaf: int
) -> Node:
    counts = _class_counts(rows)
    pure = sum(1 for count in counts if count > 0) <= 1
    if depth >= max_depth or pure or len(rows) < 2 * min_leaf:
        return TreeLeaf(label=_majority(counts), counts=tuple(counts))
    split = _best_split(rows, min_leaf)
    if split is None:
        return TreeLeaf(label=_majority(counts), counts=tuple(counts))
    feature, threshold = split
    left = [row for row in rows if row[0][feature] <= threshold]
    right = [row for row in rows if row[0][feature] > threshold]
    if not left or not right:
        return TreeLeaf(label=_majority(counts), counts=tuple(counts))
    return TreeNode(
        feature=feature,
        threshold=threshold,
        left=_grow(left, depth + 1, max_depth, min_leaf),
        right=_grow(right, depth + 1, max_depth, min_leaf),
    )


def _subsample(rows: List[Row], limit: int, rng: Lcg) -> List[Row]:
    """Seeded partial Fisher-Yates selection of ``limit`` rows."""
    pool = list(rows)
    for index in range(limit):
        other = index + rng.below(len(pool) - index)
        pool[index], pool[other] = pool[other], pool[index]
    return pool[:limit]


def train_model(
    rows: Sequence[Row],
    *,
    seed: int = 1997,
    max_depth: int = 8,
    min_leaf: int = 2,
    max_rows: int = 50_000,
) -> PredictabilityModel:
    """Grow a decision tree over labeled feature vectors.

    Rows are canonically sorted before training, so the result depends
    only on the training *multiset* (and ``seed``), never on collection
    order.  Oversized datasets are subsampled by an :class:`Lcg` seeded
    from ``seed``.
    """
    if not rows:
        raise ValueError("cannot train on an empty dataset")
    for features, label in rows:
        if len(features) != len(FEATURE_NAMES):
            raise ValueError(
                f"feature vector of width {len(features)} does not match "
                f"schema v{FEATURE_SCHEMA_VERSION} ({len(FEATURE_NAMES)} features)"
            )
        if not 0 <= label < len(LABEL_NAMES):
            raise ValueError(f"label {label!r} outside {LABEL_NAMES}")
    telemetry = get_registry()
    started = time.perf_counter()
    canonical = sorted(rows)
    if len(canonical) > max_rows:
        canonical = sorted(_subsample(canonical, max_rows, Lcg(seed)))
    tree = _grow(canonical, 0, max_depth, min_leaf)
    model = PredictabilityModel(tree=tree, seed=seed, training_rows=len(canonical))
    if telemetry.enabled:
        telemetry.counter("classify.trained").add(1)
        telemetry.timer("classify.train").add(time.perf_counter() - started)
    return model


# -- serialization -----------------------------------------------------------


def _node_to_dict(node: Node) -> dict:
    if isinstance(node, TreeLeaf):
        return {"label": node.label, "counts": list(node.counts)}
    return {
        "feature": node.feature,
        "threshold": node.threshold,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(payload: dict) -> Node:
    if "label" in payload:
        return TreeLeaf(
            label=int(payload["label"]),
            counts=tuple(int(count) for count in payload["counts"]),
        )
    return TreeNode(
        feature=int(payload["feature"]),
        threshold=int(payload["threshold"]),
        left=_node_from_dict(payload["left"]),
        right=_node_from_dict(payload["right"]),
    )


def _model_body(model: PredictabilityModel) -> str:
    payload = {
        "feature_names": list(model.feature_names),
        "labels": list(model.labels),
        "schema_version": model.schema_version,
        "seed": model.seed,
        "training_rows": model.training_rows,
        "tree": _node_to_dict(model.tree),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def model_digest(model: PredictabilityModel) -> str:
    """SHA-256 digest of the model's canonical serialized body."""
    return hashlib.sha256(_model_body(model).encode("utf-8")).hexdigest()


def dumps_model(model: PredictabilityModel) -> str:
    """Serialize to the digest-stamped ``repro-classify-model/1`` format."""
    body = _model_body(model)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return f"{MODEL_MAGIC} sha256={digest}\n{body}"


def loads_model(text: str) -> PredictabilityModel:
    """Parse and verify a serialized model.

    Raises:
        ModelFormatError: on a bad header, a digest mismatch, an
            unsupported format/schema version, or malformed JSON.
    """
    header, separator, body = text.partition("\n")
    if not separator:
        raise ModelFormatError("model file has no body")
    fields = header.split()
    if len(fields) != 2 or fields[0] != MODEL_MAGIC:
        raise ModelFormatError(f"bad model header {header!r}")
    prefix, _, digest = fields[1].partition("=")
    if prefix != "sha256" or not digest:
        raise ModelFormatError(f"bad digest field {fields[1]!r}")
    actual = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if actual != digest:
        raise ModelFormatError(
            f"model digest mismatch: header says {digest[:12]}..., "
            f"body hashes to {actual[:12]}..."
        )
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as error:
        raise ModelFormatError(f"malformed model body: {error}") from None
    try:
        schema_version = int(payload["schema_version"])
        if schema_version != FEATURE_SCHEMA_VERSION:
            raise ModelFormatError(
                f"model uses feature schema v{schema_version}; this build "
                f"extracts v{FEATURE_SCHEMA_VERSION}"
            )
        feature_names = tuple(str(name) for name in payload["feature_names"])
        if feature_names != FEATURE_NAMES:
            raise ModelFormatError("model feature names do not match the schema")
        return PredictabilityModel(
            tree=_node_from_dict(payload["tree"]),
            seed=int(payload["seed"]),
            training_rows=int(payload["training_rows"]),
            schema_version=schema_version,
            feature_names=feature_names,
            labels=tuple(str(label) for label in payload["labels"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, ModelFormatError):
            raise
        raise ModelFormatError(f"malformed model payload: {error}") from None


__all__ = [
    "LABEL_LAST_VALUE",
    "LABEL_NAMES",
    "LABEL_NONE",
    "LABEL_STRIDE",
    "MODEL_FORMAT_VERSION",
    "MODEL_MAGIC",
    "ModelFormatError",
    "Node",
    "PredictabilityModel",
    "Row",
    "TreeLeaf",
    "TreeNode",
    "directive_label",
    "dumps_model",
    "label_directive",
    "loads_model",
    "model_digest",
    "train_model",
]
