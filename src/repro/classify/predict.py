"""Prediction-time helpers: score a binary with a trained model."""

from __future__ import annotations

import time
from typing import Dict

from ..isa import Directive, Program
from ..telemetry import get_registry
from .features import extract_features
from .model import PredictabilityModel, label_directive


def predict_labels(model: PredictabilityModel, program: Program) -> Dict[int, int]:
    """address -> predicted label for every candidate instruction."""
    telemetry = get_registry()
    started = time.perf_counter()
    labels = {
        address: model.predict(features)
        for address, features in extract_features(program).items()
    }
    if telemetry.enabled:
        telemetry.counter("classify.predictions").add(len(labels))
        telemetry.timer("classify.predict").add(time.perf_counter() - started)
    return labels


def predict_directives(
    model: PredictabilityModel, program: Program
) -> Dict[int, Directive]:
    """address -> predicted directive for instructions the model tags."""
    directives = {}
    for address, label in predict_labels(model, program).items():
        directive = label_directive(label)
        if directive is not None:
            directives[address] = directive
    return directives


def annotate_with_model(model: PredictabilityModel, program: Program) -> Program:
    """A re-tagged binary carrying the model's predicted directives.

    The model's verdict replaces any existing directive on every
    candidate — the learned analogue of phase 3, which likewise only
    re-tags opcodes and never moves code.
    """
    labels = predict_labels(model, program)
    return program.with_directives(
        {address: label_directive(label) for address, label in labels.items()}
    )


__all__ = ["annotate_with_model", "predict_directives", "predict_labels"]
