"""Learned predictability classification (profile-free phase 3).

The paper asks whether a *profile* can replace per-entry hardware
counters; this package asks the successor question (PGO-without-Profiles,
PAPERS.md): can a model trained on profiled corpus programs predict
per-instruction predictability from **static features alone**?

Pipeline:

1. :mod:`~repro.classify.features` — versioned static feature vectors
   per candidate instruction (opcode/operand shape, loop nesting,
   block position, reaching-definition shape).
2. :mod:`~repro.classify.dataset` — corpus programs labeled by their own
   phase-2 profiles through the phase-3 directive policy.
3. :mod:`~repro.classify.model` — a seed-deterministic stdlib decision
   tree with digest-stamped save/load.
4. :mod:`~repro.classify.predict` — re-tag any binary with predicted
   directives; :class:`repro.core.LearnedClassification` plugs the
   result into the unified evaluation API.
"""

from .dataset import (
    LabeledProgram,
    build_dataset,
    dataset_rows,
    label_program,
    majority_label,
    profile_workload,
    split_corpus,
)
from .features import (
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    FeatureVector,
    extract_features,
    feature_vector,
    loop_spans,
)
from .model import (
    LABEL_LAST_VALUE,
    LABEL_NAMES,
    LABEL_NONE,
    LABEL_STRIDE,
    MODEL_FORMAT_VERSION,
    MODEL_MAGIC,
    ModelFormatError,
    PredictabilityModel,
    TreeLeaf,
    TreeNode,
    directive_label,
    dumps_model,
    label_directive,
    loads_model,
    model_digest,
    train_model,
)
from .predict import annotate_with_model, predict_directives, predict_labels

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "FeatureVector",
    "LABEL_LAST_VALUE",
    "LABEL_NAMES",
    "LABEL_NONE",
    "LABEL_STRIDE",
    "LabeledProgram",
    "MODEL_FORMAT_VERSION",
    "MODEL_MAGIC",
    "ModelFormatError",
    "PredictabilityModel",
    "TreeLeaf",
    "TreeNode",
    "annotate_with_model",
    "build_dataset",
    "dataset_rows",
    "directive_label",
    "dumps_model",
    "extract_features",
    "feature_vector",
    "label_directive",
    "label_program",
    "loads_model",
    "loop_spans",
    "majority_label",
    "model_digest",
    "predict_directives",
    "predict_labels",
    "profile_workload",
    "split_corpus",
    "train_model",
]
