"""Labeled training data: corpus programs labeled by their own profiles.

The PR 8 corpus generator supplies unlimited programs; phase 2 of the
paper's own methodology supplies the ground truth.  Each corpus program
is profiled on its training input sets, the merged profile is pushed
through the phase-3 :class:`~repro.annotate.AnnotationPolicy`, and the
resulting directive (or its absence) becomes the instruction's label.
The learned model therefore predicts exactly what the profile-guided
classifier *would have said* — with no profile in sight at use time.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..annotate import AnnotationPolicy
from ..isa import Program
from ..profiling import ProfileImage, collect_profile, merge_profiles
from ..telemetry import get_registry
from ..workloads import TRAINING_RUNS, Workload
from .features import FeatureVector, extract_features
from .model import Row, directive_label


@dataclasses.dataclass(frozen=True)
class LabeledProgram:
    """One corpus program's feature vectors and profile-derived labels."""

    name: str
    features: Dict[int, FeatureVector]
    labels: Dict[int, int]

    def rows(self) -> List[Row]:
        """(features, label) pairs in address order."""
        return [
            (self.features[address], self.labels[address])
            for address in sorted(self.features)
        ]


def label_program(
    program: Program,
    profile: ProfileImage,
    policy: Optional[AnnotationPolicy] = None,
) -> Dict[int, int]:
    """Label every candidate address from its profiled statistics.

    Candidates the profile never saw predicted (or never saw at all)
    label as ``none`` — exactly what phase 3 would decide.
    """
    policy = policy or AnnotationPolicy()
    labels: Dict[int, int] = {}
    for address in program.candidate_addresses:
        stats = profile.instructions.get(address)
        directive = None if stats is None else policy.classify(stats)
        labels[address] = directive_label(directive)
    return labels


def profile_workload(
    workload: Workload,
    *,
    training_runs: int = TRAINING_RUNS,
    scale: float = 1.0,
) -> Tuple[Program, ProfileImage]:
    """Compile one workload and merge its training-run profiles."""
    program = workload.compile()
    images = [
        collect_profile(
            program,
            workload.input_set(index, scale=scale),
            run_label=f"train-{index}",
        )
        for index in range(training_runs)
    ]
    profile = (
        images[0]
        if len(images) == 1
        else merge_profiles(images, program_name=workload.name)
    )
    return program, profile


def build_dataset(
    workloads: Sequence[Workload],
    *,
    training_runs: int = TRAINING_RUNS,
    scale: float = 1.0,
    policy: Optional[AnnotationPolicy] = None,
) -> List[LabeledProgram]:
    """Profile and label a corpus slice (phase 2 per program)."""
    telemetry = get_registry()
    started = time.perf_counter()
    labeled = []
    for workload in workloads:
        program, profile = profile_workload(
            workload, training_runs=training_runs, scale=scale
        )
        labeled.append(
            LabeledProgram(
                name=workload.name,
                features=extract_features(program),
                labels=label_program(program, profile, policy),
            )
        )
    if telemetry.enabled:
        telemetry.counter("classify.programs").add(len(labeled))
        telemetry.timer("classify.dataset").add(time.perf_counter() - started)
    return labeled


def dataset_rows(labeled: Iterable[LabeledProgram]) -> List[Row]:
    """All (features, label) rows of a labeled corpus, in corpus order."""
    rows: List[Row] = []
    for item in labeled:
        rows.extend(item.rows())
    return rows


def majority_label(rows: Sequence[Row]) -> int:
    """The most frequent label (lowest index on ties) — the baseline."""
    counts = [0, 0, 0]
    for _, label in rows:
        counts[label] += 1
    best = 0
    for label in range(1, len(counts)):
        if counts[label] > counts[best]:
            best = label
    return best


def split_corpus(
    workloads: Sequence[Workload], train_fraction: float = 0.75
) -> Tuple[List[Workload], List[Workload]]:
    """Deterministic prefix split into (training, held-out) slices.

    Corpus workload ``i`` is a pure function of ``(corpus_seed, i)``, so
    a prefix split is already an independent draw; no shuffle needed.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if len(workloads) < 2:
        raise ValueError("need at least two workloads to split")
    cut = int(len(workloads) * train_fraction)
    cut = max(1, min(cut, len(workloads) - 1))
    return list(workloads[:cut]), list(workloads[cut:])


__all__ = [
    "LabeledProgram",
    "build_dataset",
    "dataset_rows",
    "label_program",
    "majority_label",
    "profile_workload",
    "split_corpus",
]
