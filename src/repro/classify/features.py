"""Static per-instruction features for learned predictability classification.

The feature extractor answers one question: what can be said about a
value-prediction candidate from the *binary alone* — no profile, no
execution?  Each candidate address gets a fixed-width vector of small
integers derived from the opcode, its operand shape, the surrounding
basic-block/loop structure (via :mod:`repro.analysis.blocks`) and the
within-block reaching definitions of its source registers.

The schema is versioned: :data:`FEATURE_SCHEMA_VERSION` names the exact
tuple layout in :data:`FEATURE_NAMES`, and saved models record both, so
a model trained under one schema refuses to score vectors from another.

Everything here is deterministic by construction — features are plain
integers computed from the instruction tuple in address order; no hash
iteration, no floats — so the same program yields byte-identical vectors
in every process and under every ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..analysis.blocks import BasicBlock, basic_blocks, block_of, control_flow_graph
from ..isa import Category, Opcode, Program
from ..telemetry import get_registry

#: Bump when the tuple layout below changes; stored in every model file.
FEATURE_SCHEMA_VERSION = 1

#: The feature tuple layout, in order.  All values are small integers.
FEATURE_NAMES: Tuple[str, ...] = (
    "category",                 # Category enum index of the opcode
    "is_fp",                    # FP ALU or FP load
    "is_load",                  # integer or FP load
    "source_count",             # number of source registers
    "has_immediate",            # carries an immediate operand
    "immediate_magnitude",      # |imm| truncated to int, capped at 255
    "loop_depth",               # enclosing natural-loop nesting depth
    "block_size",               # instructions in the containing block
    "block_position",           # offset from the block leader
    "block_fraction_milli",     # position / (size - 1), in thousandths
    "self_recurrence",          # instruction reads its own destination
    "sources_defined_in_block", # sources with an earlier writer in-block
    "fed_by_load",              # some source's in-block writer is a load
    "fed_by_immediate",         # ... is li/fli
    "fed_by_input",             # ... is in()/fin()
    "fed_by_induction",         # ... is itself a self-recurrence (x = x+k)
)

FeatureVector = Tuple[int, ...]

_CATEGORY_INDEX = {category: index for index, category in enumerate(Category)}
_LOAD_CATEGORIES = (Category.INT_LOAD, Category.FP_LOAD)
_FP_CATEGORIES = (Category.FP_ALU, Category.FP_LOAD)
_IMMEDIATE_OPCODES = (Opcode.LI, Opcode.FLI)
_INPUT_OPCODES = (Opcode.IN, Opcode.FIN)

#: Cap on the immediate-magnitude feature, so one outlier constant
#: cannot dominate threshold selection.
_IMMEDIATE_CAP = 255


def loop_spans(program: Program) -> List[Tuple[int, int]]:
    """Half-open ``[body_start, body_end)`` address spans of natural loops.

    A loop is a backward edge in the block-level control-flow graph — an
    edge whose target block starts at or before the source block (the
    structured mini-C compiler only emits backward control flow for
    loops).  The loop body spans from the target leader through the end
    of the source block.
    """
    blocks = basic_blocks(program)
    ends = {block.start: block.end for block in blocks}
    spans = []
    for source, successors in sorted(control_flow_graph(program).items()):
        for target in successors:
            if target <= source:
                spans.append((target, ends[source]))
    return sorted(spans)


def _loop_depth(spans: List[Tuple[int, int]], address: int) -> int:
    return sum(1 for low, high in spans if low <= address < high)


def _in_block_writer(
    program: Program, block: BasicBlock, address: int, register: int
) -> Optional[int]:
    """Address of the nearest earlier in-block writer of ``register``."""
    for earlier in range(address - 1, block.start - 1, -1):
        if program[earlier].dest == register:
            return earlier
    return None


def feature_vector(
    program: Program,
    address: int,
    blocks: List[BasicBlock],
    spans: List[Tuple[int, int]],
) -> FeatureVector:
    """The feature tuple for one instruction (see :data:`FEATURE_NAMES`)."""
    instruction = program[address]
    category = instruction.category
    block = block_of(blocks, address)
    position = address - block.start
    size = len(block)
    fraction = 0 if size <= 1 else (1000 * position) // (size - 1)
    immediate = instruction.imm
    magnitude = 0 if immediate is None else min(int(abs(immediate)), _IMMEDIATE_CAP)
    self_recurrence = int(
        instruction.dest is not None and instruction.dest in instruction.srcs
    )
    defined = fed_load = fed_immediate = fed_input = fed_induction = 0
    for register in instruction.srcs:
        writer_address = _in_block_writer(program, block, address, register)
        if writer_address is None:
            continue
        defined += 1
        writer = program[writer_address]
        if writer.category in _LOAD_CATEGORIES:
            fed_load = 1
        if writer.opcode in _IMMEDIATE_OPCODES:
            fed_immediate = 1
        if writer.opcode in _INPUT_OPCODES:
            fed_input = 1
        if writer.dest is not None and writer.dest in writer.srcs:
            fed_induction = 1
    return (
        _CATEGORY_INDEX[category],
        int(category in _FP_CATEGORIES),
        int(category in _LOAD_CATEGORIES),
        len(instruction.srcs),
        int(immediate is not None),
        magnitude,
        _loop_depth(spans, address),
        size,
        position,
        fraction,
        self_recurrence,
        defined,
        fed_load,
        fed_immediate,
        fed_input,
        fed_induction,
    )


def extract_features(program: Program) -> Dict[int, FeatureVector]:
    """Feature vectors for every prediction candidate, in address order."""
    telemetry = get_registry()
    started = time.perf_counter()
    blocks = basic_blocks(program)
    spans = loop_spans(program)
    features = {
        address: feature_vector(program, address, blocks, spans)
        for address in program.candidate_addresses
    }
    if telemetry.enabled:
        telemetry.counter("classify.features").add(len(features))
        telemetry.timer("classify.extract").add(time.perf_counter() - started)
    return features


__all__ = [
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "FeatureVector",
    "extract_features",
    "feature_vector",
    "loop_spans",
]
