"""Classification schemes: who decides what gets predicted and allocated.

The paper compares two mechanisms layered on the same value predictor:

* :class:`HardwareClassification` — the baseline.  Every candidate
  instruction is allocated into the prediction table on a miss; a
  per-entry saturating counter decides whether each suggested prediction
  is *taken*.
* :class:`ProfileClassification` — the contribution.  Only instructions
  carrying a ``stride``/``last-value`` opcode directive are allocated;
  any suggestion from the table is taken.  The counters disappear.

:class:`AlwaysClassification` (take everything, allocate everything) is
the unclassified baseline used for predictor-accuracy measurements.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

from ..isa import Directive, Program
from ..predictors import FsmClassifier


class ClassificationScheme(abc.ABC):
    """Per-instruction allocate/take policy plus its learning rule."""

    @abc.abstractmethod
    def may_allocate(self, address: int) -> bool:
        """May this instruction occupy a prediction-table entry?"""

    @abc.abstractmethod
    def should_take(self, address: int) -> bool:
        """Should a table hit's suggested value actually be used?"""

    def record(self, address: int, correct: bool) -> None:
        """Observe a prediction outcome (hardware schemes learn here)."""

    def on_evict(self, address: int) -> None:
        """The prediction table displaced this instruction's entry."""

    def directive_of(self, address: int) -> Optional[Directive]:
        """The directive steering hybrid-table placement (if any)."""
        return None


class AlwaysClassification(ClassificationScheme):
    """No classification: allocate everything, take every suggestion."""

    def may_allocate(self, address: int) -> bool:
        return True

    def should_take(self, address: int) -> bool:
        return True


class HardwareClassification(ClassificationScheme):
    """Saturating-counter classification (the paper's "VP + SC")."""

    def __init__(
        self, bits: int = 2, initial: int = 1, take_threshold: int = 2
    ) -> None:
        self.fsm = FsmClassifier(bits=bits, initial=initial, take_threshold=take_threshold)

    def may_allocate(self, address: int) -> bool:
        return True

    def should_take(self, address: int) -> bool:
        return self.fsm.should_take(address)

    def record(self, address: int, correct: bool) -> None:
        self.fsm.record(address, correct)

    def on_evict(self, address: int) -> None:
        self.fsm.on_evict(address)


class ProbeScheme(ClassificationScheme):
    """Measurement wrapper: allocate everything, decide like the wrapped scheme.

    The classification-accuracy study (Figures 5.1/5.2) judges each
    mechanism's *take/avoid* decisions against an infinite, fully
    allocated predictor, so the set of prediction attempts is identical
    for every mechanism.  This wrapper forces allocation while delegating
    the take decision and the learning rule.
    """

    def __init__(self, inner: ClassificationScheme) -> None:
        self.inner = inner

    def may_allocate(self, address: int) -> bool:
        return True

    def should_take(self, address: int) -> bool:
        return self.inner.should_take(address)

    def record(self, address: int, correct: bool) -> None:
        self.inner.record(address, correct)

    def on_evict(self, address: int) -> None:
        self.inner.on_evict(address)

    def directive_of(self, address: int):
        return self.inner.directive_of(address)


class ProfileClassification(ClassificationScheme):
    """Directive-driven classification (the paper's "VP + Prof").

    Built from an *annotated* program: the static directive map is the
    entire mechanism.  Instructions without a directive are never
    allocated and never predicted; tagged instructions are always taken.
    """

    def __init__(self, annotated_program: Program) -> None:
        self._directives: Dict[int, Directive] = annotated_program.directives()

    @classmethod
    def from_directives(cls, directives: Dict[int, Directive]) -> "ProfileClassification":
        """Build directly from an address -> directive map."""
        scheme = cls.__new__(cls)
        scheme._directives = dict(directives)
        return scheme

    def may_allocate(self, address: int) -> bool:
        return address in self._directives

    def should_take(self, address: int) -> bool:
        return address in self._directives

    def directive_of(self, address: int) -> Optional[Directive]:
        return self._directives.get(address)

    @property
    def tagged_count(self) -> int:
        return len(self._directives)


class LearnedClassification(ClassificationScheme):
    """Model-predicted directive classification (learned, profile-free).

    The modern successor question (PGO-without-Profiles): a
    :class:`repro.classify.PredictabilityModel` predicts each candidate
    instruction's directive from static features alone, and the
    predicted directive map then behaves exactly like the paper's
    profile scheme — untagged instructions are never allocated and never
    predicted, tagged ones are always taken.  No profile, no counters.
    """

    def __init__(self, directives: Dict[int, Directive]) -> None:
        self._directives: Dict[int, Directive] = dict(directives)

    @classmethod
    def from_model(cls, model, program: Program) -> "LearnedClassification":
        """Score ``program`` with a trained model and keep its tags."""
        # Imported lazily: repro.classify depends on repro.isa/analysis
        # only, but pulling it in at module import would cost every core
        # consumer the feature-extractor import.
        from ..classify import predict_directives

        return cls(predict_directives(model, program))

    def may_allocate(self, address: int) -> bool:
        return address in self._directives

    def should_take(self, address: int) -> bool:
        return address in self._directives

    def directive_of(self, address: int) -> Optional[Directive]:
        return self._directives.get(address)

    @property
    def tagged_count(self) -> int:
        return len(self._directives)
