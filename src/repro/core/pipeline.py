"""The complete three-phase methodology as one facade (paper Figure 3.1).

Phase 1: compile the program (:func:`repro.lang.compile_source`).
Phase 2: run it under the tracing simulator with training inputs and
collect the profile image (:func:`repro.profiling.collect_profile`).
Phase 3: re-tag the binary's opcodes with value-predictability directives
(:func:`repro.annotate.annotate_program`).

:func:`run_methodology` executes all three and returns the annotated
binary plus everything collected along the way; evaluation helpers then
measure the classified predictor and ILP on *test* inputs, never the
training inputs — the cross-input transfer is the paper's whole point.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Iterable, List, Optional, Protocol, Sequence, runtime_checkable

from ..annotate import AnnotationPolicy, AnnotationReport, annotate_program, annotation_report
from ..isa import Number, Program
from ..lang import compile_source
from ..profiling import ProfileImage, collect_profile, merge_profiles
from ..predictors import StridePredictor
from ..telemetry import Telemetry, use_registry
from .schemes import (
    ClassificationScheme,
    HardwareClassification,
    LearnedClassification,
    ProfileClassification,
)
from .simulate import simulate_prediction
from .results import PredictionStats

InputSet = Sequence[Number]


@dataclasses.dataclass
class MethodologyResult:
    """Everything the three phases produced."""

    program: Program
    annotated: Program
    training_images: List[ProfileImage]
    profile: ProfileImage
    report: AnnotationReport
    policy: AnnotationPolicy


def run_methodology(
    source_or_program,
    train_inputs: Sequence[InputSet],
    policy: Optional[AnnotationPolicy] = None,
    name: str = "<minic>",
    max_instructions: Optional[int] = None,
) -> MethodologyResult:
    """Run phases 1-3 and return the annotated binary.

    Args:
        source_or_program: mini-C source text, or an already compiled
            :class:`~repro.isa.program.Program`.
        train_inputs: one input stream per training run (the paper uses
            n=5 distinct input sets).
        policy: annotation thresholds (default: 90% accuracy, 50% stride
            split).
        name: program name if compiling from source.
        max_instructions: optional per-run dynamic-instruction cap.
    """
    if not train_inputs:
        raise ValueError("need at least one training input set")
    policy = policy or AnnotationPolicy()
    if isinstance(source_or_program, Program):
        program = source_or_program
    else:
        program = compile_source(source_or_program, name=name)
    images = [
        collect_profile(
            program,
            inputs,
            run_label=f"train-{index}",
            max_instructions=max_instructions,
        )
        for index, inputs in enumerate(train_inputs)
    ]
    profile = images[0] if len(images) == 1 else merge_profiles(images)
    annotated = annotate_program(program, profile, policy)
    report = annotation_report(program, profile, policy)
    return MethodologyResult(
        program=program,
        annotated=annotated,
        training_images=images,
        profile=profile,
        report=report,
        policy=policy,
    )


@runtime_checkable
class EvaluationScheme(Protocol):
    """What :func:`evaluate_scheme` needs: a binary plus its classifier.

    Anything exposing a ``program`` (the binary to run on the test
    inputs) and a ``classification()`` factory (a fresh
    :class:`~repro.core.schemes.ClassificationScheme` per evaluation)
    can be evaluated — the bundled :class:`ProfileScheme` and
    :class:`HardwareScheme` cover the paper's two mechanisms, and
    custom classification studies plug in the same way.
    """

    @property
    def program(self) -> Program: ...

    def classification(self) -> ClassificationScheme: ...


@dataclasses.dataclass(frozen=True)
class ProfileScheme:
    """The paper's contribution as an evaluation scheme (``VP + Prof``).

    Wraps a :class:`MethodologyResult`: the annotated binary runs on the
    test inputs and its directive map is the entire classifier.
    """

    result: MethodologyResult

    @property
    def program(self) -> Program:
        return self.result.annotated

    def classification(self) -> ClassificationScheme:
        return ProfileClassification(self.result.annotated)


@dataclasses.dataclass(frozen=True)
class HardwareScheme:
    """The saturating-counter baseline as an evaluation scheme (``VP + SC``)."""

    program: Program
    bits: int = 2
    initial: int = 1
    take_threshold: int = 2

    def classification(self) -> ClassificationScheme:
        return HardwareClassification(
            bits=self.bits, initial=self.initial, take_threshold=self.take_threshold
        )


@dataclasses.dataclass(frozen=True)
class LearnedScheme:
    """A learned classifier as an evaluation scheme (``VP + Learned``).

    Wraps a trained :class:`repro.classify.PredictabilityModel`: the
    *unannotated* binary runs on the test inputs and the model's
    predicted directive map is the entire classifier — the profile-free
    analogue of :class:`ProfileScheme`.
    """

    program: Program
    model: object  # repro.classify.PredictabilityModel; untyped to keep core light

    def classification(self) -> ClassificationScheme:
        return LearnedClassification.from_model(self.model, self.program)


def evaluate_scheme(
    scheme: EvaluationScheme,
    workload_inputs: InputSet,
    *,
    entries: Optional[int] = 512,
    ways: int = 2,
    max_instructions: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> PredictionStats:
    """Measure one classification scheme on a workload's inputs.

    The single evaluation entry point: both of the paper's mechanisms
    run the identical protocol — a finite stride predictor driven over
    one execution, with the scheme deciding allocation and take — so
    the scheme object is the only axis.

    Args:
        scheme: an :class:`EvaluationScheme` (e.g. ``ProfileScheme(result)``
            or ``HardwareScheme(program)``).
        workload_inputs: the run's (test) input stream.
        entries / ways: prediction-table geometry (paper: 512 × 2-way).
        max_instructions: optional dynamic-instruction cap.
        telemetry: optional registry installed for the duration of the
            simulation; defaults to the process-global one.
    """
    scope = use_registry(telemetry) if telemetry is not None else contextlib.nullcontext()
    with scope:
        return simulate_prediction(
            scheme.program,
            workload_inputs,
            predictor=StridePredictor(entries, ways),
            scheme=scheme.classification(),
            max_instructions=max_instructions,
        )
