"""The complete three-phase methodology as one facade (paper Figure 3.1).

Phase 1: compile the program (:func:`repro.lang.compile_source`).
Phase 2: run it under the tracing simulator with training inputs and
collect the profile image (:func:`repro.profiling.collect_profile`).
Phase 3: re-tag the binary's opcodes with value-predictability directives
(:func:`repro.annotate.annotate_program`).

:func:`run_methodology` executes all three and returns the annotated
binary plus everything collected along the way; evaluation helpers then
measure the classified predictor and ILP on *test* inputs, never the
training inputs — the cross-input transfer is the paper's whole point.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

from ..annotate import AnnotationPolicy, AnnotationReport, annotate_program, annotation_report
from ..isa import Number, Program
from ..lang import compile_source
from ..profiling import ProfileImage, collect_profile, merge_profiles
from ..predictors import StridePredictor
from .schemes import HardwareClassification, ProfileClassification
from .simulate import simulate_prediction
from .results import PredictionStats

InputSet = Sequence[Number]


@dataclasses.dataclass
class MethodologyResult:
    """Everything the three phases produced."""

    program: Program
    annotated: Program
    training_images: List[ProfileImage]
    profile: ProfileImage
    report: AnnotationReport
    policy: AnnotationPolicy


def run_methodology(
    source_or_program,
    train_inputs: Sequence[InputSet],
    policy: Optional[AnnotationPolicy] = None,
    name: str = "<minic>",
    max_instructions: Optional[int] = None,
) -> MethodologyResult:
    """Run phases 1-3 and return the annotated binary.

    Args:
        source_or_program: mini-C source text, or an already compiled
            :class:`~repro.isa.program.Program`.
        train_inputs: one input stream per training run (the paper uses
            n=5 distinct input sets).
        policy: annotation thresholds (default: 90% accuracy, 50% stride
            split).
        name: program name if compiling from source.
        max_instructions: optional per-run dynamic-instruction cap.
    """
    if not train_inputs:
        raise ValueError("need at least one training input set")
    policy = policy or AnnotationPolicy()
    if isinstance(source_or_program, Program):
        program = source_or_program
    else:
        program = compile_source(source_or_program, name=name)
    images = [
        collect_profile(
            program,
            inputs,
            run_label=f"train-{index}",
            max_instructions=max_instructions,
        )
        for index, inputs in enumerate(train_inputs)
    ]
    profile = images[0] if len(images) == 1 else merge_profiles(images)
    annotated = annotate_program(program, profile, policy)
    report = annotation_report(program, profile, policy)
    return MethodologyResult(
        program=program,
        annotated=annotated,
        training_images=images,
        profile=profile,
        report=report,
        policy=policy,
    )


def evaluate_profile_scheme(
    result: MethodologyResult,
    test_inputs: InputSet,
    entries: Optional[int] = 512,
    ways: int = 2,
    max_instructions: Optional[int] = None,
) -> PredictionStats:
    """Measure the profile-classified predictor on unseen inputs."""
    return simulate_prediction(
        result.annotated,
        test_inputs,
        predictor=StridePredictor(entries, ways),
        scheme=ProfileClassification(result.annotated),
        max_instructions=max_instructions,
    )


def evaluate_hardware_scheme(
    program: Program,
    test_inputs: InputSet,
    entries: Optional[int] = 512,
    ways: int = 2,
    max_instructions: Optional[int] = None,
) -> PredictionStats:
    """Measure the saturating-counter baseline on the same inputs."""
    return simulate_prediction(
        program,
        test_inputs,
        predictor=StridePredictor(entries, ways),
        scheme=HardwareClassification(),
        max_instructions=max_instructions,
    )
