"""Vectorized (numpy) backend for the value-prediction simulation.

:func:`build_vec_plan` inspects a set of
:class:`~repro.core.simulate.PredictionEngine` instances and, when every
engine's evolution is a pure function of the candidate stream — infinite
tables starting empty, stock classification schemes — returns a
:class:`VecSimulationPlan` that replaces the per-record Python loop with
array arithmetic:

1. **accumulate** — each :class:`~repro.machine.TraceBatch` contributes
   its candidate ``(address, value)`` pairs as int64 ndarray chunks
   (zero Python objects: the packed value column is lifted straight into
   an ndarray);
2. **finish** — one stable sort groups the stream by static address into
   contiguous segments that preserve per-address time order, and every
   predictor family reduces to segment expressions over the sorted
   columns: last-value correctness is ``v_i == v_{i-1}``, stride
   correctness is ``v_i == 2 v_{i-1} - v_{i-2}``, two-delta's committed
   stride is a segmented forward-fill of repeated deltas, and the
   saturating-counter classifier is a segmented prefix scan over clamped
   increment maps (``x -> clip(x + a, lo, hi)`` maps compose in closed
   form, so a Hillis-Steele doubling scan recovers every counter state
   the sequential FSM would have seen).

The backend is *bit-identical* to the pure-Python path: identical
:class:`~repro.core.results.PredictionStats`, identical final table
entries inserted in first-occurrence order, identical table meters, and
identical FSM counter states.  The ``simulate-vec-vs-pure`` differential
oracle pair (:mod:`repro.check.oracle`) holds the two paths against each
other over randomized programs.

Eligibility is conservative.  The plan refuses engines with finite or
pre-populated tables, non-stock schemes, or pre-trained FSM state; and
it demotes *mid-run* (replaying everything accumulated so far through
the pure consumers) the moment a batch carries escaped values (floats /
bigints) or integers at magnitudes where ``2a - b`` could wrap int64.
numpy itself is optional — the ``repro[fast]`` extra; without it (or
with ``REPRO_NO_NUMPY=1`` in the environment) :func:`build_vec_plan`
returns ``None`` and the simulation runs the pure path.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..isa import Directive, Program
from ..machine import value_flags
from ..predictors import (
    FsmClassifier,
    HybridPredictor,
    LastValuePredictor,
    StridePredictor,
)
from ..predictors.fsm import SaturatingCounter
from ..predictors.last_value import LastValueEntry
from ..predictors.stride import StrideEntry
from ..predictors.table import PredictionTable
from ..predictors.two_delta import TwoDeltaEntry, TwoDeltaStridePredictor
from ..telemetry import get_registry
from .schemes import (
    AlwaysClassification,
    HardwareClassification,
    ProbeScheme,
    ProfileClassification,
)

try:  # numpy is the optional ``repro[fast]`` extra
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _numpy = None

#: Values must satisfy ``|v| < 2**61`` for the vectorized math to stay
#: inside int64: the stride expression ``2a - b`` reaches ``3 * 2**61``
#: in magnitude, just under the ``2**63`` wrap point.
SAFE_MAGNITUDE = 1 << 61

#: Environment flag forcing the pure-Python path even when numpy is
#: importable — the no-numpy CI leg and the differential oracle use it.
DISABLE_ENV = "REPRO_NO_NUMPY"


def numpy_or_none():
    """The numpy module, or ``None`` when absent or disabled via env."""
    if _numpy is None or os.environ.get(DISABLE_ENV):
        return None
    return _numpy


class _EngineSpec:
    """One engine's statically-decomposed policy, vec-path form."""

    __slots__ = (
        "engine",
        "family",
        "alloc_members",
        "take_members",
        "fsm",
        "stride_members",
    )

    def __init__(
        self, engine, family, alloc_members, take_members, fsm, stride_members
    ) -> None:
        self.engine = engine
        self.family = family
        self.alloc_members = alloc_members
        self.take_members = take_members
        self.fsm = fsm
        self.stride_members = stride_members


_STOCK = (AlwaysClassification, HardwareClassification, ProfileClassification)


def _engine_spec(engine) -> Optional[_EngineSpec]:
    """Decompose one engine into vec-path form, or ``None`` if ineligible."""
    predictor = engine.predictor
    scheme = engine.scheme
    if type(scheme) is ProbeScheme:
        inner = scheme.inner
        alloc_members = None
    else:
        inner = scheme
        alloc_members = (
            scheme._directives if type(scheme) is ProfileClassification else None
        )
    if type(inner) not in _STOCK:
        return None
    take_members = None
    fsm = None
    if type(inner) is ProfileClassification:
        take_members = inner._directives
    elif type(inner) is HardwareClassification:
        fsm = inner.fsm
        if type(fsm) is not FsmClassifier or fsm._counters:
            return None

    kind = type(predictor)
    stride_members: Optional[frozenset] = None
    if kind is StridePredictor:
        family = "stride"
        tables = (predictor.table,)
    elif kind is LastValuePredictor:
        family = "last_value"
        tables = (predictor.table,)
    elif kind is TwoDeltaStridePredictor:
        family = "two_delta"
        tables = (predictor.table,)
    elif kind is HybridPredictor:
        if type(predictor.stride) is not StridePredictor:
            return None
        if type(predictor.last_value) is not LastValuePredictor:
            return None
        family = "hybrid"
        tables = (predictor.stride.table, predictor.last_value.table)
        directives = getattr(inner, "_directives", None) or {}
        stride_members = frozenset(
            address
            for address, directive in directives.items()
            if directive is Directive.STRIDE
        )
    else:
        return None
    for table in tables:
        if type(table) is not PredictionTable:
            return None
        if not table.is_infinite or len(table):
            return None
        if table.lookups or table.hits or table.evictions:
            return None
    return _EngineSpec(engine, family, alloc_members, take_members, fsm, stride_members)


def build_vec_plan(program: Program, engine_list) -> Optional["VecSimulationPlan"]:
    """A :class:`VecSimulationPlan` for ``engine_list``, or ``None``.

    Returns ``None`` when numpy is unavailable/disabled or any engine
    falls outside the vectorized envelope; the caller then runs the
    pure-Python consumers unchanged.
    """
    np = numpy_or_none()
    if np is None or not engine_list:
        return None
    specs = []
    for engine in engine_list:
        spec = _engine_spec(engine)
        if spec is None:
            return None
        specs.append(spec)
    return VecSimulationPlan(np, program, engine_list, specs)


class VecSimulationPlan:
    """Accumulates a run's candidate stream and folds it vectorially."""

    def __init__(self, np, program: Program, engine_list, specs) -> None:
        self._np = np
        self._specs = specs
        self._engines = engine_list
        code_size = len(program.instructions)
        self._produced_lut = np.frombuffer(
            value_flags(program), dtype=np.uint8
        ).astype(bool)
        self._cand_lut = np.zeros(code_size, dtype=bool)
        for address, flag in enumerate(engine_list[0]._is_candidate):
            if flag:
                self._cand_lut[address] = True
        self._chunks_a: List = []
        self._chunks_v: List = []
        self._records = 0
        self._candidates = 0

    def consume(self, batch) -> bool:
        """Accumulate one batch; ``False`` demands demotion to pure.

        A ``False`` return leaves the plan untouched by this batch, so
        the caller can replay the accumulated stream through the pure
        consumers and then feed it this very batch record-at-a-time.
        """
        column = batch.values
        if column.escapes:
            return False
        np = self._np
        addrs = np.frombuffer(batch.addresses, dtype=np.int64)
        produced_addrs = addrs[self._produced_lut[addrs]]
        keep = self._cand_lut[produced_addrs]
        values = np.frombuffer(column.ints, dtype=np.int64)[keep]
        if values.size:
            if (
                int(values.max()) >= SAFE_MAGNITUDE
                or int(values.min()) <= -SAFE_MAGNITUDE
            ):
                return False
            self._chunks_a.append(produced_addrs[keep])
            self._chunks_v.append(values)
            self._candidates += int(values.size)
        self._records += len(batch)
        return True

    def drain_pairs(self):
        """Yield the accumulated stream as ``(address, value)`` lists.

        Used on demotion: the pure consumers replay exactly the pairs
        the plan had absorbed, in original trace order.
        """
        for chunk_a, chunk_v in zip(self._chunks_a, self._chunks_v):
            yield list(zip(chunk_a.tolist(), chunk_v.tolist()))
        self._chunks_a = []
        self._chunks_v = []

    # -- the vectorized fold ----------------------------------------------

    def finish(self) -> None:
        """Fold the accumulated stream into every engine's state."""
        np = self._np
        telemetry = get_registry()
        if telemetry.enabled:
            telemetry.counter("simulate.vec.runs").add(1)
            telemetry.counter("simulate.vec.records").add(self._records)
            telemetry.counter("simulate.vec.candidates").add(self._candidates)
            telemetry.counter("simulate.vec.engines").add(len(self._specs))
        if not self._chunks_a:
            return
        stream_a = np.concatenate(self._chunks_a)
        stream_v = np.concatenate(self._chunks_v)
        self._chunks_a = []
        self._chunks_v = []
        n = stream_a.size

        order = np.argsort(stream_a, kind="stable")
        sa = stream_a[order]
        sv = stream_v[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = sa[1:] != sa[:-1]
        not_first = ~first
        seg_id = np.cumsum(first) - 1
        starts = np.flatnonzero(first)
        ends = np.append(starts[1:], n) - 1
        counts = np.diff(np.append(starts, n))
        seg_addresses = sa[starts]
        # Pure-path dicts grow in first-occurrence order; recover it so
        # table entries land in identical insertion order.
        _, first_pos = np.unique(stream_a, return_index=True)
        occurrence_order = np.argsort(first_pos, kind="stable")

        prev = np.empty(n, dtype=np.int64)
        prev[0] = 0
        prev[1:] = sv[:-1]
        delta = np.where(not_first, sv - prev, 0)
        delta_prev = np.empty(n, dtype=np.int64)
        delta_prev[0] = 0
        delta_prev[1:] = delta[:-1]

        families = {spec.family for spec in self._specs}
        lv_correct = stride_correct = td_correct = committed_after = None
        if families & {"last_value", "hybrid"}:
            lv_correct = not_first & (sv == prev)
        if families & {"stride", "hybrid"}:
            # A fresh entry predicts with stride 0, and delta is pinned
            # to 0 at segment firsts — so ``prev + delta_prev`` covers
            # the second access (last-value degenerate) and the general
            # case ``2 v_{i-1} - v_{i-2}`` alike.
            stride_correct = not_first & (sv == prev + delta_prev)
        if "two_delta" in families:
            committed_after = _committed_strides(
                np, n, seg_id, not_first, delta, delta_prev
            )
            committed_prev = np.empty(n, dtype=np.int64)
            committed_prev[0] = 0
            committed_prev[1:] = committed_after[:-1]
            committed_before = np.where(not_first, committed_prev, 0)
            td_correct = not_first & (sv == prev + committed_before)

        shared = _SharedColumns(
            np=np,
            sa=sa,
            sv=sv,
            seg_id=seg_id,
            first=first,
            not_first=not_first,
            starts=starts,
            ends=ends,
            counts=counts,
            seg_addresses=seg_addresses,
            occurrence_order=occurrence_order,
            delta=delta,
            lv_correct=lv_correct,
            stride_correct=stride_correct,
            td_correct=td_correct,
            committed_after=committed_after,
            code_size=self._cand_lut.size,
        )
        for spec in self._specs:
            _fold_engine(shared, spec)


class _SharedColumns:
    """Per-run sorted columns shared by every engine's fold."""

    __slots__ = (
        "np",
        "sa",
        "sv",
        "seg_id",
        "first",
        "not_first",
        "starts",
        "ends",
        "counts",
        "seg_addresses",
        "occurrence_order",
        "delta",
        "lv_correct",
        "stride_correct",
        "td_correct",
        "committed_after",
        "code_size",
    )

    def __init__(self, **fields) -> None:
        for name, value in fields.items():
            setattr(self, name, value)

    def member_lut(self, members) -> "object":
        """Static-address membership as a boolean LUT."""
        np = self.np
        lut = np.zeros(self.code_size, dtype=bool)
        addresses = [a for a in members if 0 <= a < self.code_size]
        if addresses:
            lut[addresses] = True
        return lut


def _committed_strides(np, n, seg_id, not_first, delta, delta_prev):
    """Two-delta committed stride *after* each record, per segment.

    The committed stride changes at record ``i`` exactly when the new
    delta repeats the previous one (``delta_i == delta_{i-1}``, with the
    initial candidate stride 0 standing in at the second access); it is
    then ``delta_i``.  A segmented forward-fill of those change points
    recovers the committed stride everywhere, keyed so the running max
    never leaks across segment boundaries.
    """
    changed = not_first & (delta == delta_prev)
    position = np.arange(n, dtype=np.int64)
    keyed = seg_id * (n + 1) + np.where(changed, position + 1, 0)
    filled = np.maximum.accumulate(keyed) - seg_id * (n + 1) - 1
    return np.where(filled >= 0, delta[np.maximum(filled, 0)], 0)


def _fsm_scan(np, seg_id, not_first, correct, initial, maximum):
    """Per-record counter state *before* each attempt's take decision.

    Each attempt applies ``x -> clip(x + a, 0, maximum)`` with ``a = +1``
    on a correct suggestion and ``-1`` otherwise.  Such clamped maps are
    closed under composition — ``(a_f, l_f, h_f)`` then ``(a_g, l_g,
    h_g)`` is ``(a_f + a_g, clip(l_f + a_g, l_g, h_g), clip(h_f + a_g,
    l_g, h_g))`` — so a segmented Hillis-Steele doubling scan composes
    each record's *predecessor* maps and one final application to the
    initial state yields the state the sequential FSM consults.
    """
    n = seg_id.size
    ident_lo = np.int64(-(1 << 30))
    ident_hi = np.int64(1 << 30)
    step = np.where(correct, 1, -1).astype(np.int64)
    # Effective map at i = the (i-1)-th record's update when that record
    # was an attempt of the same segment, else the identity.
    has_prev = np.zeros(n, dtype=bool)
    has_prev[1:] = not_first[1:] & not_first[:-1]
    shift = np.zeros(n, dtype=np.int64)
    shift[1:] = np.where(has_prev[1:], step[:-1], 0)
    lo = np.where(has_prev, np.int64(0), ident_lo)
    hi = np.where(has_prev, np.int64(maximum), ident_hi)
    index = np.arange(n)
    distance = 1
    while distance < n:
        prior = index - distance
        clamped = np.maximum(prior, 0)
        same = (prior >= 0) & (seg_id[clamped] == seg_id)
        pa = shift[clamped]
        pl = lo[clamped]
        ph = hi[clamped]
        na = np.where(same, pa + shift, shift)
        nl = np.where(same, np.minimum(np.maximum(pl + shift, lo), hi), lo)
        nh = np.where(same, np.minimum(np.maximum(ph + shift, lo), hi), hi)
        shift, lo, hi = na, nl, nh
        distance <<= 1
    state_before = np.minimum(np.maximum(np.int64(initial) + shift, lo), hi)
    return state_before, step


def _fold_engine(shared, spec) -> None:
    """Fold the sorted candidate stream into one engine's state."""
    np = shared.np
    counts = shared.counts
    starts = shared.starts
    ends = shared.ends
    seg_addresses = shared.seg_addresses

    family = spec.family
    if family == "stride":
        correct = shared.stride_correct
    elif family == "last_value":
        correct = shared.lv_correct
    elif family == "two_delta":
        correct = shared.td_correct
    else:
        stride_route = shared.member_lut(spec.stride_members)[shared.sa]
        correct = np.where(stride_route, shared.stride_correct, shared.lv_correct)

    if spec.alloc_members is None:
        member_seg = np.ones(counts.size, dtype=bool)
        correct_members = correct
    else:
        member_lut = shared.member_lut(spec.alloc_members)
        member_seg = member_lut[seg_addresses]
        correct_members = correct & member_lut[shared.sa]

    attempts_seg = np.where(member_seg, counts - 1, 0)
    would_seg = np.add.reduceat(correct_members.astype(np.int64), starts)

    final_states = None
    if spec.fsm is not None:
        # FSM engines always allocate unconditionally (Hardware / Probe),
        # so every non-first record of every segment is an attempt.
        state_before, step = _fsm_scan(
            np,
            shared.seg_id,
            shared.not_first,
            correct,
            spec.fsm.initial,
            (1 << spec.fsm.bits) - 1,
        )
        taken_mask = shared.not_first & (state_before >= spec.fsm.take_threshold)
        taken_seg = np.add.reduceat(taken_mask.astype(np.int64), starts)
        taken_correct_seg = np.add.reduceat(
            (taken_mask & correct).astype(np.int64), starts
        )
        final_states = np.minimum(
            np.maximum(state_before[ends] + step[ends], 0),
            (1 << spec.fsm.bits) - 1,
        )
    elif spec.take_members is not None:
        take_seg_mask = member_seg & shared.member_lut(spec.take_members)[
            seg_addresses
        ]
        taken_seg = np.where(take_seg_mask, counts - 1, 0)
        taken_correct_seg = np.where(take_seg_mask, would_seg, 0)
    else:
        taken_seg = attempts_seg
        taken_correct_seg = would_seg

    engine = spec.engine
    stats = engine.stats
    stats.executions += int(counts.sum())
    stats.attempts += int(attempts_seg.sum())
    stats.would_correct += int(would_seg.sum())
    stats.taken += int(taken_seg.sum())
    stats.taken_correct += int(taken_correct_seg.sum())
    stats.allocations += int(member_seg.sum())

    # Table meters: lookups count *every* candidate execution (misses on
    # never-allocated addresses still probe the table); hits equal the
    # attempts.  Hybrid splits both by directive routing.
    if family == "hybrid":
        stride_seg = shared.member_lut(spec.stride_members)[seg_addresses]
        stride_table = engine.predictor.stride.table
        lv_table = engine.predictor.last_value.table
        stride_table.lookups += int(counts[stride_seg].sum())
        lv_table.lookups += int(counts[~stride_seg].sum())
        stride_table.hits += int(attempts_seg[stride_seg].sum())
        lv_table.hits += int(attempts_seg[~stride_seg].sum())
        stride_entries = stride_table._set_for(0)
        lv_entries = lv_table._set_for(0)
        stride_seg_list = stride_seg.tolist()
    else:
        table = engine.predictor.table
        table.lookups += int(counts.sum())
        table.hits += int(attempts_seg.sum())
        entries = table._set_for(0)
        stride_seg_list = None

    address_list = seg_addresses.tolist()
    counts_list = counts.tolist()
    attempts_list = attempts_seg.tolist()
    would_list = would_seg.tolist()
    taken_list = taken_seg.tolist()
    taken_correct_list = taken_correct_seg.tolist()
    member_list = member_seg.tolist()
    last_values = shared.sv[ends].tolist()
    last_deltas = shared.delta[ends].tolist()
    committed_list = (
        shared.committed_after[ends].tolist() if family == "two_delta" else None
    )
    final_list = final_states.tolist() if final_states is not None else None

    address_stats = stats.address_stats
    fsm = spec.fsm
    for k in shared.occurrence_order.tolist():
        address = address_list[k]
        entry_stats = address_stats(address)
        entry_stats.executions += counts_list[k]
        entry_stats.attempts += attempts_list[k]
        entry_stats.would_correct += would_list[k]
        entry_stats.taken += taken_list[k]
        entry_stats.taken_correct += taken_correct_list[k]
        if not member_list[k]:
            continue
        entry_stats.allocations += 1
        if family == "stride":
            entries[address] = StrideEntry(last_values[k], last_deltas[k])
        elif family == "last_value":
            entries[address] = LastValueEntry(last_values[k])
        elif family == "two_delta":
            entry = TwoDeltaEntry(last_values[k])
            entry.candidate_stride = last_deltas[k]
            entry.committed_stride = committed_list[k]
            entries[address] = entry
        elif stride_seg_list[k]:
            stride_entries[address] = StrideEntry(last_values[k], last_deltas[k])
        else:
            lv_entries[address] = LastValueEntry(last_values[k])
        if fsm is not None and counts_list[k] > 1:
            counter = SaturatingCounter(fsm.bits, fsm.initial)
            counter.value = final_list[k]
            fsm._counters[address] = counter
