"""The classified value-prediction simulation driver.

Walks a program's dynamic trace and, for every value-prediction candidate,
plays one step of the predictor + classification-scheme protocol:

1. look the instruction up in the prediction table;
2. on a hit, judge the suggestion against the actual outcome value
   (``would_correct``), ask the scheme whether the suggestion is *taken*,
   and let the scheme learn from the outcome;
3. on a miss, allocate a new entry iff the scheme permits it
   (``may_allocate`` — this is where profile-guided classification keeps
   unpredictable instructions from polluting the table).

The same driver serves the infinite-table classification-accuracy study
(Figures 5.1/5.2), the finite-table pressure study (Figures 5.3/5.4,
Table 5.1) and, through :class:`PredictionEngine`, the ILP model.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Tuple, Union

from ..isa import Directive, Number, Program
from ..machine import trace_program
from ..predictors import HybridPredictor, StridePredictor, ValuePredictor
from ..telemetry import get_registry
from .results import PredictionStats
from .schemes import AlwaysClassification, ClassificationScheme

Predictor = Union[ValuePredictor, HybridPredictor]


class PredictionEngine:
    """Stateful per-dynamic-instance prediction pipeline.

    Drives one (predictor, scheme) pair record by record; usable both for
    whole-trace simulation (:func:`simulate_prediction`) and interleaved
    with another consumer (the ILP scheduler).
    """

    def __init__(
        self,
        program: Program,
        predictor: Optional[Predictor] = None,
        scheme: Optional[ClassificationScheme] = None,
    ) -> None:
        self.program = program
        self.predictor: Predictor = predictor if predictor is not None else StridePredictor()
        self.scheme = scheme or AlwaysClassification()
        self.stats = PredictionStats(candidates=len(program.candidate_addresses))
        self._is_candidate = [
            instruction.is_prediction_candidate for instruction in program.instructions
        ]
        self._is_hybrid = isinstance(self.predictor, HybridPredictor)

    def is_candidate(self, address: int) -> bool:
        return self._is_candidate[address]

    def step(self, address: int, value: Number) -> Tuple[bool, bool]:
        """Process one dynamic candidate; return ``(taken, correct)``.

        ``taken`` means the machine used the suggested value;
        ``correct`` qualifies the suggestion (meaningful when taken).
        """
        scheme = self.scheme
        stats = self.stats
        allocate = scheme.may_allocate(address)
        if self._is_hybrid:
            kind = scheme.directive_of(address) or Directive.LAST_VALUE
            result = self.predictor.access(
                address, value, kind, allocate=allocate, on_evict=scheme.on_evict
            )
        else:
            result = self.predictor.access(
                address, value, allocate=allocate, on_evict=scheme.on_evict
            )

        address_stats = stats.address_stats(address)
        stats.executions += 1
        address_stats.executions += 1
        if result.allocated:
            stats.allocations += 1
            address_stats.allocations += 1
            if result.evicted_address is not None:
                stats.evictions += 1
        if not result.hit:
            return (False, False)

        stats.attempts += 1
        address_stats.attempts += 1
        if result.correct:
            stats.would_correct += 1
            address_stats.would_correct += 1
        taken = scheme.should_take(address)
        if taken:
            stats.taken += 1
            address_stats.taken += 1
            if result.correct:
                stats.taken_correct += 1
                address_stats.taken_correct += 1
        scheme.record(address, result.correct)
        return (taken, result.correct)


def simulate_prediction(
    program: Program,
    inputs: Iterable[Number] = (),
    predictor: Optional[Predictor] = None,
    scheme: Optional[ClassificationScheme] = None,
    max_instructions: Optional[int] = None,
) -> PredictionStats:
    """Run the full classified value-prediction protocol over one run.

    Args:
        program: the binary to execute (for profile classification, the
            *annotated* binary — though only the scheme reads directives).
        inputs: the run's input stream.
        predictor: defaults to an unbounded stride predictor.
        scheme: defaults to :class:`AlwaysClassification`.
        max_instructions: optional dynamic-instruction cap.
    """
    engine = PredictionEngine(program, predictor=predictor, scheme=scheme)
    results = simulate_prediction_many(
        program, inputs, {"only": engine}, max_instructions=max_instructions
    )
    return results["only"]


def simulate_prediction_many(
    program: Program,
    inputs: Iterable[Number],
    engines: "dict[str, PredictionEngine]",
    max_instructions: Optional[int] = None,
) -> "dict[str, PredictionStats]":
    """Evaluate several (predictor, scheme) pairs against one execution.

    The program runs exactly once; every engine observes the same dynamic
    candidate stream.  This is how the experiment harness compares the
    hardware classifier against five profile thresholds without paying
    for six simulations.
    """
    if not engines:
        raise ValueError("need at least one engine")
    kwargs = {}
    if max_instructions is not None:
        kwargs["max_instructions"] = max_instructions
    engine_list = list(engines.values())
    is_candidate = engine_list[0].is_candidate
    steps = [engine.step for engine in engine_list]
    started = time.perf_counter()
    if len(steps) == 1:
        step = steps[0]
        for record in trace_program(program, inputs, **kwargs):
            if is_candidate(record.address):
                step(record.address, record.value)
    else:
        for record in trace_program(program, inputs, **kwargs):
            if is_candidate(record.address):
                address = record.address
                value = record.value
                for step in steps:
                    step(address, value)
    telemetry = get_registry()
    if telemetry.enabled:
        telemetry.timer("core.simulate").add(time.perf_counter() - started)
        _publish_engine_metrics(telemetry, engine_list)
    return {label: engine.stats for label, engine in engines.items()}


def _publish_engine_metrics(telemetry, engine_list) -> None:
    """Bulk-publish prediction and table statistics after a simulation.

    Per-record work stays telemetry-free; everything here is already
    accumulated in :class:`PredictionStats` and the prediction tables.
    """
    lookups = hits = evictions = 0
    for engine in engine_list:
        stats = engine.stats
        telemetry.counter("core.candidates").add(stats.executions)
        telemetry.counter("core.attempts").add(stats.attempts)
        telemetry.counter("core.taken").add(stats.taken)
        telemetry.counter("core.taken_correct").add(stats.taken_correct)
        telemetry.counter("core.would_correct").add(stats.would_correct)
        telemetry.counter("core.allocations").add(stats.allocations)
        for table in engine.predictor.tables():
            lookups += table.lookups
            hits += table.hits
            evictions += table.evictions
    telemetry.counter("predictor.lookups").add(lookups)
    telemetry.counter("predictor.hits").add(hits)
    telemetry.counter("predictor.evictions").add(evictions)
    telemetry.counter("core.simulations").add(len(engine_list))
