"""The classified value-prediction simulation driver.

Walks a program's dynamic trace and, for every value-prediction candidate,
plays one step of the predictor + classification-scheme protocol:

1. look the instruction up in the prediction table;
2. on a hit, judge the suggestion against the actual outcome value
   (``would_correct``), ask the scheme whether the suggestion is *taken*,
   and let the scheme learn from the outcome;
3. on a miss, allocate a new entry iff the scheme permits it
   (``may_allocate`` — this is where profile-guided classification keeps
   unpredictable instructions from polluting the table).

The same driver serves the infinite-table classification-accuracy study
(Figures 5.1/5.2), the finite-table pressure study (Figures 5.3/5.4,
Table 5.1) and, through :class:`PredictionEngine`, the ILP model.

The trace is consumed in columnar batches
(:meth:`~repro.machine.Executor.run_batches`, optionally captured
into / replayed from a :class:`~repro.machine.TraceStore`).  Engines
whose predictor is a plain :class:`~repro.predictors.StridePredictor`
driven by one of the stock classification schemes run an inlined
batch-walking loop that replicates :meth:`PredictionEngine.step` —
including table LRU/eviction order and the scheme call sequence —
without per-record object allocation; everything else falls back to
``step`` per candidate.  Results are bit-identical either way, with two
deliberate internal-only divergences on the fast path: ``may_allocate``
is consulted only on misses (the stock schemes are pure, so skipping the
unconditional call is unobservable) and LRU positions are not refreshed
in infinite tables (which never evict).

Engines whose predictor evolution is a pure function of the candidate
stream — an infinite table with unconditional allocation, as in the
:class:`~repro.core.schemes.ProbeScheme` classification-accuracy study —
additionally *share* that evolution: one leader engine walks the stream,
and every sibling whose take policy is static (a constant or an address
membership test, with a no-op learning rule) folds its statistics from
the leader's per-address accumulators at the end and clones the final
table state, paying zero per-record cost.  The six-engine Figure 5.1/5.2
grid therefore does one predictor's work per record, not six.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple, Union

from ..isa import Directive, Number, Program
from ..machine import DEFAULT_BUDGET, Executor, TraceStore
from ..predictors import HybridPredictor, StridePredictor, ValuePredictor
from ..predictors.stride import StrideEntry
from ..telemetry import get_registry
from .results import PredictionStats
from .simulate_vec import build_vec_plan
from .schemes import (
    AlwaysClassification,
    ClassificationScheme,
    HardwareClassification,
    ProbeScheme,
    ProfileClassification,
)

Predictor = Union[ValuePredictor, HybridPredictor]


class PredictionEngine:
    """Stateful per-dynamic-instance prediction pipeline.

    Drives one (predictor, scheme) pair record by record; usable both for
    whole-trace simulation (:func:`simulate_prediction`) and interleaved
    with another consumer (the ILP scheduler).
    """

    def __init__(
        self,
        program: Program,
        predictor: Optional[Predictor] = None,
        scheme: Optional[ClassificationScheme] = None,
    ) -> None:
        self.program = program
        self.predictor: Predictor = predictor if predictor is not None else StridePredictor()
        self.scheme = scheme or AlwaysClassification()
        self.stats = PredictionStats(candidates=len(program.candidate_addresses))
        self._is_candidate = [
            instruction.is_prediction_candidate for instruction in program.instructions
        ]
        self._is_hybrid = isinstance(self.predictor, HybridPredictor)

    def is_candidate(self, address: int) -> bool:
        return self._is_candidate[address]

    def step(self, address: int, value: Number) -> Tuple[bool, bool]:
        """Process one dynamic candidate; return ``(taken, correct)``.

        ``taken`` means the machine used the suggested value;
        ``correct`` qualifies the suggestion (meaningful when taken).
        """
        scheme = self.scheme
        stats = self.stats
        allocate = scheme.may_allocate(address)
        if self._is_hybrid:
            kind = scheme.directive_of(address) or Directive.LAST_VALUE
            result = self.predictor.access(
                address, value, kind, allocate=allocate, on_evict=scheme.on_evict
            )
        else:
            result = self.predictor.access(
                address, value, allocate=allocate, on_evict=scheme.on_evict
            )

        address_stats = stats.address_stats(address)
        stats.executions += 1
        address_stats.executions += 1
        if result.allocated:
            stats.allocations += 1
            address_stats.allocations += 1
            if result.evicted_address is not None:
                stats.evictions += 1
        if not result.hit:
            return (False, False)

        stats.attempts += 1
        address_stats.attempts += 1
        if result.correct:
            stats.would_correct += 1
            address_stats.would_correct += 1
        taken = scheme.should_take(address)
        if taken:
            stats.taken += 1
            address_stats.taken += 1
            if result.correct:
                stats.taken_correct += 1
                address_stats.taken_correct += 1
        scheme.record(address, result.correct)
        return (taken, result.correct)


def simulate_prediction(
    program: Program,
    inputs: Iterable[Number] = (),
    predictor: Optional[Predictor] = None,
    scheme: Optional[ClassificationScheme] = None,
    max_instructions: Optional[int] = None,
    store: Optional[TraceStore] = None,
) -> PredictionStats:
    """Run the full classified value-prediction protocol over one run.

    Args:
        program: the binary to execute (for profile classification, the
            *annotated* binary — though only the scheme reads directives).
        inputs: the run's input stream.
        predictor: defaults to an unbounded stride predictor.
        scheme: defaults to :class:`AlwaysClassification`.
        max_instructions: optional dynamic-instruction cap.
        store: optional trace store for capture-once/replay-many runs.
    """
    engine = PredictionEngine(program, predictor=predictor, scheme=scheme)
    results = simulate_prediction_many(
        program, inputs, {"only": engine}, max_instructions=max_instructions,
        store=store,
    )
    return results["only"]


def simulate_prediction_many(
    program: Program,
    inputs: Iterable[Number],
    engines: "dict[str, PredictionEngine]",
    max_instructions: Optional[int] = None,
    store: Optional[TraceStore] = None,
) -> "dict[str, PredictionStats]":
    """Evaluate several (predictor, scheme) pairs against one execution.

    The program runs exactly once; every engine observes the same dynamic
    candidate stream.  This is how the experiment harness compares the
    hardware classifier against five profile thresholds without paying
    for six simulations.  Engines consume the stream batch by batch (the
    per-candidate order within each engine is unchanged), so engines must
    not share mutable scheme or predictor state with one another.
    """
    if not engines:
        raise ValueError("need at least one engine")
    engine_list = list(engines.values())
    is_candidate = engine_list[0]._is_candidate
    vec = build_vec_plan(program, engine_list)
    consumers: list = []
    finishers: list = []
    if vec is None:
        consumers, finishers = _build_consumers(engine_list)
    budget = max_instructions if max_instructions is not None else DEFAULT_BUDGET
    started = time.perf_counter()
    if store is not None:
        batches = store.batches(program, inputs, max_instructions=budget)
    else:
        batches = Executor(
            program, inputs=inputs, max_instructions=budget
        ).run_batches()
    try:
        for batch in batches:
            if vec is not None:
                if vec.consume(batch):
                    continue
                # The batch left the vectorized envelope (escaped float /
                # bigint values, or magnitudes near the int64 guard rail):
                # demote to the pure consumers, replaying everything the
                # plan had accumulated, then continue record-at-a-time.
                consumers, finishers = _build_consumers(engine_list)
                for replayed in vec.drain_pairs():
                    for consume in consumers:
                        consume(replayed)
                vec = None
            pairs = _candidate_pairs(batch, is_candidate)
            if not pairs:
                continue
            for consume in consumers:
                consume(pairs)
    finally:
        # Fold the fast paths' accumulators even when the trace raised
        # mid-run, matching the step path's behaviour of keeping every
        # observation up to the fault.
        if vec is not None:
            vec.finish()
        else:
            for finish in finishers:
                finish()
    telemetry = get_registry()
    if telemetry.enabled:
        telemetry.timer("core.simulate").add(time.perf_counter() - started)
        _publish_engine_metrics(telemetry, engine_list)
    return {label: engine.stats for label, engine in engines.items()}


def _candidate_pairs(batch, is_candidate):
    """The batch's ``(address, value)`` candidate stream as a list.

    Prediction candidates are always value producers, so a cursor walk
    over the packed produced-value column recovers each candidate's
    value without materialising the legacy one-slot-per-record list.
    """
    flags = batch.value_flags
    column = batch.values
    produced = column.ints if column.is_pure_int else column.tolist()
    pairs: list = []
    append = pairs.append
    cursor = 0
    for address in batch.addresses:
        if flags[address]:
            if is_candidate[address]:
                append((address, produced[cursor]))
            cursor += 1
    return pairs


def _build_consumers(engine_list):
    """Plan one batch consumer per engine plus the end-of-trace finishers.

    Fast-path engines whose predictor evolution is stream-determined (see
    :class:`_SharedStride`) are grouped: one leader keeps its inlined
    consumer, and every *static* sibling (membership take policy, no-op
    learning rule) is planned as a finisher-only fold over the leader's
    accumulators.  A dynamic engine (FSM learning) is preferred as leader
    since its per-record scheme calls must run anyway.  Follower
    finishers are ordered before the leader's, which zeroes the shared
    accumulators when it folds.
    """
    plans = [(engine, _fast_stride_consumer(engine)) for engine in engine_list]
    shareable = [
        (engine, plan) for engine, plan in plans if plan is not None and plan[2]
    ]
    leader_plan = None
    follower_ids = set()
    if len(shareable) >= 2:
        statics = [(e, p) for e, p in shareable if p[2].static]
        dynamics = [(e, p) for e, p in shareable if not p[2].static]
        if statics and (dynamics or len(statics) >= 2):
            leader_engine, leader_plan = dynamics[0] if dynamics else statics[0]
            follower_ids = {
                id(engine) for engine, _ in statics if engine is not leader_engine
            }
    consumers = []
    finishers = []
    leader_finish = None
    for engine, plan in plans:
        if plan is None:
            consumers.append(_generic_consumer(engine))
            continue
        consume, finish, shared = plan
        if plan is leader_plan:
            consumers.append(consume)
            leader_finish = finish
        elif id(engine) in follower_ids:
            finishers.append(_follower_finisher(engine, shared, leader_plan[2]))
        else:
            consumers.append(consume)
            finishers.append(finish)
    if leader_finish is not None:
        finishers.append(leader_finish)
    return consumers, finishers


def _generic_consumer(engine: PredictionEngine):
    """Batch consumer for arbitrary engines: one ``step`` per candidate."""

    def consume(pairs) -> None:
        step = engine.step
        for address, value in pairs:
            step(address, value)

    return consume


class _SharedStride:
    """Share handle exposed by a fast consumer whose table evolution is a
    pure function of the candidate stream: infinite table, unconditional
    allocation, starting empty.  ``static`` additionally marks a take
    policy with no per-record state (a constant or ``take_members``
    membership, no-op ``record``) — the whole engine is then a pure
    function of the stream and can fold from a leader's accumulators.
    """

    __slots__ = ("acc", "meters", "entries", "static", "take_members")

    def __init__(self, acc, meters, entries, static, take_members) -> None:
        self.acc = acc
        self.meters = meters
        self.entries = entries
        self.static = static
        self.take_members = take_members


def _follower_finisher(engine: PredictionEngine, shared, leader):
    """Fold one static engine's results from the ``leader`` engine's run.

    The leader observed the identical candidate stream with the identical
    (unconditional-allocation, infinite-table) predictor evolution, so
    this engine's executions/attempts/would_correct/allocations equal the
    leader's per-address accumulators verbatim; its taken/taken_correct
    are the attempts/would_correct of the addresses its static policy
    takes; and its final table state is a clone of the leader's.
    """
    table = engine.predictor.table
    stats = engine.stats
    take_members = shared.take_members

    def finish() -> None:
        executions = attempts = would = taken_n = taken_c = allocs = 0
        address_stats = stats.address_stats
        for address, slot in leader.acc.items():
            entry_stats = address_stats(address)
            entry_stats.executions += slot[0]
            entry_stats.attempts += slot[1]
            entry_stats.would_correct += slot[2]
            entry_stats.allocations += slot[5]
            executions += slot[0]
            attempts += slot[1]
            would += slot[2]
            allocs += slot[5]
            if take_members is None or address in take_members:
                entry_stats.taken += slot[1]
                entry_stats.taken_correct += slot[2]
                taken_n += slot[1]
                taken_c += slot[2]
        stats.executions += executions
        stats.attempts += attempts
        stats.would_correct += would
        stats.taken += taken_n
        stats.taken_correct += taken_c
        stats.allocations += allocs
        table.lookups += leader.meters[0]
        table.hits += leader.meters[1]
        entries = table._set_for(0)
        for address, entry in leader.entries.items():
            clone = entries.get(address)
            if clone is None:
                entries[address] = StrideEntry(entry.last_value, entry.stride)
            else:
                clone.last_value = entry.last_value
                clone.stride = entry.stride

    return finish


_STOCK_SCHEMES = (AlwaysClassification, HardwareClassification, ProfileClassification)


def _fast_stride_consumer(engine: PredictionEngine):
    """Inlined batch consumer for stride-predictor engines, or ``None``.

    Eligibility requires a plain :class:`StridePredictor` and a stock
    scheme (optionally wrapped in :class:`ProbeScheme`): those schemes'
    ``may_allocate``/``should_take`` are pure and statically known, so the
    loop can skip no-op ``record`` calls and miss-only allocation checks
    while preserving the exact call order ``step`` produces for the calls
    that remain (FSM learning, eviction callbacks).

    Returns ``(consume, finish, shared)`` where ``shared`` is a
    :class:`_SharedStride` handle when the engine qualifies for
    leader/follower sharing, else ``None``.
    """
    if type(engine.predictor) is not StridePredictor:
        return None
    scheme = engine.scheme
    inner = scheme.inner if type(scheme) is ProbeScheme else scheme
    if type(scheme) not in _STOCK_SCHEMES + (ProbeScheme,):
        return None
    if type(inner) not in _STOCK_SCHEMES:
        return None

    table = engine.predictor.table
    stats = engine.stats

    # Allocation policy: every stock scheme but ProfileClassification
    # (unwrapped) allocates unconditionally.
    alloc_members = (
        scheme._directives if type(scheme) is ProfileClassification else None
    )
    # Take policy: constant, membership, or the FSM consult.
    if type(inner) is AlwaysClassification:
        take_members = None
        take_call = None
    elif type(inner) is ProfileClassification:
        take_members = inner._directives
        take_call = None
    else:
        take_members = None
        take_call = scheme.should_take  # preserves ProbeScheme delegation
    # Learning rule: skip when the effective ``record`` is the ABC no-op.
    record_call = (
        None
        if type(inner).record is ClassificationScheme.record
        else scheme.record
    )
    on_evict = scheme.on_evict

    acc: "dict[int, List[int]]" = {}
    totals = [0, 0, 0, 0, 0, 0, 0]
    meters = [0, 0, 0]  # table lookups, hits, evictions
    shared = None

    if table.is_infinite:
        entries = table._set_for(0)
        if alloc_members is None and not entries:
            shared = _SharedStride(
                acc,
                meters,
                entries,
                static=take_call is None and record_call is None,
                take_members=take_members,
            )

        def consume(pairs) -> None:
            executions = attempts = would = taken_n = taken_c = allocs = 0
            hits = 0
            get_entry = entries.get
            get_slot = acc.get
            for address, value in pairs:
                slot = get_slot(address)
                if slot is None:
                    slot = acc[address] = [0, 0, 0, 0, 0, 0]
                executions += 1
                slot[0] += 1
                entry = get_entry(address)
                if entry is None:
                    if alloc_members is None or address in alloc_members:
                        entries[address] = StrideEntry(value)
                        allocs += 1
                        slot[5] += 1
                    continue
                hits += 1
                last = entry.last_value
                stride = entry.stride
                correct = last + stride == value
                entry.stride = value - last
                entry.last_value = value
                attempts += 1
                slot[1] += 1
                if correct:
                    would += 1
                    slot[2] += 1
                if take_members is None:
                    took = True if take_call is None else take_call(address)
                else:
                    took = address in take_members
                if took:
                    taken_n += 1
                    slot[3] += 1
                    if correct:
                        taken_c += 1
                        slot[4] += 1
                if record_call is not None:
                    record_call(address, correct)
            totals[0] += executions
            totals[1] += attempts
            totals[2] += would
            totals[3] += taken_n
            totals[4] += taken_c
            totals[5] += allocs
            meters[0] += executions
            meters[1] += hits

    else:
        num_sets = table.num_sets
        ways = table.ways
        sets = table._sets

        def consume(pairs) -> None:
            executions = attempts = would = taken_n = taken_c = allocs = 0
            hits = evictions = 0
            get_slot = acc.get
            for address, value in pairs:
                slot = get_slot(address)
                if slot is None:
                    slot = acc[address] = [0, 0, 0, 0, 0, 0]
                executions += 1
                slot[0] += 1
                index = address % num_sets
                table_set = sets.get(index)
                if table_set is None:
                    table_set = sets[index] = OrderedDict()
                    entry = None
                else:
                    entry = table_set.get(address)
                if entry is None:
                    if alloc_members is None or address in alloc_members:
                        if len(table_set) >= ways:
                            evicted, _ = table_set.popitem(last=False)
                            evictions += 1
                            on_evict(evicted)
                            totals[6] += 1
                        table_set[address] = StrideEntry(value)
                        allocs += 1
                        slot[5] += 1
                    continue
                hits += 1
                table_set.move_to_end(address)
                last = entry.last_value
                stride = entry.stride
                correct = last + stride == value
                entry.stride = value - last
                entry.last_value = value
                attempts += 1
                slot[1] += 1
                if correct:
                    would += 1
                    slot[2] += 1
                if take_members is None:
                    took = True if take_call is None else take_call(address)
                else:
                    took = address in take_members
                if took:
                    taken_n += 1
                    slot[3] += 1
                    if correct:
                        taken_c += 1
                        slot[4] += 1
                if record_call is not None:
                    record_call(address, correct)
            totals[0] += executions
            totals[1] += attempts
            totals[2] += would
            totals[3] += taken_n
            totals[4] += taken_c
            totals[5] += allocs
            meters[0] += executions
            meters[1] += hits
            meters[2] += evictions

    def finish() -> None:
        table.lookups += meters[0]
        table.hits += meters[1]
        table.evictions += meters[2]
        meters[0] = meters[1] = meters[2] = 0
        stats.executions += totals[0]
        stats.attempts += totals[1]
        stats.would_correct += totals[2]
        stats.taken += totals[3]
        stats.taken_correct += totals[4]
        stats.allocations += totals[5]
        stats.evictions += totals[6]
        for index in range(7):
            totals[index] = 0
        address_stats = stats.address_stats
        for address, slot in acc.items():
            entry_stats = address_stats(address)
            entry_stats.executions += slot[0]
            entry_stats.attempts += slot[1]
            entry_stats.would_correct += slot[2]
            entry_stats.taken += slot[3]
            entry_stats.taken_correct += slot[4]
            entry_stats.allocations += slot[5]
        acc.clear()

    return consume, finish, shared


def _publish_engine_metrics(telemetry, engine_list) -> None:
    """Bulk-publish prediction and table statistics after a simulation.

    Per-record work stays telemetry-free; everything here is already
    accumulated in :class:`PredictionStats` and the prediction tables.
    """
    lookups = hits = evictions = 0
    for engine in engine_list:
        stats = engine.stats
        telemetry.counter("core.candidates").add(stats.executions)
        telemetry.counter("core.attempts").add(stats.attempts)
        telemetry.counter("core.taken").add(stats.taken)
        telemetry.counter("core.taken_correct").add(stats.taken_correct)
        telemetry.counter("core.would_correct").add(stats.would_correct)
        telemetry.counter("core.allocations").add(stats.allocations)
        for table in engine.predictor.tables():
            lookups += table.lookups
            hits += table.hits
            evictions += table.evictions
    telemetry.counter("predictor.lookups").add(lookups)
    telemetry.counter("predictor.hits").add(hits)
    telemetry.counter("predictor.evictions").add(evictions)
    telemetry.counter("core.simulations").add(len(engine_list))
