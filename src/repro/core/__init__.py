"""The paper's contribution: profile-guided classification for value
prediction, plus the simulation drivers that evaluate it against the
hardware (saturating-counter) baseline.
"""

from .pipeline import (
    EvaluationScheme,
    HardwareScheme,
    LearnedScheme,
    MethodologyResult,
    ProfileScheme,
    evaluate_scheme,
    run_methodology,
)
from .results import AddressStats, PredictionStats
from .schemes import (
    AlwaysClassification,
    ClassificationScheme,
    HardwareClassification,
    LearnedClassification,
    ProbeScheme,
    ProfileClassification,
)
from .simulate import (
    PredictionEngine,
    simulate_prediction,
    simulate_prediction_many,
)

__all__ = [
    "AddressStats",
    "AlwaysClassification",
    "ClassificationScheme",
    "EvaluationScheme",
    "HardwareClassification",
    "HardwareScheme",
    "LearnedClassification",
    "LearnedScheme",
    "MethodologyResult",
    "PredictionEngine",
    "PredictionStats",
    "ProbeScheme",
    "ProfileClassification",
    "ProfileScheme",
    "evaluate_scheme",
    "run_methodology",
    "simulate_prediction",
    "simulate_prediction_many",
]
