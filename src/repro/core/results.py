"""Result records for value-prediction simulations.

Both record types round-trip through plain dicts (:meth:`to_dict` /
:meth:`from_dict`) so the experiment engine can ship simulation cells
between pool processes and persist them in the artifact cache; the
encoding is exact — every field is an integer counter.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass(slots=True)
class AddressStats:
    """Per-static-instruction prediction/classification counters."""

    executions: int = 0
    attempts: int = 0
    would_correct: int = 0
    taken: int = 0
    taken_correct: int = 0
    allocations: int = 0

    @property
    def would_incorrect(self) -> int:
        return self.attempts - self.would_correct

    @property
    def taken_incorrect(self) -> int:
        return self.taken - self.taken_correct

    def to_tuple(self) -> tuple:
        return dataclasses.astuple(self)

    @classmethod
    def from_tuple(cls, values) -> "AddressStats":
        return cls(*(int(value) for value in values))


@dataclasses.dataclass
class PredictionStats:
    """Aggregate outcome of one classified value-prediction simulation.

    Terminology (paper Section 5.1):

    * an *attempt* is a dynamic instance that hit in the prediction table —
      the predictor had a suggestion, whether or not it was taken;
    * ``would_correct`` / ``would_incorrect`` judge the suggestion itself;
    * ``taken_*`` count only suggestions the classification accepted;
    * ``avoided_incorrect`` (mispredictions the classifier suppressed) and
      ``taken_correct`` are the two sides of the classification-accuracy
      trade-off in Figures 5.1 and 5.2.
    """

    candidates: int = 0
    executions: int = 0
    attempts: int = 0
    would_correct: int = 0
    taken: int = 0
    taken_correct: int = 0
    allocations: int = 0
    evictions: int = 0
    per_address: Dict[int, AddressStats] = dataclasses.field(default_factory=dict)

    @property
    def would_incorrect(self) -> int:
        return self.attempts - self.would_correct

    @property
    def taken_incorrect(self) -> int:
        return self.taken - self.taken_correct

    @property
    def avoided(self) -> int:
        """Suggestions the classification rejected."""
        return self.attempts - self.taken

    @property
    def avoided_incorrect(self) -> int:
        """Would-be mispredictions the classification suppressed."""
        return self.would_incorrect - self.taken_incorrect

    @property
    def misprediction_classification_accuracy(self) -> float:
        """Percent of would-be mispredictions classified correctly (Fig 5.1)."""
        if self.would_incorrect == 0:
            return 100.0
        return 100.0 * self.avoided_incorrect / self.would_incorrect

    @property
    def correct_classification_accuracy(self) -> float:
        """Percent of would-be correct predictions classified correctly (Fig 5.2)."""
        if self.would_correct == 0:
            return 100.0
        return 100.0 * self.taken_correct / self.would_correct

    @property
    def taken_accuracy(self) -> float:
        """Accuracy over taken predictions (effective prediction accuracy)."""
        if self.taken == 0:
            return 0.0
        return 100.0 * self.taken_correct / self.taken

    def address_stats(self, address: int) -> AddressStats:
        stats = self.per_address.get(address)
        if stats is None:
            stats = AddressStats()
            self.per_address[address] = stats
        return stats

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Exact, JSON-compatible encoding (addresses become strings)."""
        return {
            "candidates": self.candidates,
            "executions": self.executions,
            "attempts": self.attempts,
            "would_correct": self.would_correct,
            "taken": self.taken,
            "taken_correct": self.taken_correct,
            "allocations": self.allocations,
            "evictions": self.evictions,
            "per_address": {
                str(address): list(stats.to_tuple())
                for address, stats in self.per_address.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PredictionStats":
        return cls(
            candidates=int(payload["candidates"]),
            executions=int(payload["executions"]),
            attempts=int(payload["attempts"]),
            would_correct=int(payload["would_correct"]),
            taken=int(payload["taken"]),
            taken_correct=int(payload["taken_correct"]),
            allocations=int(payload["allocations"]),
            evictions=int(payload["evictions"]),
            per_address={
                int(address): AddressStats.from_tuple(values)
                for address, values in payload.get("per_address", {}).items()
            },
        )
