"""Phase 3: profile-guided directive insertion (paper Section 3.2)."""

from .annotator import (
    AnnotationReport,
    annotate_program,
    annotation_report,
    plan_directives,
)
from .policy import AnnotationPolicy

__all__ = [
    "AnnotationPolicy",
    "AnnotationReport",
    "annotate_program",
    "annotation_report",
    "plan_directives",
]
