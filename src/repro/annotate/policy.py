"""Directive-selection policy (paper Section 3.2).

Given an instruction's profiled statistics and a user-supplied threshold:

* prediction accuracy below the threshold -> no directive (the instruction
  is "not recommended to be value predicted");
* accuracy at/above the threshold -> tagged; the directive *type* follows
  the stride efficiency ratio — above the stride split (50% by default,
  the paper's suggested heuristic: "the majority of the correct
  predictions were non-zero strides") it is ``stride``, otherwise
  ``last-value``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..isa import Directive
from ..profiling import InstructionProfile


@dataclasses.dataclass(frozen=True)
class AnnotationPolicy:
    """Thresholds steering phase-3 directive insertion.

    Attributes:
        accuracy_threshold: prediction-accuracy cutoff in percent; the
            paper sweeps 90 / 80 / 70 / 60 / 50.
        stride_threshold: stride-efficiency split in percent deciding
            between the ``stride`` and ``last-value`` directives.
        min_attempts: minimum profiled prediction attempts required before
            an instruction may be tagged at all; guards against tagging on
            statistically meaningless single observations.
    """

    accuracy_threshold: float = 90.0
    stride_threshold: float = 50.0
    min_attempts: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy_threshold <= 100.0:
            raise ValueError("accuracy_threshold must be within [0, 100]")
        if not 0.0 <= self.stride_threshold <= 100.0:
            raise ValueError("stride_threshold must be within [0, 100]")
        if self.min_attempts < 0:
            raise ValueError("min_attempts must be non-negative")

    def classify(self, profile: InstructionProfile) -> Optional[Directive]:
        """Return the directive for a profiled instruction, or ``None``."""
        if profile.attempts < self.min_attempts:
            return None
        if profile.accuracy < self.accuracy_threshold:
            return None
        if profile.stride_efficiency > self.stride_threshold:
            return Directive.STRIDE
        return Directive.LAST_VALUE
