"""Phase 3 of the methodology: directive insertion.

"In the final phase the compiler only inserts directives in the opcode of
instructions.  It does not perform instruction scheduling or any form of
code movement with respect to the code that was generated in the first
phase."  Accordingly, :func:`annotate_program` returns a program with the
*same* instruction sequence and addresses, differing only in directive
bits.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..isa import Directive, Program
from ..profiling import ProfileImage
from .policy import AnnotationPolicy


@dataclasses.dataclass(frozen=True)
class AnnotationReport:
    """What the annotation pass did."""

    candidates: int
    profiled: int
    stride_tagged: int
    last_value_tagged: int

    @property
    def tagged(self) -> int:
        return self.stride_tagged + self.last_value_tagged

    @property
    def tagged_fraction(self) -> float:
        """Tagged candidates as a fraction of all candidates (0..1)."""
        if self.candidates == 0:
            return 0.0
        return self.tagged / self.candidates


def plan_directives(
    program: Program,
    image: ProfileImage,
    policy: Optional[AnnotationPolicy] = None,
) -> Dict[int, Optional[Directive]]:
    """Compute the directive for every candidate address.

    Candidates missing from the profile image (never executed in training)
    get no directive — they are unknown, hence not recommended.
    """
    policy = policy or AnnotationPolicy()
    plan: Dict[int, Optional[Directive]] = {}
    for address in program.candidate_addresses:
        profile = image.instructions.get(address)
        plan[address] = None if profile is None else policy.classify(profile)
    return plan


def annotate_program(
    program: Program,
    image: ProfileImage,
    policy: Optional[AnnotationPolicy] = None,
) -> Program:
    """Return a re-tagged copy of ``program`` (no code motion)."""
    return program.with_directives(plan_directives(program, image, policy))


def annotation_report(
    program: Program,
    image: ProfileImage,
    policy: Optional[AnnotationPolicy] = None,
) -> AnnotationReport:
    """Summarize what :func:`annotate_program` would do."""
    plan = plan_directives(program, image, policy)
    stride_tagged = sum(1 for d in plan.values() if d is Directive.STRIDE)
    last_value_tagged = sum(1 for d in plan.values() if d is Directive.LAST_VALUE)
    profiled = sum(1 for address in plan if address in image.instructions)
    return AnnotationReport(
        candidates=len(plan),
        profiled=profiled,
        stride_tagged=stride_tagged,
        last_value_tagged=last_value_tagged,
    )
