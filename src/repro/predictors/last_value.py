"""The last-value predictor (Lipasti et al., via the paper's Section 2.1).

Each entry holds the destination value the instruction produced most
recently; the prediction is simply that value again.
"""

from __future__ import annotations

from typing import Optional

from .base import AccessResult, Number, ValuePredictor
from .table import EvictionCallback, PredictionTable


class LastValueEntry:
    """Table entry: the most recent destination value."""

    __slots__ = ("last_value",)

    def __init__(self, last_value: Number) -> None:
        self.last_value = last_value

    def predict(self) -> Number:
        return self.last_value

    def update(self, value: Number) -> None:
        self.last_value = value


class LastValuePredictor(ValuePredictor):
    """Predicts that an instruction repeats its previously seen value.

    Args:
        entries: table capacity (``None`` = unbounded).
        ways: set associativity.
    """

    def __init__(self, entries: Optional[int] = None, ways: int = 2) -> None:
        self.table: PredictionTable[LastValueEntry] = PredictionTable(entries, ways)

    def access(
        self,
        address: int,
        value: Number,
        allocate: bool = True,
        on_evict: Optional[EvictionCallback] = None,
    ) -> AccessResult:
        entry = self.table.lookup(address)
        if entry is not None:
            predicted = entry.predict()
            correct = predicted == value
            entry.update(value)
            return AccessResult(
                hit=True,
                predicted_value=predicted,
                correct=correct,
                nonzero_stride=False,
            )
        if not allocate:
            return AccessResult(
                hit=False, predicted_value=None, correct=False, nonzero_stride=False
            )
        evicted = self.table.insert(address, LastValueEntry(value), on_evict)
        return AccessResult(
            hit=False,
            predicted_value=None,
            correct=False,
            nonzero_stride=False,
            allocated=True,
            evicted_address=evicted,
        )

    def lookup_prediction(self, address: int) -> Optional[Number]:
        entry = self.table.peek(address)
        return None if entry is None else entry.predict()

    def clear(self) -> None:
        self.table.clear()
