"""The hybrid predictor proposed in the paper's Section 3.

Two prediction tables — a (typically small) stride table and a (typically
larger) last-value table.  A candidate instruction is allocated to one of
them *according to its opcode directive*: instructions profiled as
stride-patterned go to the stride table, last-value repeaters to the
last-value table, and untagged instructions to neither.  This lets the
stride field be spent only where it pays.
"""

from __future__ import annotations

from typing import Optional

from ..isa import Directive
from .base import AccessResult, Number
from .last_value import LastValuePredictor
from .stride import StridePredictor
from .table import EvictionCallback


class HybridPredictor:
    """A split stride + last-value predictor steered by directives.

    Args:
        stride_entries: stride-table capacity (``None`` = unbounded).
        last_value_entries: last-value-table capacity (``None`` = unbounded).
        ways: set associativity of both tables.
    """

    def __init__(
        self,
        stride_entries: Optional[int] = None,
        last_value_entries: Optional[int] = None,
        ways: int = 2,
    ) -> None:
        self.stride = StridePredictor(stride_entries, ways)
        self.last_value = LastValuePredictor(last_value_entries, ways)

    def _component(self, kind: Directive):
        if kind is Directive.STRIDE:
            return self.stride
        return self.last_value

    def access(
        self,
        address: int,
        value: Number,
        kind: Directive,
        allocate: bool = True,
        on_evict: Optional[EvictionCallback] = None,
    ) -> AccessResult:
        """Present one dynamic instance of an instruction tagged ``kind``."""
        return self._component(kind).access(
            address, value, allocate=allocate, on_evict=on_evict
        )

    def lookup_prediction(self, address: int, kind: Directive) -> Optional[Number]:
        return self._component(kind).lookup_prediction(address)

    def clear(self) -> None:
        self.stride.clear()
        self.last_value.clear()

    def tables(self):
        """Both component tables (see :meth:`ValuePredictor.tables`)."""
        return (self.stride.table, self.last_value.table)
