"""Set-associative prediction tables with LRU replacement.

The paper's predictors are organized "as a table (e.g., cache table)";
its finite-table experiments use a 512-entry, 2-way set-associative stride
table.  :class:`PredictionTable` implements that geometry and also the
*infinite* variant used to isolate classification effects (Section 5.1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Generic, Iterator, Optional, Tuple, TypeVar

Entry = TypeVar("Entry")

#: Callback invoked as ``on_evict(address)`` when an entry is displaced.
EvictionCallback = Callable[[int], None]


class PredictionTable(Generic[Entry]):
    """Maps instruction addresses to predictor entries.

    Args:
        entries: total entry count, or ``None`` for an unbounded table.
        ways: set associativity (ignored for unbounded tables).

    Entries are arbitrary predictor-state objects; the table only manages
    placement and LRU replacement.
    """

    def __init__(self, entries: Optional[int] = None, ways: int = 2) -> None:
        if entries is not None:
            if ways <= 0 or entries <= 0 or entries % ways:
                raise ValueError(
                    f"bad geometry: {entries} entries, {ways} ways "
                    "(entries must be a positive multiple of ways)"
                )
        self.capacity = entries
        self.ways = ways
        self.num_sets = (entries // ways) if entries is not None else 1
        self._sets: Dict[int, OrderedDict[int, Entry]] = {}
        self.lookups = 0
        self.hits = 0
        self.evictions = 0

    @property
    def is_infinite(self) -> bool:
        return self.capacity is None

    def _set_for(self, address: int) -> OrderedDict[int, Entry]:
        index = 0 if self.is_infinite else address % self.num_sets
        table_set = self._sets.get(index)
        if table_set is None:
            table_set = OrderedDict()
            self._sets[index] = table_set
        return table_set

    def lookup(self, address: int) -> Optional[Entry]:
        """Return the entry for ``address``, refreshing its LRU position."""
        self.lookups += 1
        table_set = self._set_for(address)
        entry = table_set.get(address)
        if entry is None:
            return None
        self.hits += 1
        table_set.move_to_end(address)
        return entry

    def peek(self, address: int) -> Optional[Entry]:
        """Return the entry for ``address`` without touching LRU state."""
        return self._set_for(address).get(address)

    def insert(
        self,
        address: int,
        entry: Entry,
        on_evict: Optional[EvictionCallback] = None,
    ) -> Optional[int]:
        """Install ``entry`` for ``address``; return the evicted address.

        If the set is full, the least-recently-used entry is displaced and
        ``on_evict`` (if given) is called with its address.
        """
        table_set = self._set_for(address)
        evicted: Optional[int] = None
        if address not in table_set and not self.is_infinite:
            if len(table_set) >= self.ways:
                evicted, _ = table_set.popitem(last=False)
                self.evictions += 1
                if on_evict is not None:
                    on_evict(evicted)
        table_set[address] = entry
        table_set.move_to_end(address)
        return evicted

    def __contains__(self, address: int) -> bool:
        return address in self._set_for(address)

    def __len__(self) -> int:
        return sum(len(table_set) for table_set in self._sets.values())

    def __iter__(self) -> Iterator[Tuple[int, Entry]]:
        for table_set in self._sets.values():
            yield from table_set.items()

    def clear(self) -> None:
        self._sets.clear()
        self.lookups = 0
        self.hits = 0
        self.evictions = 0
