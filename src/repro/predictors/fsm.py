"""The hardware classification mechanism: per-entry saturating counters.

This is the baseline the paper compares against (Section 2.2): "An
individual saturated counter is assigned to each entry in the prediction
table.  At each occurrence of a successful or unsuccessful prediction the
corresponding counter is incremented or decremented respectively.
According to the present state of the saturated counter, the processor can
decide whether to take the suggested prediction or to avoid it."

Counters live and die with their prediction-table entry: when the table
evicts an address, its counter state is lost (wire the table's
``on_evict`` callback to :meth:`FsmClassifier.on_evict`).
"""

from __future__ import annotations

from typing import Dict


class SaturatingCounter:
    """An n-bit up/down saturating counter."""

    __slots__ = ("value", "maximum")

    def __init__(self, bits: int = 2, initial: int = 1) -> None:
        if bits < 1:
            raise ValueError("counter needs at least 1 bit")
        self.maximum = (1 << bits) - 1
        if not 0 <= initial <= self.maximum:
            raise ValueError(f"initial state {initial} outside [0, {self.maximum}]")
        self.value = initial

    def increment(self) -> None:
        if self.value < self.maximum:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1


class FsmClassifier:
    """Saturating-counter classification over prediction-table entries.

    Args:
        bits: counter width (2 by default, the classic strongly/weakly
            scheme).
        initial: state given to a counter at (re)allocation.
        take_threshold: minimum counter state at which the suggested
            prediction is taken.
    """

    def __init__(
        self, bits: int = 2, initial: int = 1, take_threshold: int = 2
    ) -> None:
        self.bits = bits
        self.initial = initial
        self.take_threshold = take_threshold
        self._counters: Dict[int, SaturatingCounter] = {}
        # Validate parameters eagerly.
        probe = SaturatingCounter(bits, initial)
        if not 0 < take_threshold <= probe.maximum:
            raise ValueError(
                f"take_threshold {take_threshold} outside (0, {probe.maximum}]"
            )

    def _counter(self, address: int) -> SaturatingCounter:
        counter = self._counters.get(address)
        if counter is None:
            counter = SaturatingCounter(self.bits, self.initial)
            self._counters[address] = counter
        return counter

    def should_take(self, address: int) -> bool:
        """Would the hardware accept this instruction's prediction now?"""
        return self._counter(address).value >= self.take_threshold

    def record(self, address: int, correct: bool) -> None:
        """Train the counter with a prediction outcome."""
        counter = self._counter(address)
        if correct:
            counter.increment()
        else:
            counter.decrement()

    def on_evict(self, address: int) -> None:
        """Forget the counter when the table evicts its entry."""
        self._counters.pop(address, None)

    def state(self, address: int) -> int:
        """Current counter state (``initial`` when absent) — pure inspection.

        Inspection must never allocate: probing an evicted address would
        otherwise silently resurrect its counter and change subsequent
        :meth:`should_take` answers.
        """
        counter = self._counters.get(address)
        return self.initial if counter is None else counter.value

    def clear(self) -> None:
        self._counters.clear()
