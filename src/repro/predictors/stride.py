"""The stride predictor (Gabbay & Mendelson, via the paper's Section 2.1).

Each entry holds the last value and a stride — "always determined upon the
subtraction of two recent consecutive destination values".  The prediction
is ``last value + stride``.  A freshly allocated entry starts with a zero
stride, so its first prediction degenerates to last-value.
"""

from __future__ import annotations

from typing import Optional

from .base import AccessResult, Number, ValuePredictor
from .table import EvictionCallback, PredictionTable


class StrideEntry:
    """Table entry: last value plus the most recent first difference."""

    __slots__ = ("last_value", "stride")

    def __init__(self, last_value: Number, stride: Number = 0) -> None:
        self.last_value = last_value
        self.stride = stride

    def predict(self) -> Number:
        return self.last_value + self.stride

    def update(self, value: Number) -> None:
        self.stride = value - self.last_value
        self.last_value = value


class StridePredictor(ValuePredictor):
    """Predicts ``last value + stride``.

    Args:
        entries: table capacity (``None`` = unbounded).
        ways: set associativity.
    """

    def __init__(self, entries: Optional[int] = None, ways: int = 2) -> None:
        self.table: PredictionTable[StrideEntry] = PredictionTable(entries, ways)

    def access(
        self,
        address: int,
        value: Number,
        allocate: bool = True,
        on_evict: Optional[EvictionCallback] = None,
    ) -> AccessResult:
        entry = self.table.lookup(address)
        if entry is not None:
            predicted = entry.predict()
            correct = predicted == value
            nonzero = correct and entry.stride != 0
            entry.update(value)
            return AccessResult(
                hit=True,
                predicted_value=predicted,
                correct=correct,
                nonzero_stride=nonzero,
            )
        if not allocate:
            return AccessResult(
                hit=False, predicted_value=None, correct=False, nonzero_stride=False
            )
        evicted = self.table.insert(address, StrideEntry(value), on_evict)
        return AccessResult(
            hit=False,
            predicted_value=None,
            correct=False,
            nonzero_stride=False,
            allocated=True,
            evicted_address=evicted,
        )

    def lookup_prediction(self, address: int) -> Optional[Number]:
        entry = self.table.peek(address)
        return None if entry is None else entry.predict()

    def clear(self) -> None:
        self.table.clear()
