"""A finite-context-method (FCM) value predictor (extension).

Contemporaneous with the paper (Sazeides & Smith, 1997): a two-level
scheme in which the first level keeps, per static instruction, a hash of
its last *k* destination values, and the second level maps (instruction,
context hash) to the value that followed that context last time.  FCM can
capture repeating non-arithmetic sequences that neither last-value nor
stride prediction can.

The second-level table is idealized (unbounded), as in the original limit
study; the first level honours the usual table geometry.  Not part of the
paper's experiments — provided for the predictor-family ablation.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from .base import AccessResult, Number, ValuePredictor
from .table import EvictionCallback, PredictionTable

class FcmEntry:
    """First-level entry: the last *k* destination values, oldest first."""

    __slots__ = ("history", "order")

    def __init__(self, order: int) -> None:
        self.history: tuple = ()
        self.order = order

    @property
    def context(self) -> int:
        return hash(self.history)

    def push(self, value: Number) -> None:
        self.history = (self.history + (value,))[-self.order:]


class FcmPredictor(ValuePredictor):
    """Order-k finite context method predictor.

    Args:
        entries: first-level table capacity (``None`` = unbounded).
        ways: first-level associativity.
        order: history depth *k* (folded into the rolling hash).
    """

    def __init__(
        self, entries: Optional[int] = None, ways: int = 2, order: int = 2
    ) -> None:
        if order < 1:
            raise ValueError("order must be at least 1")
        self.order = order
        self.table: PredictionTable[FcmEntry] = PredictionTable(entries, ways)
        self._values: Dict[Tuple[int, int], Number] = {}
        # Per-address index of live second-level context keys, so eviction
        # is O(contexts-of-address) instead of a scan of all of _values.
        self._contexts: Dict[int, Set[int]] = {}

    def access(
        self,
        address: int,
        value: Number,
        allocate: bool = True,
        on_evict: Optional[EvictionCallback] = None,
    ) -> AccessResult:
        entry = self.table.lookup(address)
        if entry is not None:
            key = (address, entry.context)
            predicted = self._values.get(key)
            hit = predicted is not None
            correct = hit and predicted == value
            # Learn: this context now leads to `value`.
            self._values[key] = value
            self._contexts.setdefault(address, set()).add(entry.context)
            entry.push(value)
            if hit:
                return AccessResult(
                    hit=True,
                    predicted_value=predicted,
                    correct=correct,
                    nonzero_stride=False,
                )
            return AccessResult(
                hit=False, predicted_value=None, correct=False, nonzero_stride=False
            )
        if not allocate:
            return AccessResult(
                hit=False, predicted_value=None, correct=False, nonzero_stride=False
            )
        fresh = FcmEntry(self.order)
        fresh.push(value)
        evicted = self.table.insert(address, fresh, self._wrap_evict(on_evict))
        return AccessResult(
            hit=False,
            predicted_value=None,
            correct=False,
            nonzero_stride=False,
            allocated=True,
            evicted_address=evicted,
        )

    def _wrap_evict(
        self, on_evict: Optional[EvictionCallback]
    ) -> Optional[EvictionCallback]:
        def _evict(address: int) -> None:
            # Drop the evicted instruction's second-level footprint.
            for context in self._contexts.pop(address, ()):
                del self._values[(address, context)]
            if on_evict is not None:
                on_evict(address)

        return _evict

    def lookup_prediction(self, address: int) -> Optional[Number]:
        entry = self.table.peek(address)
        if entry is None:
            return None
        return self._values.get((address, entry.context))

    def clear(self) -> None:
        self.table.clear()
        self._values.clear()
        self._contexts.clear()
