"""Common predictor interfaces and the per-access result record."""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional, Union

Number = Union[int, float]


@dataclasses.dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of presenting one dynamic instruction to a predictor.

    Attributes:
        hit: the predictor had an entry for the instruction (a *prediction
            attempt* in the paper's terminology).
        predicted_value: the value the predictor suggested (``None`` on miss).
        correct: the suggestion matched the actual outcome value.
        nonzero_stride: the suggestion was produced with a non-zero stride —
            the numerator of the paper's *stride efficiency ratio*.
        allocated: a new entry was installed for this instruction.
        evicted_address: address displaced by the allocation, if any.
    """

    hit: bool
    predicted_value: Optional[Number]
    correct: bool
    nonzero_stride: bool
    allocated: bool = False
    evicted_address: Optional[int] = None


class ValuePredictor(abc.ABC):
    """A value predictor operating on (instruction address, outcome value).

    Subclasses implement the two hardware schemes of the paper's Section 2
    (last-value and stride) and the hybrid organization of Section 3.
    """

    @abc.abstractmethod
    def access(
        self, address: int, value: Number, allocate: bool = True
    ) -> AccessResult:
        """Present one dynamic instance; predict, learn, maybe allocate.

        Args:
            address: static instruction address.
            value: the actual destination value produced.
            allocate: install a new entry on miss.  Classification schemes
                use this to keep unpredictable instructions out of the table
                (the paper's central mechanism).
        """

    @abc.abstractmethod
    def lookup_prediction(self, address: int) -> Optional[Number]:
        """Return the value that *would* be predicted, without learning."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Reset all table state."""

    def tables(self):
        """The prediction tables backing this predictor.

        Used for bulk telemetry publishing (lookups/hits/evictions) after
        a simulation; every bundled predictor keeps its state in a single
        ``table`` attribute, so that is the default.  Multi-table
        organizations override this.
        """
        return (self.table,)
