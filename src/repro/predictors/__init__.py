"""Value predictors and the hardware classifier (paper Sections 2.1-2.2).

* :class:`LastValuePredictor` — predicts the previously seen value.
* :class:`StridePredictor` — predicts last value + stride.
* :class:`HybridPredictor` — split stride/last-value tables steered by
  opcode directives (the organization the paper's scheme enables).
* :class:`FsmClassifier` — per-entry saturating counters, the hardware
  classification baseline.
* :class:`PredictionTable` — set-associative LRU table shared by all of
  the above.
"""

from .base import AccessResult, Number, ValuePredictor
from .fcm import FcmEntry, FcmPredictor
from .fsm import FsmClassifier, SaturatingCounter
from .hybrid import HybridPredictor
from .last_value import LastValueEntry, LastValuePredictor
from .stride import StrideEntry, StridePredictor
from .table import PredictionTable
from .two_delta import TwoDeltaEntry, TwoDeltaStridePredictor

__all__ = [
    "AccessResult",
    "FcmEntry",
    "FcmPredictor",
    "FsmClassifier",
    "HybridPredictor",
    "LastValueEntry",
    "LastValuePredictor",
    "Number",
    "PredictionTable",
    "SaturatingCounter",
    "StrideEntry",
    "StridePredictor",
    "TwoDeltaEntry",
    "TwoDeltaStridePredictor",
    "ValuePredictor",
]
