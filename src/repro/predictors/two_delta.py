"""The two-delta stride predictor (extension).

A literature companion to the paper's plain stride predictor (it appears
in the authors' technical reports [4]/[5] as a more conservative stride
scheme, originally due to Eickemeyer & Vassiliadis): the committed stride
used for prediction is only replaced when the *same* new delta is observed
twice in a row.  One noisy value therefore does not destroy a learned
stride — at the cost of slower adaptation.

Not used by the paper's headline experiments; provided for the predictor-
family ablation (``benchmarks/test_ablation_predictors.py``).
"""

from __future__ import annotations

from typing import Optional

from .base import AccessResult, Number, ValuePredictor
from .table import EvictionCallback, PredictionTable


class TwoDeltaEntry:
    """last value + candidate stride (s1) + committed stride (s2)."""

    __slots__ = ("last_value", "candidate_stride", "committed_stride")

    def __init__(self, last_value: Number) -> None:
        self.last_value = last_value
        self.candidate_stride: Number = 0
        self.committed_stride: Number = 0

    def predict(self) -> Number:
        return self.last_value + self.committed_stride

    def update(self, value: Number) -> None:
        delta = value - self.last_value
        if delta == self.candidate_stride:
            self.committed_stride = delta
        self.candidate_stride = delta
        self.last_value = value


class TwoDeltaStridePredictor(ValuePredictor):
    """Predicts ``last value + committed stride`` (two-delta update rule)."""

    def __init__(self, entries: Optional[int] = None, ways: int = 2) -> None:
        self.table: PredictionTable[TwoDeltaEntry] = PredictionTable(entries, ways)

    def access(
        self,
        address: int,
        value: Number,
        allocate: bool = True,
        on_evict: Optional[EvictionCallback] = None,
    ) -> AccessResult:
        entry = self.table.lookup(address)
        if entry is not None:
            predicted = entry.predict()
            correct = predicted == value
            nonzero = correct and entry.committed_stride != 0
            entry.update(value)
            return AccessResult(
                hit=True,
                predicted_value=predicted,
                correct=correct,
                nonzero_stride=nonzero,
            )
        if not allocate:
            return AccessResult(
                hit=False, predicted_value=None, correct=False, nonzero_stride=False
            )
        evicted = self.table.insert(address, TwoDeltaEntry(value), on_evict)
        return AccessResult(
            hit=False,
            predicted_value=None,
            correct=False,
            nonzero_stride=False,
            allocated=True,
            evicted_address=evicted,
        )

    def lookup_prediction(self, address: int) -> Optional[Number]:
        entry = self.table.peek(address)
        return None if entry is None else entry.predict()

    def clear(self) -> None:
        self.table.clear()
