"""Semantic analysis for mini-C.

Builds symbol tables, allocates global data addresses, type-checks every
expression and *inserts explicit cast nodes* wherever the language performs
an implicit int/float conversion — so the code generator never has to
reason about mixed-type operations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from . import astnodes as ast
from .errors import SemanticError

Number = Union[int, float]

#: Builtin functions: name -> (return type, parameter types or None for "any one").
BUILTINS: Dict[str, Tuple[ast.Type, Optional[List[ast.Type]]]] = {
    "in": (ast.Type.INT, []),
    "fin": (ast.Type.FLOAT, []),
    "out": (ast.Type.VOID, None),  # accepts one int or float argument
    "phase": (ast.Type.VOID, [ast.Type.INT]),
}

_INT_ONLY_OPS = frozenset({"%", "<<", ">>", "&", "|", "^", "&&", "||"})
_COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
_ARITHMETIC_OPS = frozenset({"+", "-", "*", "/"})


@dataclasses.dataclass(frozen=True)
class GlobalScalar:
    name: str
    type: ast.Type
    address: int


@dataclasses.dataclass(frozen=True)
class GlobalArray:
    name: str
    type: ast.Type
    base_address: int
    size: int


@dataclasses.dataclass(frozen=True)
class LocalVar:
    name: str
    type: ast.Type
    index: int  # position among the function's locals


@dataclasses.dataclass(frozen=True)
class ParamVar:
    name: str
    type: ast.Type
    index: int  # position among the function's parameters


@dataclasses.dataclass
class FunctionInfo:
    decl: ast.FunctionDecl
    params: Dict[str, ParamVar]
    locals: Dict[str, LocalVar]

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def return_type(self) -> ast.Type:
        return self.decl.return_type

    @property
    def param_types(self) -> List[ast.Type]:
        return [param_type for param_type, _ in self.decl.params]


@dataclasses.dataclass
class ProgramInfo:
    """Everything the code generator needs about an analyzed program."""

    unit: ast.TranslationUnit
    globals: Dict[str, Union[GlobalScalar, GlobalArray]]
    functions: Dict[str, FunctionInfo]
    data: Dict[int, Number]
    data_size: int


def _coerce(expr: ast.Expr, wanted: ast.Type) -> ast.Expr:
    """Wrap ``expr`` in a cast node if its type differs from ``wanted``.

    Raises:
        SemanticError: when the expression is void — void values cannot
            be converted to anything.
    """
    if expr.type is wanted:
        return expr
    if expr.type is ast.Type.VOID:
        raise SemanticError("void value used in an expression", expr.line)
    cast = ast.Unary(op=f"({wanted.value})", operand=expr, line=expr.line)
    cast.type = wanted
    return cast


class Analyzer:
    """Single-pass semantic analyzer.

    Usage: ``info = Analyzer(unit).analyze()``.
    """

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self._unit = unit
        self._globals: Dict[str, Union[GlobalScalar, GlobalArray]] = {}
        self._functions: Dict[str, FunctionInfo] = {}
        self._data: Dict[int, Number] = {}
        self._next_address = 0
        # Per-function state:
        self._current: Optional[FunctionInfo] = None
        self._loop_depth = 0

    def analyze(self) -> ProgramInfo:
        for decl in self._unit.globals:
            self._declare_global(decl)
        for function in self._unit.functions:
            self._declare_function(function)
        if "main" not in self._functions:
            raise SemanticError("program has no main() function")
        main = self._functions["main"]
        if main.decl.params:
            raise SemanticError("main() takes no parameters", main.decl.line)
        for info in self._functions.values():
            self._check_function(info)
        return ProgramInfo(
            unit=self._unit,
            globals=self._globals,
            functions=self._functions,
            data=self._data,
            data_size=self._next_address,
        )

    # -- declarations ------------------------------------------------------

    def _declare_global(self, decl: ast.GlobalDecl) -> None:
        if decl.name in self._globals or decl.name in BUILTINS:
            raise SemanticError(f"duplicate global {decl.name!r}", decl.line)
        address = self._next_address
        if decl.size is None:
            self._globals[decl.name] = GlobalScalar(decl.name, decl.var_type, address)
            count = 1
        else:
            self._globals[decl.name] = GlobalArray(
                decl.name, decl.var_type, address, decl.size
            )
            count = decl.size
        if len(decl.init) > count:
            raise SemanticError(
                f"{decl.name!r}: {len(decl.init)} initializers for {count} element(s)",
                decl.line,
            )
        for offset, value in enumerate(decl.init):
            if decl.var_type is ast.Type.FLOAT:
                value = float(value)
            elif isinstance(value, float):
                raise SemanticError(
                    f"{decl.name!r}: float initializer for int variable", decl.line
                )
            self._data[address + offset] = value
        self._next_address += count

    def _declare_function(self, decl: ast.FunctionDecl) -> None:
        if decl.name in self._functions or decl.name in BUILTINS:
            raise SemanticError(f"duplicate function {decl.name!r}", decl.line)
        if decl.name in self._globals:
            raise SemanticError(
                f"{decl.name!r} already declared as a global", decl.line
            )
        params: Dict[str, ParamVar] = {}
        for index, (param_type, name) in enumerate(decl.params):
            if name in params:
                raise SemanticError(f"duplicate parameter {name!r}", decl.line)
            params[name] = ParamVar(name, param_type, index)
        self._functions[decl.name] = FunctionInfo(decl=decl, params=params, locals={})

    # -- function bodies ----------------------------------------------------

    def _check_function(self, info: FunctionInfo) -> None:
        self._current = info
        self._loop_depth = 0
        self._check_block(info.decl.body)
        self._current = None

    def _check_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self._check_statement(statement)

    def _check_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            self._check_block(statement)
        elif isinstance(statement, ast.LocalDecl):
            self._check_local_decl(statement)
        elif isinstance(statement, ast.Assign):
            self._check_assign(statement)
        elif isinstance(statement, ast.ExprStmt):
            self._check_expr(statement.expr)
        elif isinstance(statement, ast.If):
            self._require_int(self._check_expr(statement.cond), statement.line, "if")
            self._check_block(statement.then_body)
            if statement.else_body is not None:
                self._check_block(statement.else_body)
        elif isinstance(statement, ast.While):
            self._require_int(self._check_expr(statement.cond), statement.line, "while")
            self._loop_depth += 1
            self._check_block(statement.body)
            self._loop_depth -= 1
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                self._check_statement(statement.init)
            if statement.cond is not None:
                self._require_int(
                    self._check_expr(statement.cond), statement.line, "for"
                )
            if statement.step is not None:
                self._check_statement(statement.step)
            self._loop_depth += 1
            self._check_block(statement.body)
            self._loop_depth -= 1
        elif isinstance(statement, ast.Return):
            self._check_return(statement)
        elif isinstance(statement, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                keyword = "break" if isinstance(statement, ast.Break) else "continue"
                raise SemanticError(f"{keyword} outside a loop", statement.line)
        else:  # pragma: no cover - statement kinds are closed
            raise SemanticError(f"unknown statement {statement!r}", statement.line)

    def _check_local_decl(self, decl: ast.LocalDecl) -> None:
        info = self._current
        assert info is not None
        if (
            decl.name in info.locals
            or decl.name in info.params
            or decl.name in self._globals
            or decl.name in BUILTINS
        ):
            raise SemanticError(f"duplicate declaration of {decl.name!r}", decl.line)
        info.locals[decl.name] = LocalVar(decl.name, decl.var_type, len(info.locals))
        if decl.init is not None:
            self._check_expr(decl.init)
            decl.init = _coerce(decl.init, decl.var_type)

    def _check_assign(self, statement: ast.Assign) -> None:
        target_type = self._check_target(statement.target)
        self._check_expr(statement.value)
        statement.value = _coerce(statement.value, target_type)

    def _check_return(self, statement: ast.Return) -> None:
        info = self._current
        assert info is not None
        if info.return_type is ast.Type.VOID:
            if statement.value is not None:
                raise SemanticError(
                    f"{info.name}() is void but returns a value", statement.line
                )
            return
        if statement.value is None:
            raise SemanticError(
                f"{info.name}() must return a {info.return_type.value}", statement.line
            )
        self._check_expr(statement.value)
        statement.value = _coerce(statement.value, info.return_type)

    # -- expressions ---------------------------------------------------------

    def _check_target(self, target: ast.Target) -> ast.Type:
        if isinstance(target, ast.VarRef):
            symbol = self._lookup_value(target.name, target.line)
            if isinstance(symbol, GlobalArray):
                raise SemanticError(
                    f"cannot assign to whole array {target.name!r}", target.line
                )
            target.type = symbol.type
            return symbol.type
        # IndexRef
        array = self._lookup_array(target.name, target.line)
        index_type = self._check_expr(target.index)
        self._require_int(index_type, target.line, "array index")
        target.type = array.type
        return array.type

    def _check_expr(self, expr: ast.Expr) -> ast.Type:
        expr_type = self._infer(expr)
        expr.type = expr_type
        return expr_type

    def _infer(self, expr: ast.Expr) -> ast.Type:
        if isinstance(expr, ast.IntLiteral):
            return ast.Type.INT
        if isinstance(expr, ast.FloatLiteral):
            return ast.Type.FLOAT
        if isinstance(expr, ast.VarRef):
            symbol = self._lookup_value(expr.name, expr.line)
            if isinstance(symbol, GlobalArray):
                raise SemanticError(
                    f"array {expr.name!r} used without an index", expr.line
                )
            return symbol.type
        if isinstance(expr, ast.IndexRef):
            array = self._lookup_array(expr.name, expr.line)
            self._require_int(self._check_expr(expr.index), expr.line, "array index")
            return array.type
        if isinstance(expr, ast.Unary):
            return self._infer_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr)
        raise SemanticError(f"unknown expression {expr!r}", expr.line)

    def _infer_unary(self, expr: ast.Unary) -> ast.Type:
        operand_type = self._check_expr(expr.operand)
        if expr.op == "-":
            return operand_type
        if expr.op == "!":
            self._require_int(operand_type, expr.line, "'!'")
            return ast.Type.INT
        if expr.op == "(int)":
            return ast.Type.INT
        if expr.op == "(float)":
            return ast.Type.FLOAT
        raise SemanticError(f"unknown unary operator {expr.op!r}", expr.line)

    def _infer_binary(self, expr: ast.Binary) -> ast.Type:
        left_type = self._check_expr(expr.left)
        right_type = self._check_expr(expr.right)
        op = expr.op
        if op in _INT_ONLY_OPS:
            if left_type is not ast.Type.INT or right_type is not ast.Type.INT:
                raise SemanticError(f"{op!r} requires int operands", expr.line)
            return ast.Type.INT
        common = (
            ast.Type.FLOAT
            if ast.Type.FLOAT in (left_type, right_type)
            else ast.Type.INT
        )
        expr.left = _coerce(expr.left, common)
        expr.right = _coerce(expr.right, common)
        if op in _COMPARISON_OPS:
            return ast.Type.INT
        if op in _ARITHMETIC_OPS:
            return common
        raise SemanticError(f"unknown binary operator {op!r}", expr.line)

    def _infer_call(self, expr: ast.Call) -> ast.Type:
        if expr.name in BUILTINS:
            return self._infer_builtin(expr)
        if expr.name not in self._functions:
            raise SemanticError(f"call to undefined function {expr.name!r}", expr.line)
        callee = self._functions[expr.name]
        expected = callee.param_types
        if len(expr.args) != len(expected):
            raise SemanticError(
                f"{expr.name}() expects {len(expected)} argument(s), "
                f"got {len(expr.args)}",
                expr.line,
            )
        for index, (arg, wanted) in enumerate(zip(expr.args, expected)):
            self._check_expr(arg)
            expr.args[index] = _coerce(arg, wanted)
        return callee.return_type

    def _infer_builtin(self, expr: ast.Call) -> ast.Type:
        return_type, param_types = BUILTINS[expr.name]
        if param_types is None:  # out(): one argument of either numeric type
            if len(expr.args) != 1:
                raise SemanticError(f"{expr.name}() expects 1 argument", expr.line)
            self._check_expr(expr.args[0])
            return return_type
        if len(expr.args) != len(param_types):
            raise SemanticError(
                f"{expr.name}() expects {len(param_types)} argument(s)", expr.line
            )
        for index, (arg, wanted) in enumerate(zip(expr.args, param_types)):
            self._check_expr(arg)
            expr.args[index] = _coerce(arg, wanted)
        return return_type

    # -- lookup helpers -------------------------------------------------------

    def _lookup_value(
        self, name: str, line: int
    ) -> Union[GlobalScalar, GlobalArray, LocalVar, ParamVar]:
        info = self._current
        assert info is not None
        if name in info.locals:
            return info.locals[name]
        if name in info.params:
            return info.params[name]
        if name in self._globals:
            return self._globals[name]
        raise SemanticError(f"undefined variable {name!r}", line)

    def _lookup_array(self, name: str, line: int) -> GlobalArray:
        symbol = self._lookup_value(name, line)
        if not isinstance(symbol, GlobalArray):
            raise SemanticError(f"{name!r} is not an array", line)
        return symbol

    @staticmethod
    def _require_int(found: ast.Type, line: int, context: str) -> None:
        if found is not ast.Type.INT:
            raise SemanticError(f"{context} requires an int expression", line)


def analyze(unit: ast.TranslationUnit) -> ProgramInfo:
    """Run semantic analysis on a parsed translation unit."""
    return Analyzer(unit).analyze()
