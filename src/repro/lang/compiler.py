"""The compilation facade: mini-C source text -> executable Program.

This is phase 1 of the paper's methodology — the stand-in for
"gcc 2.7.2 with -O2".  Phase 3 (directive insertion) lives in
:mod:`repro.annotate` and operates on the *compiled* program, never on the
source, matching the paper's requirement that the final phase performs no
instruction scheduling or code movement.
"""

from __future__ import annotations

from ..isa import Program
from .codegen import generate
from .optimizer import fold_unit
from .parser import parse
from .semantics import analyze


def compile_source(source: str, name: str = "<minic>", optimize: bool = True) -> Program:
    """Compile mini-C ``source`` into a :class:`~repro.isa.program.Program`.

    Args:
        source: mini-C source text.
        name: program name recorded in the binary.
        optimize: run constant folding and the peephole pass (the "-O2"
            stand-in).  Disable for compiler-debugging only.

    Raises:
        CompileError: (or a subclass — LexError / ParseError /
            SemanticError) on any malformed program.
    """
    unit = parse(source)
    if optimize:
        fold_unit(unit)
    info = analyze(unit)
    return generate(info, name=name, optimize=optimize)
