"""Optimization passes (the reproduction's "-O2" stand-in).

Two layers, both deliberately conservative:

* **AST constant folding** — evaluates literal subexpressions (with C
  semantics for integer division/remainder) and the identity operations
  ``x+0``, ``x-0``, ``x*1``, ``x/1``.  Runs before semantic analysis.
* **Stream peephole** — rewrites the emitter's instruction stream before
  label resolution: drops no-op moves and zero-adjustments, merges adjacent
  stack-pointer adjustments, removes jumps to the immediately following
  label and unreachable code after an unconditional transfer.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..isa import Opcode, SP
from . import astnodes as ast
from .emitter import LabelMark, PendingInstruction, StreamItem


# --------------------------------------------------------------------------
# AST constant folding
# --------------------------------------------------------------------------


def fold_unit(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Fold constants in every function body, in place. Returns ``unit``."""
    for function in unit.functions:
        _fold_block(function.body)
    return unit


def _fold_block(block: ast.Block) -> None:
    for statement in block.statements:
        _fold_statement(statement)


def _fold_statement(statement: ast.Stmt) -> None:
    if isinstance(statement, ast.Block):
        _fold_block(statement)
    elif isinstance(statement, ast.LocalDecl):
        if statement.init is not None:
            statement.init = _fold_expr(statement.init)
    elif isinstance(statement, ast.Assign):
        if isinstance(statement.target, ast.IndexRef):
            statement.target.index = _fold_expr(statement.target.index)
        statement.value = _fold_expr(statement.value)
    elif isinstance(statement, ast.ExprStmt):
        statement.expr = _fold_expr(statement.expr)
    elif isinstance(statement, ast.If):
        statement.cond = _fold_expr(statement.cond)
        _fold_block(statement.then_body)
        if statement.else_body is not None:
            _fold_block(statement.else_body)
    elif isinstance(statement, ast.While):
        statement.cond = _fold_expr(statement.cond)
        _fold_block(statement.body)
    elif isinstance(statement, ast.For):
        if statement.init is not None:
            _fold_statement(statement.init)
        if statement.cond is not None:
            statement.cond = _fold_expr(statement.cond)
        if statement.step is not None:
            _fold_statement(statement.step)
        _fold_block(statement.body)
    elif isinstance(statement, ast.Return):
        if statement.value is not None:
            statement.value = _fold_expr(statement.value)


def _literal_value(expr: ast.Expr) -> Optional[Union[int, float]]:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.FloatLiteral):
        return expr.value
    return None


def _make_literal(value: Union[int, float], line: int) -> ast.Expr:
    if isinstance(value, bool):  # comparisons produce Python bools
        value = int(value)
    if isinstance(value, int):
        return ast.IntLiteral(value=value, line=line)
    return ast.FloatLiteral(value=value, line=line)


def _c_div(a: int, b: int) -> int:
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _fold_expr(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.Unary):
        expr.operand = _fold_expr(expr.operand)
        value = _literal_value(expr.operand)
        if value is None:
            return expr
        if expr.op == "-":
            return _make_literal(-value, expr.line)
        if expr.op == "!" and isinstance(value, int):
            return _make_literal(0 if value else 1, expr.line)
        if expr.op == "(int)":
            return _make_literal(int(value), expr.line)
        if expr.op == "(float)":
            return _make_literal(float(value), expr.line)
        return expr
    if isinstance(expr, ast.Binary):
        expr.left = _fold_expr(expr.left)
        expr.right = _fold_expr(expr.right)
        return _fold_binary(expr)
    if isinstance(expr, ast.Call):
        expr.args = [_fold_expr(arg) for arg in expr.args]
        return expr
    if isinstance(expr, ast.IndexRef):
        expr.index = _fold_expr(expr.index)
        return expr
    return expr


def _fold_binary(expr: ast.Binary) -> ast.Expr:
    left = _literal_value(expr.left)
    right = _literal_value(expr.right)
    op = expr.op
    if left is not None and right is not None:
        folded = _evaluate(op, left, right, expr.line)
        if folded is not None:
            return folded
    # Identity simplifications that keep the non-literal operand.
    if right is not None:
        if op in ("+", "-") and right == 0 and not isinstance(right, float):
            return expr.left
        if op in ("*", "/") and right == 1 and not isinstance(right, float):
            return expr.left
    if left == 0 and op == "+" and not isinstance(left, float):
        return expr.right
    if left == 1 and op == "*" and not isinstance(left, float):
        return expr.right
    return expr


def _evaluate(
    op: str, left: Union[int, float], right: Union[int, float], line: int
) -> Optional[ast.Expr]:
    both_int = isinstance(left, int) and isinstance(right, int)
    try:
        if op == "+":
            return _make_literal(left + right, line)
        if op == "-":
            return _make_literal(left - right, line)
        if op == "*":
            return _make_literal(left * right, line)
        if op == "/":
            if right == 0:
                return None  # let it fail at run time, like a real compiler
            if both_int:
                return _make_literal(_c_div(left, right), line)
            return _make_literal(left / right, line)
        if op == "%" and both_int:
            if right == 0:
                return None
            return _make_literal(left - _c_div(left, right) * right, line)
        if both_int:
            if op == "<<":
                return _make_literal(left << (right & 63), line)
            if op == ">>":
                return _make_literal(left >> (right & 63), line)
            if op == "&":
                return _make_literal(left & right, line)
            if op == "|":
                return _make_literal(left | right, line)
            if op == "^":
                return _make_literal(left ^ right, line)
            if op == "&&":
                return _make_literal(1 if (left and right) else 0, line)
            if op == "||":
                return _make_literal(1 if (left or right) else 0, line)
        if op == "==":
            return _make_literal(left == right, line)
        if op == "!=":
            return _make_literal(left != right, line)
        if op == "<":
            return _make_literal(left < right, line)
        if op == "<=":
            return _make_literal(left <= right, line)
        if op == ">":
            return _make_literal(left > right, line)
        if op == ">=":
            return _make_literal(left >= right, line)
    except (OverflowError, ValueError):  # pragma: no cover - defensive
        return None
    return None


# --------------------------------------------------------------------------
# Stream peephole
# --------------------------------------------------------------------------

_UNCONDITIONAL = (Opcode.JMP, Opcode.JR, Opcode.HALT)
_SP_ADJUST = {Opcode.ADDI: 1, Opcode.SUBI: -1}


def peephole(stream: List[StreamItem], max_passes: int = 8) -> List[StreamItem]:
    """Run the peephole rules to a bounded fixpoint. Returns a new stream."""
    current = list(stream)
    for _ in range(max_passes):
        rewritten = _peephole_once(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current


def _peephole_once(stream: List[StreamItem]) -> List[StreamItem]:
    output: List[StreamItem] = []
    index = 0
    size = len(stream)
    while index < size:
        item = stream[index]
        if isinstance(item, LabelMark):
            output.append(item)
            index += 1
            continue
        # mov x, x  -> drop.
        if (
            item.opcode in (Opcode.MOV, Opcode.FMOV)
            and item.srcs
            and item.dest == item.srcs[0]
        ):
            index += 1
            continue
        # addi/subi r, r, 0 -> drop.
        if (
            item.opcode in (Opcode.ADDI, Opcode.SUBI)
            and item.imm == 0
            and item.srcs
            and item.dest == item.srcs[0]
        ):
            index += 1
            continue
        # Merge adjacent sp adjustments.
        merged = _merge_sp_adjust(item, stream, index)
        if merged is not None:
            replacement, consumed = merged
            if replacement is not None:
                output.append(replacement)
            index += consumed
            continue
        # jmp L where L is the next label -> drop.
        if item.opcode is Opcode.JMP and _jumps_to_next(item, stream, index):
            index += 1
            continue
        output.append(item)
        index += 1
        # Unreachable code: after an unconditional transfer, skip until the
        # next label.
        if item.opcode in _UNCONDITIONAL:
            while index < size and not isinstance(stream[index], LabelMark):
                index += 1
    return output


def _is_sp_adjust(item: StreamItem) -> bool:
    return (
        isinstance(item, PendingInstruction)
        and item.opcode in _SP_ADJUST
        and item.dest == SP
        and item.srcs == (SP,)
        and isinstance(item.imm, int)
    )


def _merge_sp_adjust(
    item: PendingInstruction, stream: List[StreamItem], index: int
) -> Optional[tuple[Optional[PendingInstruction], int]]:
    """Merge a run of consecutive sp adjustments starting at ``index``."""
    if not _is_sp_adjust(item):
        return None
    total = _SP_ADJUST[item.opcode] * item.imm
    consumed = 1
    while index + consumed < len(stream) and _is_sp_adjust(stream[index + consumed]):
        follower = stream[index + consumed]
        assert isinstance(follower, PendingInstruction)
        total += _SP_ADJUST[follower.opcode] * follower.imm
        consumed += 1
    if consumed == 1:
        return None
    if total == 0:
        return (None, consumed)
    opcode = Opcode.ADDI if total > 0 else Opcode.SUBI
    return (
        PendingInstruction(opcode, dest=SP, srcs=(SP,), imm=abs(total)),
        consumed,
    )


def _jumps_to_next(
    item: PendingInstruction, stream: List[StreamItem], index: int
) -> bool:
    """True if ``item`` jumps to a label that directly follows it."""
    target = item.target
    if not isinstance(target, str):
        return False
    cursor = index + 1
    while cursor < len(stream) and isinstance(stream[cursor], LabelMark):
        if stream[cursor].name == target:  # type: ignore[union-attr]
            return True
        cursor += 1
    return False
