"""Token definitions for the mini-C lexer."""

from __future__ import annotations

import dataclasses
import enum
from typing import Union


class TokenKind(enum.Enum):
    """Lexical classes of the mini-C language."""

    INT_LITERAL = "int_literal"
    FLOAT_LITERAL = "float_literal"
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "int",
        "float",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
    }
)

#: Multi-character punctuators, longest first so the lexer can match greedily.
PUNCTUATORS = (
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
)


@dataclasses.dataclass(frozen=True, slots=True)
class Token:
    """One lexeme.

    ``value`` is the identifier/keyword/punctuator text, or the parsed
    numeric value for literals.
    """

    kind: TokenKind
    value: Union[str, int, float]
    line: int

    def matches(self, kind: TokenKind, value: object = None) -> bool:
        return self.kind is kind and (value is None or self.value == value)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind.value}({self.value!r})@{self.line}"
