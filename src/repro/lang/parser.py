"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from . import astnodes as ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind

#: Binary operator precedence tiers, loosest first.
_PRECEDENCE: List[Tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_TYPE_KEYWORDS = {"int": ast.Type.INT, "float": ast.Type.FLOAT, "void": ast.Type.VOID}


class Parser:
    """Parses a token stream into a :class:`~repro.lang.astnodes.TranslationUnit`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check(self, kind: TokenKind, value: object = None) -> bool:
        return self._current.matches(kind, value)

    def _accept(self, kind: TokenKind, value: object = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, value: object = None) -> Token:
        if self._check(kind, value):
            return self._advance()
        want = value if value is not None else kind.value
        raise ParseError(
            f"expected {want!r}, found {self._current.value!r}", self._current.line
        )

    def _expect_punct(self, punct: str) -> Token:
        return self._expect(TokenKind.PUNCT, punct)

    # -- top level ---------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1)
        while not self._check(TokenKind.EOF):
            if not self._check(TokenKind.KEYWORD) or self._current.value not in (
                "int",
                "float",
                "void",
            ):
                raise ParseError(
                    f"expected declaration, found {self._current.value!r}",
                    self._current.line,
                )
            # A declaration is a function iff '(' follows the name.
            if self._peek(2).matches(TokenKind.PUNCT, "("):
                unit.functions.append(self._parse_function())
            else:
                unit.globals.append(self._parse_global())
        return unit

    def _parse_type(self) -> ast.Type:
        token = self._expect(TokenKind.KEYWORD)
        if token.value not in _TYPE_KEYWORDS:
            raise ParseError(f"expected a type, found {token.value!r}", token.line)
        return _TYPE_KEYWORDS[token.value]

    def _parse_global(self) -> ast.GlobalDecl:
        line = self._current.line
        var_type = self._parse_type()
        if var_type is ast.Type.VOID:
            raise ParseError("variables cannot be void", line)
        name = self._expect(TokenKind.IDENTIFIER).value
        size: Optional[int] = None
        init: List[Union[int, float]] = []
        if self._accept(TokenKind.PUNCT, "["):
            size_token = self._expect(TokenKind.INT_LITERAL)
            size = int(size_token.value)
            if size <= 0:
                raise ParseError("array size must be positive", size_token.line)
            self._expect_punct("]")
        if self._accept(TokenKind.PUNCT, "="):
            init = self._parse_global_init(size is not None)
        self._expect_punct(";")
        return ast.GlobalDecl(var_type=var_type, name=name, size=size, init=init, line=line)

    def _parse_global_init(self, is_array: bool) -> List[Union[int, float]]:
        values: List[Union[int, float]] = []
        if is_array:
            self._expect_punct("{")
            values.append(self._parse_constant())
            while self._accept(TokenKind.PUNCT, ","):
                values.append(self._parse_constant())
            self._expect_punct("}")
        else:
            values.append(self._parse_constant())
        return values

    def _parse_constant(self) -> Union[int, float]:
        negative = self._accept(TokenKind.PUNCT, "-") is not None
        token = self._advance()
        if token.kind not in (TokenKind.INT_LITERAL, TokenKind.FLOAT_LITERAL):
            raise ParseError("expected a numeric constant", token.line)
        value = token.value
        return -value if negative else value

    def _parse_function(self) -> ast.FunctionDecl:
        line = self._current.line
        return_type = self._parse_type()
        name = self._expect(TokenKind.IDENTIFIER).value
        self._expect_punct("(")
        params: List[Tuple[ast.Type, str]] = []
        if not self._check(TokenKind.PUNCT, ")"):
            params.append(self._parse_param())
            while self._accept(TokenKind.PUNCT, ","):
                params.append(self._parse_param())
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FunctionDecl(
            return_type=return_type, name=name, params=params, body=body, line=line
        )

    def _parse_param(self) -> Tuple[ast.Type, str]:
        param_type = self._parse_type()
        if param_type is ast.Type.VOID:
            raise ParseError("parameters cannot be void", self._current.line)
        name = self._expect(TokenKind.IDENTIFIER).value
        return (param_type, name)

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        line = self._current.line
        self._expect_punct("{")
        statements: List[ast.Stmt] = []
        while not self._check(TokenKind.PUNCT, "}"):
            if self._check(TokenKind.EOF):
                raise ParseError("unterminated block", line)
            statements.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(statements=statements, line=line)

    def _parse_statement(self) -> ast.Stmt:
        token = self._current
        if token.matches(TokenKind.PUNCT, "{"):
            return self._parse_block()
        if token.kind is TokenKind.KEYWORD:
            keyword = token.value
            if keyword in ("int", "float"):
                return self._parse_local_decl()
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "return":
                return self._parse_return()
            if keyword == "break":
                self._advance()
                self._expect_punct(";")
                return ast.Break(line=token.line)
            if keyword == "continue":
                self._advance()
                self._expect_punct(";")
                return ast.Continue(line=token.line)
            raise ParseError(f"unexpected keyword {keyword!r}", token.line)
        statement = self._parse_simple_statement()
        self._expect_punct(";")
        return statement

    def _parse_local_decl(self) -> ast.LocalDecl:
        line = self._current.line
        var_type = self._parse_type()
        name = self._expect(TokenKind.IDENTIFIER).value
        init: Optional[ast.Expr] = None
        if self._accept(TokenKind.PUNCT, "="):
            init = self._parse_expression()
        self._expect_punct(";")
        return ast.LocalDecl(var_type=var_type, name=name, init=init, line=line)

    def _parse_if(self) -> ast.If:
        line = self._advance().line  # 'if'
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then_body = self._as_block(self._parse_statement())
        else_body: Optional[ast.Block] = None
        if self._accept(TokenKind.KEYWORD, "else"):
            else_body = self._as_block(self._parse_statement())
        return ast.If(cond=cond, then_body=then_body, else_body=else_body, line=line)

    def _parse_while(self) -> ast.While:
        line = self._advance().line  # 'while'
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._as_block(self._parse_statement())
        return ast.While(cond=cond, body=body, line=line)

    def _parse_for(self) -> ast.For:
        line = self._advance().line  # 'for'
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._check(TokenKind.PUNCT, ";"):
            init = self._parse_simple_statement()
        self._expect_punct(";")
        cond: Optional[ast.Expr] = None
        if not self._check(TokenKind.PUNCT, ";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step: Optional[ast.Stmt] = None
        if not self._check(TokenKind.PUNCT, ")"):
            step = self._parse_simple_statement()
        self._expect_punct(")")
        body = self._as_block(self._parse_statement())
        return ast.For(init=init, cond=cond, step=step, body=body, line=line)

    def _parse_return(self) -> ast.Return:
        line = self._advance().line  # 'return'
        value: Optional[ast.Expr] = None
        if not self._check(TokenKind.PUNCT, ";"):
            value = self._parse_expression()
        self._expect_punct(";")
        return ast.Return(value=value, line=line)

    def _parse_simple_statement(self) -> ast.Stmt:
        """An assignment or a bare expression (must be a call)."""
        line = self._current.line
        expr = self._parse_expression()
        if self._accept(TokenKind.PUNCT, "="):
            if not isinstance(expr, (ast.VarRef, ast.IndexRef)):
                raise ParseError("assignment target must be a variable or element", line)
            value = self._parse_expression()
            return ast.Assign(target=expr, value=value, line=line)
        if not isinstance(expr, ast.Call):
            raise ParseError("expression statement must be a call", line)
        return ast.ExprStmt(expr=expr, line=line)

    @staticmethod
    def _as_block(statement: ast.Stmt) -> ast.Block:
        if isinstance(statement, ast.Block):
            return statement
        return ast.Block(statements=[statement], line=statement.line)

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, tier: int) -> ast.Expr:
        if tier >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(tier + 1)
        operators = _PRECEDENCE[tier]
        while self._current.kind is TokenKind.PUNCT and self._current.value in operators:
            op_token = self._advance()
            right = self._parse_binary(tier + 1)
            left = ast.Binary(op=op_token.value, left=left, right=right, line=op_token.line)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._current
        if token.kind is TokenKind.PUNCT and token.value in ("-", "!"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=token.value, operand=operand, line=token.line)
        if (
            token.matches(TokenKind.PUNCT, "(")
            and self._peek(1).kind is TokenKind.KEYWORD
            and self._peek(1).value in ("int", "float")
            and self._peek(2).matches(TokenKind.PUNCT, ")")
        ):
            self._advance()
            cast_type = self._advance().value  # 'int' or 'float'
            self._advance()  # ')'
            operand = self._parse_unary()
            return ast.Unary(op=f"({cast_type})", operand=operand, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check(TokenKind.PUNCT, "["):
                if not isinstance(expr, ast.VarRef):
                    raise ParseError("only named arrays can be indexed", self._current.line)
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.IndexRef(name=expr.name, index=index, line=expr.line)
            elif self._check(TokenKind.PUNCT, "("):
                if not isinstance(expr, ast.VarRef):
                    raise ParseError("call target must be a name", self._current.line)
                self._advance()
                args: List[ast.Expr] = []
                if not self._check(TokenKind.PUNCT, ")"):
                    args.append(self._parse_expression())
                    while self._accept(TokenKind.PUNCT, ","):
                        args.append(self._parse_expression())
                self._expect_punct(")")
                expr = ast.Call(name=expr.name, args=args, line=expr.line)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._advance()
        if token.kind is TokenKind.INT_LITERAL:
            return ast.IntLiteral(value=int(token.value), line=token.line)
        if token.kind is TokenKind.FLOAT_LITERAL:
            return ast.FloatLiteral(value=float(token.value), line=token.line)
        if token.kind is TokenKind.IDENTIFIER:
            return ast.VarRef(name=str(token.value), line=token.line)
        if token.matches(TokenKind.PUNCT, "("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {token.value!r}", token.line)


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C ``source`` into an AST.

    Raises:
        LexError, ParseError: on malformed input.
    """
    return Parser(tokenize(source)).parse_unit()
