"""Code generation: analyzed mini-C AST -> reproduction ISA.

Calling convention (see :mod:`repro.isa.registers` for the register map):

* Arguments are passed on the stack.  The caller allocates ``nargs`` words
  below ``sp``, stores argument ``k`` at ``sp + (nargs-1-k)`` and invokes
  ``call``; it deallocates after return.
* ``r24`` carries the return value.
* Callee prologue saves ``ra`` at ``sp-1`` and the old ``fp`` at ``sp-2``,
  sets ``fp = sp`` and opens a frame of ``2 + nlocals`` words.  Parameter
  ``k`` lives at ``fp + (nargs-1-k)``; local ``j`` at ``fp - (3+j)``.
* Expression temporaries come from ``r1..r23`` with stack discipline; any
  temporaries live across a call are caller-saved (spilled below ``sp``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa import GP, FP, Opcode, Program, RA, SP, TEMP_FIRST, TEMP_LAST
from . import astnodes as ast
from .emitter import Emitter
from .errors import CompileError, SemanticError
from .semantics import (
    BUILTINS,
    FunctionInfo,
    GlobalArray,
    GlobalScalar,
    LocalVar,
    ParamVar,
    ProgramInfo,
)

#: Return-value register.
RV = 24

_INT_BINARY: Dict[str, Opcode] = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "<": Opcode.SLT,
    "<=": Opcode.SLE,
    "==": Opcode.SEQ,
    "!=": Opcode.SNE,
}

_INT_IMMEDIATE: Dict[str, Opcode] = {
    "+": Opcode.ADDI,
    "-": Opcode.SUBI,
    "*": Opcode.MULI,
    "/": Opcode.DIVI,
    "%": Opcode.MODI,
    "&": Opcode.ANDI,
    "|": Opcode.ORI,
    "^": Opcode.XORI,
    "<<": Opcode.SHLI,
    ">>": Opcode.SHRI,
    "<": Opcode.SLTI,
    "<=": Opcode.SLEI,
    "==": Opcode.SEQI,
    "!=": Opcode.SNEI,
}

_COMMUTATIVE = frozenset({"+", "*", "&", "|", "^", "==", "!="})

_FLOAT_BINARY: Dict[str, Opcode] = {
    "+": Opcode.FADD,
    "-": Opcode.FSUB,
    "*": Opcode.FMUL,
    "/": Opcode.FDIV,
    "<": Opcode.FSLT,
    "<=": Opcode.FSLE,
    "==": Opcode.FSEQ,
    "!=": Opcode.FSNE,
}


class _TempPool:
    """Stack-disciplined allocator over the temporary registers."""

    def __init__(self) -> None:
        self._top = TEMP_FIRST

    def alloc(self, line: int) -> int:
        if self._top >= TEMP_LAST:
            raise CompileError("expression too complex (out of temporaries)", line)
        register = self._top
        self._top += 1
        return register

    def free(self, register: int) -> None:
        if register != self._top - 1:
            raise CompileError(
                f"internal: temporaries freed out of order (r{register})"
            )
        self._top -= 1

    @property
    def live(self) -> List[int]:
        return list(range(TEMP_FIRST, self._top))


class CodeGenerator:
    """Generates a complete Program from an analyzed translation unit."""

    def __init__(
        self, info: ProgramInfo, name: str = "<minic>", optimize: bool = True
    ) -> None:
        self._info = info
        self._name = name
        self._optimize = optimize
        self._emitter = Emitter()
        self._temps = _TempPool()
        self._function: Optional[FunctionInfo] = None
        self._epilogue_label = ""
        self._break_labels: List[str] = []
        self._continue_labels: List[str] = []

    def generate(self) -> Program:
        emit = self._emitter.emit
        # Entry stub: call main, halt.
        emit(Opcode.CALL, target="main")
        emit(Opcode.HALT)
        for function in self._info.unit.functions:
            self._generate_function(self._info.functions[function.name])
        if self._optimize:
            from .optimizer import peephole

            self._emitter.stream = peephole(self._emitter.stream)
        symbols = {
            name: symbol.address if isinstance(symbol, GlobalScalar) else symbol.base_address
            for name, symbol in self._info.globals.items()
        }
        return self._emitter.finalize(
            data=dict(self._info.data), symbols=symbols, name=self._name
        )

    # -- functions ------------------------------------------------------------

    def _generate_function(self, info: FunctionInfo) -> None:
        emit = self._emitter.emit
        self._function = info
        self._epilogue_label = self._emitter.new_label(f"epi_{info.name}_")
        self._emitter.mark(info.name)
        frame_size = 2 + len(info.locals)
        emit(Opcode.ST, srcs=(RA, SP), imm=-1)
        emit(Opcode.ST, srcs=(FP, SP), imm=-2)
        emit(Opcode.MOV, dest=FP, srcs=(SP,))
        emit(Opcode.SUBI, dest=SP, srcs=(SP,), imm=frame_size)
        self._generate_block(info.decl.body)
        self._emitter.mark(self._epilogue_label)
        emit(Opcode.MOV, dest=SP, srcs=(FP,))
        emit(Opcode.LD, dest=RA, srcs=(SP,), imm=-1)
        emit(Opcode.LD, dest=FP, srcs=(SP,), imm=-2)
        emit(Opcode.JR, srcs=(RA,))
        self._function = None

    # -- statements -------------------------------------------------------------

    def _generate_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self._generate_statement(statement)

    def _generate_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            self._generate_block(statement)
        elif isinstance(statement, ast.LocalDecl):
            if statement.init is not None:
                self._store_scalar(statement.name, statement.init, statement.line)
        elif isinstance(statement, ast.Assign):
            self._generate_assign(statement)
        elif isinstance(statement, ast.ExprStmt):
            register = self._generate_expr(statement.expr)
            if register is not None:
                self._temps.free(register)
        elif isinstance(statement, ast.If):
            self._generate_if(statement)
        elif isinstance(statement, ast.While):
            self._generate_while(statement)
        elif isinstance(statement, ast.For):
            self._generate_for(statement)
        elif isinstance(statement, ast.Return):
            self._generate_return(statement)
        elif isinstance(statement, ast.Break):
            self._emitter.emit(Opcode.JMP, target=self._break_labels[-1])
        elif isinstance(statement, ast.Continue):
            self._emitter.emit(Opcode.JMP, target=self._continue_labels[-1])
        else:  # pragma: no cover - statement kinds are closed
            raise CompileError(f"internal: unknown statement {statement!r}")

    def _generate_assign(self, statement: ast.Assign) -> None:
        target = statement.target
        if isinstance(target, ast.VarRef):
            self._store_scalar(target.name, statement.value, statement.line)
            return
        # Array element.
        array = self._info.globals[target.name]
        assert isinstance(array, GlobalArray)
        index = self._require_reg(self._generate_expr(target.index), target.line)
        value = self._require_reg(self._generate_expr(statement.value), statement.line)
        store = Opcode.FST if array.type is ast.Type.FLOAT else Opcode.ST
        self._emitter.emit(store, srcs=(value, index), imm=array.base_address)
        self._temps.free(value)
        self._temps.free(index)

    def _store_scalar(self, name: str, value: ast.Expr, line: int) -> None:
        register = self._require_reg(self._generate_expr(value), line)
        symbol = self._lookup(name, line)
        opcode, base, offset = self._scalar_slot(symbol, for_store=True)
        self._emitter.emit(opcode, srcs=(register, base), imm=offset)
        self._temps.free(register)

    def _generate_if(self, statement: ast.If) -> None:
        emit = self._emitter.emit
        else_label = self._emitter.new_label("else")
        end_label = self._emitter.new_label("endif")
        cond = self._require_reg(self._generate_expr(statement.cond), statement.line)
        emit(Opcode.BEQZ, srcs=(cond,), target=else_label if statement.else_body else end_label)
        self._temps.free(cond)
        self._generate_block(statement.then_body)
        if statement.else_body is not None:
            emit(Opcode.JMP, target=end_label)
            self._emitter.mark(else_label)
            self._generate_block(statement.else_body)
        self._emitter.mark(end_label)

    def _generate_while(self, statement: ast.While) -> None:
        emit = self._emitter.emit
        head = self._emitter.new_label("while")
        end = self._emitter.new_label("endwhile")
        self._emitter.mark(head)
        cond = self._require_reg(self._generate_expr(statement.cond), statement.line)
        emit(Opcode.BEQZ, srcs=(cond,), target=end)
        self._temps.free(cond)
        self._break_labels.append(end)
        self._continue_labels.append(head)
        self._generate_block(statement.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        emit(Opcode.JMP, target=head)
        self._emitter.mark(end)

    def _generate_for(self, statement: ast.For) -> None:
        emit = self._emitter.emit
        head = self._emitter.new_label("for")
        step_label = self._emitter.new_label("forstep")
        end = self._emitter.new_label("endfor")
        if statement.init is not None:
            self._generate_statement(statement.init)
        self._emitter.mark(head)
        if statement.cond is not None:
            cond = self._require_reg(self._generate_expr(statement.cond), statement.line)
            emit(Opcode.BEQZ, srcs=(cond,), target=end)
            self._temps.free(cond)
        self._break_labels.append(end)
        self._continue_labels.append(step_label)
        self._generate_block(statement.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self._emitter.mark(step_label)
        if statement.step is not None:
            self._generate_statement(statement.step)
        emit(Opcode.JMP, target=head)
        self._emitter.mark(end)

    def _generate_return(self, statement: ast.Return) -> None:
        if statement.value is not None:
            register = self._require_reg(
                self._generate_expr(statement.value), statement.line
            )
            self._emitter.emit(Opcode.MOV, dest=RV, srcs=(register,))
            self._temps.free(register)
        self._emitter.emit(Opcode.JMP, target=self._epilogue_label)

    # -- expressions --------------------------------------------------------------

    def _generate_expr(self, expr: ast.Expr) -> Optional[int]:
        """Generate code for ``expr``; return the temp holding its value.

        Returns ``None`` only for void calls.
        """
        if isinstance(expr, ast.IntLiteral):
            register = self._temps.alloc(expr.line)
            self._emitter.emit(Opcode.LI, dest=register, imm=expr.value)
            return register
        if isinstance(expr, ast.FloatLiteral):
            register = self._temps.alloc(expr.line)
            self._emitter.emit(Opcode.FLI, dest=register, imm=float(expr.value))
            return register
        if isinstance(expr, ast.VarRef):
            return self._generate_var_ref(expr)
        if isinstance(expr, ast.IndexRef):
            return self._generate_index_ref(expr)
        if isinstance(expr, ast.Unary):
            return self._generate_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._generate_binary(expr)
        if isinstance(expr, ast.Call):
            return self._generate_call(expr)
        raise CompileError(f"internal: unknown expression {expr!r}", expr.line)

    def _generate_var_ref(self, expr: ast.VarRef) -> int:
        symbol = self._lookup(expr.name, expr.line)
        opcode, base, offset = self._scalar_slot(symbol, for_store=False)
        register = self._temps.alloc(expr.line)
        self._emitter.emit(opcode, dest=register, srcs=(base,), imm=offset)
        return register

    def _generate_index_ref(self, expr: ast.IndexRef) -> int:
        array = self._info.globals[expr.name]
        assert isinstance(array, GlobalArray)
        index = self._require_reg(self._generate_expr(expr.index), expr.line)
        load = Opcode.FLD if array.type is ast.Type.FLOAT else Opcode.LD
        self._emitter.emit(load, dest=index, srcs=(index,), imm=array.base_address)
        return index

    def _generate_unary(self, expr: ast.Unary) -> int:
        operand_type = expr.operand.type
        register = self._require_reg(self._generate_expr(expr.operand), expr.line)
        if expr.op == "-":
            opcode = Opcode.FNEG if expr.type is ast.Type.FLOAT else Opcode.NEG
            self._emitter.emit(opcode, dest=register, srcs=(register,))
        elif expr.op == "!":
            self._emitter.emit(Opcode.NOT, dest=register, srcs=(register,))
        elif expr.op == "(int)":
            if operand_type is ast.Type.FLOAT:
                self._emitter.emit(Opcode.CVTFI, dest=register, srcs=(register,))
        elif expr.op == "(float)":
            if operand_type is ast.Type.INT:
                self._emitter.emit(Opcode.CVTIF, dest=register, srcs=(register,))
        else:  # pragma: no cover - operator set is closed
            raise CompileError(f"internal: unary {expr.op!r}", expr.line)
        return register

    def _generate_binary(self, expr: ast.Binary) -> int:
        if expr.op in ("&&", "||"):
            return self._generate_short_circuit(expr)
        operand_type = expr.left.type
        if operand_type is ast.Type.FLOAT:
            return self._generate_float_binary(expr)
        return self._generate_int_binary(expr)

    def _generate_int_binary(self, expr: ast.Binary) -> int:
        emit = self._emitter.emit
        op = expr.op
        left, right = expr.left, expr.right
        # Immediate form when one side is a literal.
        if isinstance(right, ast.IntLiteral) and op in _INT_IMMEDIATE:
            register = self._require_reg(self._generate_expr(left), expr.line)
            emit(_INT_IMMEDIATE[op], dest=register, srcs=(register,), imm=right.value)
            return register
        if (
            isinstance(left, ast.IntLiteral)
            and op in _INT_IMMEDIATE
            and op in _COMMUTATIVE
        ):
            register = self._require_reg(self._generate_expr(right), expr.line)
            emit(_INT_IMMEDIATE[op], dest=register, srcs=(register,), imm=left.value)
            return register
        if op in (">", ">="):
            # a > b  ==  b < a ;  a >= b  ==  b <= a
            swapped = Opcode.SLT if op == ">" else Opcode.SLE
            left_reg = self._require_reg(self._generate_expr(left), expr.line)
            right_reg = self._require_reg(self._generate_expr(right), expr.line)
            emit(swapped, dest=left_reg, srcs=(right_reg, left_reg))
            self._temps.free(right_reg)
            return left_reg
        opcode = _INT_BINARY[op]
        left_reg = self._require_reg(self._generate_expr(left), expr.line)
        right_reg = self._require_reg(self._generate_expr(right), expr.line)
        emit(opcode, dest=left_reg, srcs=(left_reg, right_reg))
        self._temps.free(right_reg)
        return left_reg

    def _generate_float_binary(self, expr: ast.Binary) -> int:
        emit = self._emitter.emit
        op = expr.op
        if op in (">", ">="):
            swapped = Opcode.FSLT if op == ">" else Opcode.FSLE
            left_reg = self._require_reg(self._generate_expr(expr.left), expr.line)
            right_reg = self._require_reg(self._generate_expr(expr.right), expr.line)
            emit(swapped, dest=left_reg, srcs=(right_reg, left_reg))
            self._temps.free(right_reg)
            return left_reg
        opcode = _FLOAT_BINARY[op]
        left_reg = self._require_reg(self._generate_expr(expr.left), expr.line)
        right_reg = self._require_reg(self._generate_expr(expr.right), expr.line)
        emit(opcode, dest=left_reg, srcs=(left_reg, right_reg))
        self._temps.free(right_reg)
        return left_reg

    def _generate_short_circuit(self, expr: ast.Binary) -> int:
        emit = self._emitter.emit
        end = self._emitter.new_label("sc")
        register = self._require_reg(self._generate_expr(expr.left), expr.line)
        emit(Opcode.SNEI, dest=register, srcs=(register,), imm=0)
        branch = Opcode.BEQZ if expr.op == "&&" else Opcode.BNEZ
        emit(branch, srcs=(register,), target=end)
        right = self._require_reg(self._generate_expr(expr.right), expr.line)
        emit(Opcode.SNEI, dest=right, srcs=(right,), imm=0)
        emit(Opcode.MOV, dest=register, srcs=(right,))
        self._temps.free(right)
        self._emitter.mark(end)
        return register

    # -- calls ------------------------------------------------------------------

    def _generate_call(self, expr: ast.Call) -> Optional[int]:
        if expr.name in BUILTINS:
            return self._generate_builtin(expr)
        emit = self._emitter.emit
        nargs = len(expr.args)
        # Caller-save every live temporary first.  Temps stay valid while
        # the arguments are evaluated (any nested call performs its own
        # save/restore), so spilling here keeps sp fixed between the
        # argument block and the call — the callee's fp-relative parameter
        # offsets depend on that.
        live = self._temps.live
        for slot, register in enumerate(live):
            emit(Opcode.ST, srcs=(register, SP), imm=-(slot + 1))
        if live:
            emit(Opcode.SUBI, dest=SP, srcs=(SP,), imm=len(live))
        if nargs:
            emit(Opcode.SUBI, dest=SP, srcs=(SP,), imm=nargs)
        for position, arg in enumerate(expr.args):
            register = self._require_reg(self._generate_expr(arg), expr.line)
            store = Opcode.FST if arg.type is ast.Type.FLOAT else Opcode.ST
            emit(store, srcs=(register, SP), imm=nargs - 1 - position)
            self._temps.free(register)
        emit(Opcode.CALL, target=expr.name)
        if nargs:
            emit(Opcode.ADDI, dest=SP, srcs=(SP,), imm=nargs)
        if live:
            emit(Opcode.ADDI, dest=SP, srcs=(SP,), imm=len(live))
        for slot, register in enumerate(live):
            emit(Opcode.LD, dest=register, srcs=(SP,), imm=-(slot + 1))
        callee = self._info.functions[expr.name]
        if callee.return_type is ast.Type.VOID:
            return None
        register = self._temps.alloc(expr.line)
        move = Opcode.FMOV if callee.return_type is ast.Type.FLOAT else Opcode.MOV
        emit(move, dest=register, srcs=(RV,))
        return register

    def _generate_builtin(self, expr: ast.Call) -> Optional[int]:
        emit = self._emitter.emit
        if expr.name == "in":
            register = self._temps.alloc(expr.line)
            emit(Opcode.IN, dest=register)
            return register
        if expr.name == "fin":
            register = self._temps.alloc(expr.line)
            emit(Opcode.FIN, dest=register)
            return register
        if expr.name == "out":
            register = self._require_reg(self._generate_expr(expr.args[0]), expr.line)
            emit(Opcode.OUT, srcs=(register,))
            self._temps.free(register)
            return None
        if expr.name == "phase":
            argument = expr.args[0]
            if not isinstance(argument, ast.IntLiteral):
                raise SemanticError(
                    "phase() requires a constant phase number", expr.line
                )
            emit(Opcode.PHASE, imm=argument.value)
            return None
        raise CompileError(f"internal: builtin {expr.name!r}", expr.line)

    # -- helpers ---------------------------------------------------------------

    def _lookup(self, name: str, line: int):
        info = self._function
        assert info is not None
        if name in info.locals:
            return info.locals[name]
        if name in info.params:
            return info.params[name]
        if name in self._info.globals:
            return self._info.globals[name]
        raise CompileError(f"internal: unknown symbol {name!r}", line)

    def _scalar_slot(self, symbol, for_store: bool) -> Tuple[Opcode, int, int]:
        """Return (opcode, base register, offset) addressing a scalar."""
        if isinstance(symbol, GlobalScalar):
            is_float = symbol.type is ast.Type.FLOAT
            base, offset = GP, symbol.address
        elif isinstance(symbol, LocalVar):
            is_float = symbol.type is ast.Type.FLOAT
            base, offset = FP, -(3 + symbol.index)
        elif isinstance(symbol, ParamVar):
            info = self._function
            assert info is not None
            is_float = symbol.type is ast.Type.FLOAT
            base, offset = FP, len(info.params) - 1 - symbol.index
        else:
            raise CompileError(f"internal: not a scalar: {symbol!r}")
        if for_store:
            return (Opcode.FST if is_float else Opcode.ST, base, offset)
        return (Opcode.FLD if is_float else Opcode.LD, base, offset)

    @staticmethod
    def _require_reg(register: Optional[int], line: int) -> int:
        if register is None:
            raise SemanticError("void value used in an expression", line)
        return register


def generate(
    info: ProgramInfo, name: str = "<minic>", optimize: bool = True
) -> Program:
    """Generate a Program from analyzed mini-C."""
    return CodeGenerator(info, name=name, optimize=optimize).generate()
