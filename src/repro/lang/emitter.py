"""Instruction-stream emitter with symbolic labels.

The code generator emits a *stream* of items — pending instructions and
label marks.  Labels are stream items (not addresses), so the peephole
optimizer can delete or rewrite instructions freely; addresses are assigned
only at finalization.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from ..isa import Instruction, Number, Opcode, build_program, Program
from .errors import CompileError


@dataclasses.dataclass
class PendingInstruction:
    """A mutable instruction whose target may be a symbolic label."""

    opcode: Opcode
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: Optional[Number] = None
    target: Optional[Union[int, str]] = None


@dataclasses.dataclass(frozen=True)
class LabelMark:
    """Marks the position of a label in the stream."""

    name: str


StreamItem = Union[PendingInstruction, LabelMark]


class Emitter:
    """Accumulates the instruction stream and resolves it into a Program."""

    def __init__(self) -> None:
        self.stream: List[StreamItem] = []
        self._label_counter = 0

    def new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f".{hint}{self._label_counter}"

    def mark(self, label: str) -> None:
        self.stream.append(LabelMark(label))

    def emit(
        self,
        opcode: Opcode,
        dest: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        imm: Optional[Number] = None,
        target: Optional[Union[int, str]] = None,
    ) -> PendingInstruction:
        instruction = PendingInstruction(opcode, dest, srcs, imm, target)
        self.stream.append(instruction)
        return instruction

    def finalize(
        self,
        data: Dict[int, Number],
        symbols: Dict[str, int],
        name: str,
    ) -> Program:
        """Assign addresses, resolve labels and build the Program.

        Labels that fall at the very end of the stream resolve to the final
        instruction (functions always end with an epilogue, so this arises
        only for degenerate streams).
        """
        addresses: Dict[str, int] = {}
        address = 0
        for item in self.stream:
            if isinstance(item, LabelMark):
                addresses[item.name] = address
            else:
                address += 1
        code_size = address
        instructions: List[Instruction] = []
        for item in self.stream:
            if isinstance(item, LabelMark):
                continue
            target = item.target
            if isinstance(target, str):
                if target not in addresses:
                    raise CompileError(f"internal: unresolved label {target!r}")
                target = addresses[target]
                if target >= code_size:
                    target = code_size - 1
            instructions.append(
                Instruction(
                    opcode=item.opcode,
                    dest=item.dest,
                    srcs=item.srcs,
                    imm=item.imm,
                    target=target,
                )
            )
        public_labels = {
            label: addr for label, addr in addresses.items() if not label.startswith(".")
        }
        return build_program(
            instructions, data=data, symbols=symbols, labels=public_labels, name=name
        )
