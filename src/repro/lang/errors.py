"""Compilation errors for the mini-C front end."""

from __future__ import annotations


class CompileError(ValueError):
    """Base class for all mini-C compilation failures."""

    def __init__(self, message: str, line: int = 0) -> None:
        location = f"line {line}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line


class LexError(CompileError):
    """Invalid character sequence in the source text."""


class ParseError(CompileError):
    """The token stream does not match the grammar."""


class SemanticError(CompileError):
    """The program is grammatical but ill-typed or ill-formed."""
