"""Hand-written lexer for mini-C."""

from __future__ import annotations

from typing import List

from .errors import LexError
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind


def tokenize(source: str) -> List[Token]:
    """Split ``source`` into tokens, ending with an EOF token.

    Supports ``//`` line comments and ``/* ... */`` block comments, decimal
    and hexadecimal integer literals, float literals (``1.5``, ``2e3``,
    ``1.5e-2``) and character literals (``'a'``, which lex as the integer
    code point, C-style).

    Raises:
        LexError: on any unrecognized character sequence.
    """
    tokens: List[Token] = []
    line = 1
    position = 0
    length = len(source)

    while position < length:
        char = source[position]
        if char == "\n":
            line += 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end < 0 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", position, end)
            position = end + 2
            continue
        if char == "'":
            token, position = _lex_char(source, position, line)
            tokens.append(token)
            continue
        if char.isdigit() or (
            char == "." and position + 1 < length and source[position + 1].isdigit()
        ):
            token, position = _lex_number(source, position, line)
            tokens.append(token)
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (
                source[position].isalnum() or source[position] == "_"
            ):
                position += 1
            text = source[start:position]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
            tokens.append(Token(kind, text, line))
            continue
        for punct in PUNCTUATORS:
            if source.startswith(punct, position):
                tokens.append(Token(TokenKind.PUNCT, punct, line))
                position += len(punct)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line)

    tokens.append(Token(TokenKind.EOF, "", line))
    return tokens


def _lex_char(source: str, position: int, line: int) -> tuple[Token, int]:
    """Lex a character literal starting at the opening quote."""
    cursor = position + 1
    if cursor >= len(source):
        raise LexError("unterminated character literal", line)
    char = source[cursor]
    if char == "\\":
        cursor += 1
        if cursor >= len(source):
            raise LexError("unterminated character literal", line)
        escapes = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'"}
        if source[cursor] not in escapes:
            raise LexError(f"unknown escape \\{source[cursor]}", line)
        char = escapes[source[cursor]]
    cursor += 1
    if cursor >= len(source) or source[cursor] != "'":
        raise LexError("unterminated character literal", line)
    return Token(TokenKind.INT_LITERAL, ord(char), line), cursor + 1


def _lex_number(source: str, position: int, line: int) -> tuple[Token, int]:
    """Lex an integer or float literal starting at ``position``."""
    length = len(source)
    start = position
    if source.startswith(("0x", "0X"), position):
        position += 2
        while position < length and source[position] in "0123456789abcdefABCDEF":
            position += 1
        text = source[start:position]
        if len(text) == 2:
            raise LexError("malformed hex literal", line)
        return Token(TokenKind.INT_LITERAL, int(text, 16), line), position

    is_float = False
    while position < length and source[position].isdigit():
        position += 1
    if position < length and source[position] == ".":
        is_float = True
        position += 1
        while position < length and source[position].isdigit():
            position += 1
    if position < length and source[position] in "eE":
        is_float = True
        position += 1
        if position < length and source[position] in "+-":
            position += 1
        digits_start = position
        while position < length and source[position].isdigit():
            position += 1
        if position == digits_start:
            raise LexError("malformed exponent", line)
    text = source[start:position]
    if is_float:
        return Token(TokenKind.FLOAT_LITERAL, float(text), line), position
    return Token(TokenKind.INT_LITERAL, int(text), line), position
