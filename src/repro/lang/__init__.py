"""Mini-C: the reproduction's compiler substrate (the gcc 2.7.2 stand-in).

A small C-like language — ``int``/``float`` scalars, global arrays,
functions, loops, the ``in``/``fin``/``out``/``phase`` environment
builtins — compiled to the reproduction ISA through a classic pipeline:
lexer, recursive-descent parser, semantic analysis, code generation, and a
constant-folding + peephole optimizer.

The 13 paper workloads in :mod:`repro.workloads` are written in this
language.
"""

from .astnodes import Type
from .compiler import compile_source
from .errors import CompileError, LexError, ParseError, SemanticError
from .lexer import tokenize
from .parser import parse
from .semantics import analyze

__all__ = [
    "CompileError",
    "LexError",
    "ParseError",
    "SemanticError",
    "Type",
    "analyze",
    "compile_source",
    "parse",
    "tokenize",
]
