"""Mini-C: the reproduction's compiler substrate (the gcc 2.7.2 stand-in).

A small C-like language — ``int``/``float`` scalars, global arrays,
functions, loops, the ``in``/``fin``/``out``/``phase`` environment
builtins — compiled to the reproduction ISA through a classic pipeline:
lexer, recursive-descent parser, semantic analysis, code generation, and a
constant-folding + peephole optimizer.

The 13 paper workloads in :mod:`repro.workloads` are written in this
language.
"""

from .astnodes import Type
from .compiler import compile_source
from .errors import CompileError, LexError, ParseError, SemanticError
from .lexer import tokenize
from .parser import parse
from .semantics import analyze
from .tokens import KEYWORDS

#: Names a generated program may not use as identifiers: the language
#: keywords plus the environment builtins.  The corpus generator
#: (:mod:`repro.workloads.corpus`) filters its identifier pool against
#: this set so grammar productions can never emit a colliding name.
RESERVED_NAMES = frozenset(KEYWORDS) | {"in", "fin", "out", "phase", "main"}


def check_source(source: str) -> None:
    """Validate mini-C ``source`` through the compiler front half.

    Runs lexing, parsing and semantic analysis — everything that can
    reject a program — without code generation.  Raises
    :class:`CompileError` (or a subclass) on any malformed program;
    returns ``None`` when the source is well-formed.  This is the cheap
    validity hook the generated-workload property tests lean on.
    """
    analyze(parse(source))


__all__ = [
    "CompileError",
    "KEYWORDS",
    "LexError",
    "ParseError",
    "RESERVED_NAMES",
    "SemanticError",
    "Type",
    "analyze",
    "check_source",
    "compile_source",
    "parse",
    "tokenize",
]
