"""Abstract syntax tree for mini-C.

All nodes are plain dataclasses; the semantic pass (:mod:`.semantics`)
decorates expression nodes with an inferred ``type`` attribute rather than
rebuilding the tree.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Sequence, Tuple, Union


class Type(enum.Enum):
    """The mini-C value types."""

    INT = "int"
    FLOAT = "float"
    VOID = "void"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Type.{self.name}"


@dataclasses.dataclass
class Node:
    """Base class carrying the source line for diagnostics."""

    line: int = dataclasses.field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Expr(Node):
    """Base class for expressions; ``type`` is set by the semantic pass."""

    type: Optional[Type] = dataclasses.field(default=None, kw_only=True, compare=False)


@dataclasses.dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclasses.dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclasses.dataclass
class VarRef(Expr):
    """A scalar variable reference (global, local or parameter)."""

    name: str = ""


@dataclasses.dataclass
class IndexRef(Expr):
    """An array element reference ``name[index]``."""

    name: str = ""
    index: Expr = None  # type: ignore[assignment]


@dataclasses.dataclass
class Unary(Expr):
    """``-x``, ``!x`` or a cast ``(int)x`` / ``(float)x``."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclasses.dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclasses.dataclass
class Call(Expr):
    """A function call; also covers the builtins ``in``/``fin``/``out``/``phase``."""

    name: str = ""
    args: List[Expr] = dataclasses.field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Stmt(Node):
    pass


Target = Union[VarRef, IndexRef]


@dataclasses.dataclass
class Assign(Stmt):
    target: Target = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclasses.dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclasses.dataclass
class LocalDecl(Stmt):
    """A local scalar declaration, optionally initialized."""

    var_type: Type = Type.INT
    name: str = ""
    init: Optional[Expr] = None


@dataclasses.dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: "Block" = None  # type: ignore[assignment]
    else_body: Optional["Block"] = None


@dataclasses.dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: "Block" = None  # type: ignore[assignment]


@dataclasses.dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: "Block" = None  # type: ignore[assignment]


@dataclasses.dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclasses.dataclass
class Break(Stmt):
    pass


@dataclasses.dataclass
class Continue(Stmt):
    pass


@dataclasses.dataclass
class Block(Stmt):
    statements: List[Stmt] = dataclasses.field(default_factory=list)


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclasses.dataclass
class GlobalDecl(Node):
    """A global scalar (``size is None``) or array declaration."""

    var_type: Type = Type.INT
    name: str = ""
    size: Optional[int] = None
    init: Sequence[Union[int, float]] = ()


@dataclasses.dataclass
class FunctionDecl(Node):
    return_type: Type = Type.VOID
    name: str = ""
    params: List[Tuple[Type, str]] = dataclasses.field(default_factory=list)
    body: Block = None  # type: ignore[assignment]


@dataclasses.dataclass
class TranslationUnit(Node):
    """A whole mini-C source file."""

    globals: List[GlobalDecl] = dataclasses.field(default_factory=list)
    functions: List[FunctionDecl] = dataclasses.field(default_factory=list)
