"""The benchmark suite: 13 SPEC95-idiom workloads written in mini-C.

Integer suite (paper Table 4.1 / Figure 2.2): 099.go, 124.m88ksim,
126.gcc, 129.compress, 130.li, 132.ijpeg, 134.perl, 147.vortex.
Floating-point suite (Figure 2.2): 101.tomcatv, 102.swim, 103.su2cor,
104.hydro2d, 107.mgrid — each marks the paper's initialization
(``phase(1)``) and computation (``phase(2)``) execution phases.

Every workload ships six deterministic input sets: five training inputs
(the paper's n=5 different runs) and one held-out test input used for all
evaluation experiments.
"""

from .base import REGISTRY, TEST_INDEX, TRAINING_RUNS, Workload, WorkloadRegistry
from .corpus import (
    DEFAULT_MIX,
    IdiomMix,
    corpus_workload,
    generate_corpus,
    parse_mix,
    register_corpus,
)
from .inputs import Lcg, scaled, text_stream
from .programs import (
    compress,
    gcc,
    go,
    hydro2d,
    ijpeg,
    li,
    m88ksim,
    mgrid,
    perl,
    su2cor,
    swim,
    tomcatv,
    vortex,
)

for _module in (
    go,
    tomcatv,
    swim,
    su2cor,
    hydro2d,
    mgrid,
    m88ksim,
    gcc,
    compress,
    li,
    ijpeg,
    perl,
    vortex,
):
    REGISTRY.register(_module.WORKLOAD)

#: The nine benchmarks of the paper's Table 4.1 (Sections 4 and 5).
TABLE_4_1_NAMES = [
    "099.go",
    "124.m88ksim",
    "126.gcc",
    "129.compress",
    "130.li",
    "132.ijpeg",
    "134.perl",
    "147.vortex",
    "107.mgrid",
]


def get_workload(name: str) -> Workload:
    """Look up a workload by its SPEC-style name (e.g. ``"126.gcc"``)."""
    return REGISTRY.get(name)


def workload_names(suite: str | None = None) -> list[str]:
    """All registered workload names, optionally filtered by suite."""
    return REGISTRY.names(suite)


def all_workloads(suite: str | None = None) -> list[Workload]:
    """All registered workloads, optionally filtered by suite."""
    return REGISTRY.all(suite)


def table_4_1_workloads() -> list[Workload]:
    """The nine benchmarks used in the paper's Sections 4 and 5."""
    return [REGISTRY.get(name) for name in TABLE_4_1_NAMES]


__all__ = [
    "DEFAULT_MIX",
    "IdiomMix",
    "Lcg",
    "REGISTRY",
    "TABLE_4_1_NAMES",
    "TEST_INDEX",
    "TRAINING_RUNS",
    "Workload",
    "WorkloadRegistry",
    "all_workloads",
    "corpus_workload",
    "generate_corpus",
    "get_workload",
    "parse_mix",
    "register_corpus",
    "scaled",
    "table_4_1_workloads",
    "text_stream",
    "workload_names",
]
