"""Grammar-driven generation of seeded mini-C workloads.

The 13 hand-written workloads are a *suite*; fleet-scale questions —
does profile-guided classification transfer across a workload
*population*, how fast does sampled profiling degrade — need hundreds
of programs with controlled value-behaviour mixes.  This module grows
them from a grammar.

:class:`MiniCGrammar` is a productions-as-methods generator (in the
spirit of classic grammar-as-class parser toolkits): each ``p_*`` method
is one grammar production that emits a mini-C fragment, and every
choice — how many idiom blocks, which idiom, which constants — is drawn
from the repo's seeded :class:`~repro.workloads.inputs.Lcg`.  Nothing
depends on Python's ``random``, hash seeds or dict order, so the same
seed produces byte-identical source and input sets in every process
(the corpus property suite asserts this across ``PYTHONHASHSEED``
values).

The four idiom productions target the paper's value-behaviour classes:

``stride``
    affine induction chains stored through an array — the
    stride-predictable core of Figure 2.2's FP loops.
``table``
    fill a table once, then re-walk it — repeated loads with last-value
    locality.
``chain``
    a data-dependent LCG recurrence — the unpredictable tail.
``mixed``
    interleaved int/FP arithmetic seeded from a ``fin()`` parameter.

Each generated program is paired with a deterministic input generator
and wrapped in a normal :class:`~repro.workloads.base.Workload`, so
``run``/``trace``/``profile``/``experiments``/``fuse`` consume corpus
workloads exactly like the hand-written ones.  Generated programs
terminate by construction: every loop is bounded by the scaled
iteration parameter read from the input set or by a literal constant.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..lang import RESERVED_NAMES
from ..telemetry import get_registry
from .base import REGISTRY, Workload, WorkloadRegistry
from .inputs import Lcg, scaled

Number = Union[int, float]

#: The idiom kinds a mix weights, in canonical order.
IDIOM_KINDS = ("stride", "table", "chain", "mixed")


@dataclasses.dataclass(frozen=True)
class IdiomMix:
    """Relative weights of the four idiom productions.

    A weight of 0 removes the idiom from the draw entirely; the knobs
    therefore provably change the generated opcode histogram (a
    ``mixed``-free corpus contains no FP arithmetic at all).
    """

    stride: int = 1
    table: int = 1
    chain: int = 1
    mixed: int = 1

    def __post_init__(self) -> None:
        weights = self.weights()
        if any(weight < 0 for _, weight in weights):
            raise ValueError(f"idiom weights must be non-negative: {self}")
        if sum(weight for _, weight in weights) == 0:
            raise ValueError("at least one idiom weight must be positive")

    def weights(self) -> List[Tuple[str, int]]:
        """(kind, weight) pairs in canonical order."""
        return [(kind, getattr(self, kind)) for kind in IDIOM_KINDS]


#: The balanced default: every idiom equally likely.
DEFAULT_MIX = IdiomMix()


def parse_mix(text: str) -> IdiomMix:
    """Parse a ``stride=2,table=1,...`` CLI mix spec (omitted kinds = 1)."""
    values = {kind: 1 for kind in IDIOM_KINDS}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, raw = part.partition("=")
        name = name.strip()
        if name not in values or not _:
            raise ValueError(
                f"bad mix component {part!r} (expected kind=weight with kind "
                f"in {', '.join(IDIOM_KINDS)})"
            )
        try:
            values[name] = int(raw)
        except ValueError:
            raise ValueError(f"bad mix weight in {part!r}") from None
    return IdiomMix(**values)


#: What one prologue/block input read means for input-set generation.
#: ("iters",) scales with the run; ("int", low, high) and
#: ("float", lo_milli, hi_milli) draw per-set values from the set's RNG.
ReadSpec = Tuple


@dataclasses.dataclass
class GeneratedSource:
    """One generated program: source text plus its input protocol."""

    seed: int
    source: str
    idioms: Tuple[str, ...]
    reads: Tuple[ReadSpec, ...]
    base_iterations: int
    uses_float: bool


class MiniCGrammar:
    """Productions-as-methods mini-C program generator.

    Every ``p_*`` method is one grammar production: it draws its choices
    from the generator's seeded LCG, appends declarations and statements
    to the program under construction, and records any ``in()``/``fin()``
    reads it emits in the input protocol.  :meth:`p_program` is the start
    symbol.
    """

    #: Float literals are chosen from this closed pool, never formatted
    #: from computed floats, so source bytes cannot depend on float repr.
    FLOAT_LITERALS = ("0.25", "0.5", "0.75", "0.99", "1.25", "1.5")

    def __init__(self, seed: int, mix: IdiomMix = DEFAULT_MIX) -> None:
        self.seed = seed
        self.rng = Lcg(seed)
        self.mix = mix
        self.globals: List[str] = []
        self.declarations: List[str] = []
        self.body: List[str] = []
        self.reads: List[ReadSpec] = []
        self.idioms: List[str] = []
        self._counter = 0
        self.uses_float = False
        self.base_iterations = 0

    # -- helpers ------------------------------------------------------

    def fresh(self, stem: str) -> str:
        """A new identifier; stems are filtered against reserved names."""
        while True:
            name = f"{stem}{self._counter}"
            self._counter += 1
            if name not in RESERVED_NAMES:
                return name

    def pick(self, options: Sequence):
        """One seeded choice from a sequence."""
        return options[self.rng.below(len(options))]

    def pick_idiom(self) -> str:
        """One weighted idiom draw from the mix."""
        weights = self.mix.weights()
        total = sum(weight for _, weight in weights)
        ticket = self.rng.below(total)
        for kind, weight in weights:
            if ticket < weight:
                return kind
            ticket -= weight
        return weights[-1][0]  # unreachable; appeases the type checker

    def statement(self, text: str) -> None:
        self.body.append(f"  {text}")

    # -- productions --------------------------------------------------

    def p_program(self) -> GeneratedSource:
        """Start symbol: prologue, 2-4 idiom blocks, epilogue."""
        self.base_iterations = 40 + self.rng.below(81)  # 40..120
        self.p_prologue()
        block_count = 2 + self.rng.below(3)  # 2..4
        self.statement("phase(2);")
        for _ in range(block_count):
            kind = self.pick_idiom()
            self.idioms.append(kind)
            getattr(self, f"p_{kind}")()
        self.p_epilogue()
        lines = list(self.globals)
        if lines:
            lines.append("")
        lines.append("void main() {")
        lines.extend(self.declarations)
        lines.extend(self.body)
        lines.append("}")
        return GeneratedSource(
            seed=self.seed,
            source="\n".join(lines) + "\n",
            idioms=tuple(self.idioms),
            reads=tuple(self.reads),
            base_iterations=self.base_iterations,
            uses_float=self.uses_float,
        )

    def p_prologue(self) -> None:
        """Shared state: the scaled iteration count and the accumulator."""
        self.declarations.append("  int n;")
        self.declarations.append("  int acc;")
        self.statement("phase(1);")
        self.statement("n = in();")
        self.reads.append(("iters",))
        self.statement("acc = 0;")

    def p_epilogue(self) -> None:
        self.statement("out(acc);")

    def p_stride(self) -> None:
        """Affine induction chain stored through an array (predictable)."""
        array = self.fresh("grid")
        size = self.pick((32, 48, 64))
        start = self.fresh("base")
        index = self.fresh("i")
        stride = self.pick((2, 3, 5, 7))
        self.globals.append(f"int {array}[{size}];")
        self.declarations.append(f"  int {start};")
        self.declarations.append(f"  int {index};")
        self.statement(f"{start} = in();")
        self.reads.append(("int", 1, 64))
        self.statement(f"for ({index} = 0; {index} < n; {index} = {index} + 1) {{")
        self.statement(
            f"  {array}[{index} % {size}] = {start} + {index} * {stride};"
        )
        self.statement(f"  acc = acc + {array}[{index} % {size}];")
        self.statement("}")

    def p_table(self) -> None:
        """Fill a table once, then re-walk it (load reuse)."""
        array = self.fresh("tbl")
        size = self.pick((16, 24, 32))
        index = self.fresh("j")
        passes = self.fresh("r")
        pass_count = self.pick((2, 3))
        fill_a = self.pick((3, 5, 11))
        fill_b = self.pick((17, 29, 41))
        self.globals.append(f"int {array}[{size}];")
        self.declarations.append(f"  int {index};")
        self.declarations.append(f"  int {passes};")
        self.statement(
            f"for ({index} = 0; {index} < {size}; {index} = {index} + 1) {{"
        )
        self.statement(f"  {array}[{index}] = ({index} * {fill_a}) % {fill_b};")
        self.statement("}")
        self.statement(
            f"for ({passes} = 0; {passes} < {pass_count}; {passes} = {passes} + 1) {{"
        )
        self.statement(
            f"  for ({index} = 0; {index} < n; {index} = {index} + 1) {{"
        )
        self.statement(f"    acc = acc + {array}[{index} % {size}];")
        self.statement("  }")
        self.statement("}")

    def p_chain(self) -> None:
        """Data-dependent LCG recurrence (unpredictable)."""
        value = self.fresh("v")
        index = self.fresh("k")
        modulus = self.pick((9, 13, 31))
        self.declarations.append(f"  int {value};")
        self.declarations.append(f"  int {index};")
        self.statement(f"{value} = in();")
        self.reads.append(("int", 1, 4096))
        self.statement(f"for ({index} = 0; {index} < n; {index} = {index} + 1) {{")
        self.statement(f"  {value} = ({value} * 1103515245 + 12345) % 32768;")
        self.statement(f"  acc = acc + {value} % {modulus};")
        self.statement("}")

    def p_mixed(self) -> None:
        """Interleaved int/FP arithmetic from a ``fin()`` parameter."""
        factor = self.fresh("f")
        accumulator = self.fresh("facc")
        index = self.fresh("m")
        decay = self.pick(self.FLOAT_LITERALS)
        modulus = self.pick((5, 7, 11))
        self.uses_float = True
        self.declarations.append(f"  float {factor};")
        self.declarations.append(f"  float {accumulator};")
        self.declarations.append(f"  int {index};")
        self.statement(f"{factor} = fin();")
        self.reads.append(("float", 500, 1500))
        self.statement(f"{accumulator} = 0.0;")
        self.statement(f"for ({index} = 0; {index} < n; {index} = {index} + 1) {{")
        self.statement(
            f"  {accumulator} = {accumulator} * {decay} + (float){index} * {factor};"
        )
        self.statement(f"  acc = acc + (int){accumulator} % {modulus};")
        self.statement("}")
        self.statement(f"out({accumulator});")


# -- workload construction ---------------------------------------------------

#: Multiplier/offsets for deriving child and per-input-set seeds; odd
#: constants so distinct (seed, index) pairs land on distinct LCG states.
_SEED_MIX = 2654435761
_SET_MIX = 1013904223


def _derive_seed(seed: int, index: int) -> int:
    return (seed * _SEED_MIX + index * _SET_MIX + 1) % Lcg.MODULUS


def _make_inputs(
    seed: int, reads: Tuple[ReadSpec, ...], base_iterations: int
) -> Callable[[int, float], List[Number]]:
    """The deterministic input generator for one generated program.

    Input set ``index`` draws from ``Lcg`` seeded by (program seed,
    index), so training sets 0-4 and the held-out test set differ but
    are each stable across processes and Python versions.
    """

    def make(index: int, scale: float) -> List[Number]:
        rng = Lcg(_derive_seed(seed, index))
        values: List[Number] = []
        for spec in reads:
            if spec[0] == "iters":
                values.append(scaled(base_iterations, scale))
            elif spec[0] == "int":
                values.append(rng.in_range(spec[1], spec[2]))
            else:  # float, bounds in thousandths
                values.append(rng.in_range(spec[1], spec[2]) / 1000.0)
        return values

    return make


def corpus_workload(
    seed: int, mix: IdiomMix = DEFAULT_MIX, name: Optional[str] = None
) -> Workload:
    """Generate one seeded workload (source + input sets)."""
    generated = MiniCGrammar(seed, mix).p_program()
    return Workload(
        name=name or f"gen.{seed:010d}",
        suite="fp" if generated.uses_float else "int",
        description=(
            f"generated workload, seed {seed}, "
            f"idioms {'+'.join(generated.idioms)}"
        ),
        source=generated.source,
        make_inputs=_make_inputs(
            seed, generated.reads, generated.base_iterations
        ),
    )


def generate_corpus(
    seed: int,
    count: int,
    mix: IdiomMix = DEFAULT_MIX,
    name_prefix: str = "gen",
) -> List[Workload]:
    """Generate ``count`` workloads from one corpus seed.

    Workload ``i`` is named ``<prefix>.<seed>.<i>`` and generated from a
    child seed derived from ``(seed, i)``, so a corpus is fully
    reproducible from its ``(seed, count, mix)`` triple and any slice of
    it is stable under growing ``count``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    width = max(3, len(str(max(count - 1, 0))))
    telemetry = get_registry()
    started = time.perf_counter()
    workloads = [
        corpus_workload(
            _derive_seed(seed, index),
            mix,
            name=f"{name_prefix}.{seed}.{index:0{width}d}",
        )
        for index in range(count)
    ]
    if telemetry.enabled:
        telemetry.counter("corpus.programs").add(count)
        telemetry.timer("corpus.generate").add(time.perf_counter() - started)
    return workloads


def register_corpus(
    seed: int,
    count: int,
    mix: IdiomMix = DEFAULT_MIX,
    registry: Optional[WorkloadRegistry] = None,
    name_prefix: str = "gen",
) -> List[Workload]:
    """Generate a corpus and register it in ``registry`` (default global).

    Registered corpus workloads are indistinguishable from hand-written
    ones: ``get_workload``/``workload_names`` see them, and every
    consumer of the registry (CLI, experiments, service) can run them.
    """
    registry = registry if registry is not None else REGISTRY
    workloads = generate_corpus(seed, count, mix, name_prefix=name_prefix)
    for workload in workloads:
        registry.register(workload)
    return workloads


def opcode_histogram(program) -> Dict[str, int]:
    """Static opcode mnemonic -> count for a compiled program.

    The corpus property suite uses this to assert that idiom-mix knobs
    actually change what the generator emits.
    """
    histogram: Dict[str, int] = {}
    for instruction in program.instructions:
        mnemonic = instruction.opcode.value
        histogram[mnemonic] = histogram.get(mnemonic, 0) + 1
    return histogram


__all__ = [
    "DEFAULT_MIX",
    "IDIOM_KINDS",
    "IdiomMix",
    "MiniCGrammar",
    "corpus_workload",
    "generate_corpus",
    "opcode_histogram",
    "parse_mix",
    "register_corpus",
]
