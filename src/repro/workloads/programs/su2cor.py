"""103.su2cor stand-in: Monte-Carlo lattice updates plus correlations.

The SPEC original computes elementary-particle masses with quantum field
theory: Monte-Carlo sweeps over a lattice followed by correlation-function
measurements.  The stand-in alternates pseudo-random heat-bath-like
updates of a 2D lattice (data-dependent, poorly predictable values) with
displacement-correlation sums (regular strided reductions) — the
bimodal mix that gives su2cor its characteristic predictability split.
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled

SOURCE = """
// 103.su2cor stand-in: lattice Monte Carlo + correlation measurements.
float lattice[1600];     // up to 40x40
float correlations[32];
int n;
int rng_state;
int accepted;

int rng() {
    rng_state = (rng_state * 1103515245 + 12345) % 2147483648;
    return rng_state;
}

float uniform() {
    return (float)rng() / 2147483648.0;
}

float neighbor_action(int i, int j) {
    // Sum of the four periodic neighbours.
    int up;
    int down;
    int left;
    int right;
    up = i - 1; if (up < 0) { up = n - 1; }
    down = i + 1; if (down >= n) { down = 0; }
    left = j - 1; if (left < 0) { left = n - 1; }
    right = j + 1; if (right >= n) { right = 0; }
    return lattice[up * n + j] + lattice[down * n + j]
         + lattice[i * n + left] + lattice[i * n + right];
}

void monte_carlo_sweep(float beta) {
    // Metropolis-like update with a data-dependent accept test.
    int i;
    int j;
    int center;
    float proposal;
    float old_value;
    float action_old;
    float action_new;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            center = i * n + j;
            old_value = lattice[center];
            proposal = old_value + (uniform() - 0.5);
            action_old = -beta * old_value * neighbor_action(i, j)
                       + old_value * old_value;
            action_new = -beta * proposal * neighbor_action(i, j)
                       + proposal * proposal;
            if (action_new < action_old || uniform() < 0.2) {
                lattice[center] = proposal;
                accepted = accepted + 1;
            }
        }
    }
}

void measure_correlations(int max_displacement) {
    // correlation[d] = sum over sites of s(i,j) * s(i, j+d) (periodic).
    int d;
    int i;
    int j;
    int shifted;
    float total;
    for (d = 0; d < max_displacement; d = d + 1) {
        total = 0.0;
        for (i = 0; i < n; i = i + 1) {
            for (j = 0; j < n; j = j + 1) {
                shifted = j + d;
                if (shifted >= n) { shifted = shifted - n; }
                total = total + lattice[i * n + j] * lattice[i * n + shifted];
            }
        }
        correlations[d] = correlations[d] + total;
    }
}

float correlation_checksum(int max_displacement) {
    int d;
    float sum;
    sum = 0.0;
    for (d = 0; d < max_displacement; d = d + 1) {
        sum = sum + correlations[d] / (float)(d + 1);
    }
    return sum;
}

void main() {
    int i;
    int total;
    int sweeps;
    int s;
    int displacements;
    float beta;

    phase(1);
    n = in();
    sweeps = in();
    displacements = in();
    rng_state = in();
    beta = fin();
    total = n * n;
    for (i = 0; i < total; i = i + 1) {
        lattice[i] = fin();
    }
    for (i = 0; i < 32; i = i + 1) {
        correlations[i] = 0.0;
    }
    accepted = 0;

    measure_correlations(displacements);   // cold-lattice measurement (init)

    phase(2);
    for (s = 0; s < sweeps; s = s + 1) {
        monte_carlo_sweep(beta);
        if (s % 2 == 1) {
            measure_correlations(displacements);
        }
    }
    out(correlation_checksum(displacements));
    out(accepted);
}
"""

#: (lattice edge, sweeps, displacements, rng seed, init seed) per input set.
_CONFIGS = [
    (16, 3, 6, 1001, 51),
    (20, 2, 6, 1003, 52),
    (14, 4, 8, 1005, 53),
    (22, 2, 4, 1007, 54),
    (16, 3, 7, 1009, 55),
    (18, 3, 6, 1011, 56),  # held-out test input
]


def make_inputs(index: int, scale: float = 1.0) -> List[float]:
    edge, sweeps, displacements, rng_seed, init_seed = _CONFIGS[index % len(_CONFIGS)]
    sweeps = scaled(sweeps, scale, minimum=2)
    generator = Lcg(init_seed + 23 * index)
    stream: List[float] = [edge, sweeps, displacements, rng_seed + index, 0.35]
    stream.extend(generator.floats(edge * edge, -1.0, 1.0))
    return stream


WORKLOAD = Workload(
    name="103.su2cor",
    suite="fp",
    description="lattice Monte Carlo sweeps + correlation measurements",
    source=SOURCE,
    make_inputs=make_inputs,
)
