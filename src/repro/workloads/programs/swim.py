"""102.swim stand-in: shallow-water equations on a periodic grid.

The SPEC original solves the shallow-water equations with finite
differences.  The stand-in updates velocity (U, V) and pressure (P)
fields with neighbour stencils and periodic boundary wraparound, plus a
periodic time-smoothing pass — three-field FP stencils with modular index
arithmetic, like the original.
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled

SOURCE = """
// 102.swim stand-in: shallow-water stencils with periodic boundaries.
float field_u[1296];    // up to 36x36
float field_v[1296];
float field_p[1296];
float new_u[1296];
float new_v[1296];
float new_p[1296];
int n;

int wrap(int value) {
    if (value < 0) { return value + n; }
    if (value >= n) { return value - n; }
    return value;
}

int at(int i, int j) {
    return wrap(i) * n + wrap(j);
}

void timestep(float dt) {
    int i;
    int j;
    int center;
    float du;
    float dv;
    float dp;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            center = i * n + j;
            du = field_p[at(i, j - 1)] - field_p[at(i, j + 1)]
               + field_v[center] * 0.5;
            dv = field_p[at(i - 1, j)] - field_p[at(i + 1, j)]
               - field_u[center] * 0.5;
            dp = field_u[at(i, j - 1)] - field_u[at(i, j + 1)]
               + field_v[at(i - 1, j)] - field_v[at(i + 1, j)];
            new_u[center] = field_u[center] + dt * du;
            new_v[center] = field_v[center] + dt * dv;
            new_p[center] = field_p[center] - dt * dp * 0.25;
        }
    }
}

void commit_fields(float smoothing) {
    int i;
    int total;
    total = n * n;
    for (i = 0; i < total; i = i + 1) {
        field_u[i] = field_u[i] * smoothing + new_u[i] * (1.0 - smoothing);
        field_v[i] = field_v[i] * smoothing + new_v[i] * (1.0 - smoothing);
        field_p[i] = field_p[i] * smoothing + new_p[i] * (1.0 - smoothing);
    }
}

float total_energy() {
    int i;
    int total;
    float energy;
    total = n * n;
    energy = 0.0;
    for (i = 0; i < total; i = i + 1) {
        energy = energy + field_u[i] * field_u[i]
               + field_v[i] * field_v[i] + field_p[i] * field_p[i];
    }
    return energy;
}

void main() {
    int i;
    int total;
    int steps;
    int s;
    float dt;

    phase(1);
    n = in();
    steps = in();
    dt = fin();
    total = n * n;
    for (i = 0; i < total; i = i + 1) {
        field_u[i] = fin();
        field_v[i] = fin();
        field_p[i] = 1.0 + fin() * 0.1;
    }

    out(total_energy());   // initial-field checksum, still in init

    phase(2);
    for (s = 0; s < steps; s = s + 1) {
        timestep(dt);
        commit_fields(0.1);
    }
    out(total_energy());
}
"""

#: (grid edge, steps, seed) per input set.
_CONFIGS = [
    (20, 2, 901),
    (24, 1, 902),
    (16, 3, 903),
    (24, 2, 904),
    (20, 2, 905),
    (22, 2, 906),  # held-out test input
]


def make_inputs(index: int, scale: float = 1.0) -> List[float]:
    edge, steps, seed = _CONFIGS[index % len(_CONFIGS)]
    steps = scaled(steps, scale, minimum=1)
    generator = Lcg(seed + 11 * index)
    stream: List[float] = [edge, steps, 0.01]
    stream.extend(generator.floats(3 * edge * edge, -0.5, 0.5))
    return stream


WORKLOAD = Workload(
    name="102.swim",
    suite="fp",
    description="shallow-water stencils with periodic boundaries",
    source=SOURCE,
    make_inputs=make_inputs,
)
