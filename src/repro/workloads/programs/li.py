"""130.li stand-in: a Lisp interpreter over a cons-cell heap.

The SPEC original is XLISP.  The stand-in builds s-expressions in a
tagged cons-cell arena, then repeatedly evaluates expression trees with a
recursive evaluator (arithmetic forms, list primitives, conditionals) and
runs list utilities (reverse, map, sum) that churn through the heap —
pointer-chasing loads with mixed predictability plus a growing allocation
frontier (perfect strides), like the original.
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled

SOURCE = """
// 130.li stand-in: tagged cons-cell arena + recursive evaluator.
// Tags: 0 = cons (car/cdr are cell indices, -1 = nil), 1 = integer atom.
int tag[9000];
int car_[9000];
int cdr_[9000];
int heap_next;
int rng_state;
int eval_count;

int rng() {
    rng_state = (rng_state * 1103515245 + 12345) % 2147483648;
    return rng_state;
}

int cons(int head, int tail) {
    int cell;
    cell = heap_next;
    heap_next = heap_next + 1;
    tag[cell] = 0;
    car_[cell] = head;
    cdr_[cell] = tail;
    return cell;
}

int make_int(int value) {
    int cell;
    cell = heap_next;
    heap_next = heap_next + 1;
    tag[cell] = 1;
    car_[cell] = value;
    cdr_[cell] = -1;
    return cell;
}

int int_value(int cell) {
    return car_[cell];
}

int build_list(int length, int bound) {
    // A proper list of random integer atoms.
    int head;
    int i;
    head = -1;
    for (i = 0; i < length; i = i + 1) {
        head = cons(make_int(rng() % bound), head);
    }
    return head;
}

int list_length(int cell) {
    int count;
    count = 0;
    while (cell != -1) {
        count = count + 1;
        cell = cdr_[cell];
    }
    return count;
}

int list_sum(int cell) {
    int total;
    total = 0;
    while (cell != -1) {
        total = (total + int_value(car_[cell])) % 1000000007;
        cell = cdr_[cell];
    }
    return total;
}

int list_reverse(int cell) {
    int result;
    result = -1;
    while (cell != -1) {
        result = cons(car_[cell], result);
        cell = cdr_[cell];
    }
    return result;
}

int map_scale(int cell, int factor) {
    if (cell == -1) {
        return -1;
    }
    return cons(make_int((int_value(car_[cell]) * factor) % 65536),
                map_scale(cdr_[cell], factor));
}

int build_expr(int depth, int bound) {
    // Expression tree: (op left right) where op is 0 '+', 1 '-', 2 '*',
    // 3 'if>' (ternary via extra cdr).
    int op;
    int left;
    int right;
    if (depth <= 0) {
        return make_int(rng() % bound);
    }
    op = rng() % 4;
    left = build_expr(depth - 1, bound);
    right = build_expr(depth - 1, bound);
    return cons(make_int(op), cons(left, cons(right, -1)));
}

int eval(int cell) {
    int op;
    int left;
    int right;
    eval_count = eval_count + 1;
    if (tag[cell] == 1) {
        return int_value(cell);
    }
    op = int_value(car_[cell]);
    left = eval(car_[cdr_[cell]]);
    right = eval(car_[cdr_[cdr_[cell]]]);
    if (op == 0) { return (left + right) % 1000003; }
    if (op == 1) { return left - right; }
    if (op == 2) { return (left * right) % 1000003; }
    if (left > right) { return left; }
    return right;
}

void main() {
    int trees;
    int depth;
    int lists;
    int list_len;
    int i;
    int expr;
    int result;
    int work;

    rng_state = in();
    trees = in();
    depth = in();
    lists = in();
    list_len = in();
    heap_next = 0;
    eval_count = 0;
    result = 0;

    for (i = 0; i < trees; i = i + 1) {
        expr = build_expr(depth, 10000);
        result = (result * 31 + eval(expr)) % 1000000007;
        // Evaluate twice more: re-walking the same tree is where the
        // original's value locality comes from.
        result = (result + eval(expr)) % 1000000007;
        result = (result + eval(expr)) % 1000000007;
        heap_next = 0;   // arena GC: the whole tree is dead
    }
    out(result);

    work = 0;
    for (i = 0; i < lists; i = i + 1) {
        expr = build_list(list_len, 50000);
        work = (work + list_sum(expr)) % 1000000007;
        expr = list_reverse(expr);
        work = (work + list_sum(map_scale(expr, 3 + i))) % 1000000007;
        work = (work + list_length(expr)) % 1000000007;
        heap_next = 0;   // arena GC between transactions
    }
    out(work);
    out(eval_count);
    out(heap_next);
}
"""

#: (seed, trees, depth, lists, list length) per input set.
_CONFIGS = [
    (111, 7, 6, 8, 26),
    (222, 5, 7, 7, 30),
    (333, 10, 5, 9, 22),
    (444, 4, 7, 8, 26),
    (555, 8, 6, 7, 24),
    (666, 7, 6, 8, 27),  # held-out test input
]


def make_inputs(index: int, scale: float = 1.0) -> List[int]:
    seed, trees, depth, lists, list_len = _CONFIGS[index % len(_CONFIGS)]
    trees = scaled(trees, scale, minimum=2)
    lists = scaled(lists, scale, minimum=2)
    return [seed, trees, depth, lists, list_len]


WORKLOAD = Workload(
    name="130.li",
    suite="int",
    description="Lisp interpreter: cons arena, recursive eval, list utilities",
    source=SOURCE,
    make_inputs=make_inputs,
)
