"""104.hydro2d stand-in: hydrodynamic Navier-Stokes-style flux sweeps.

The SPEC original solves hydrodynamical equations computing galactic
jets.  The stand-in advances density/momentum fields with directional
flux-difference sweeps (x then y), applies reflective boundaries, and
adds artificial viscosity — several distinct FP loop nests per timestep
over four field arrays, like the original.
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled

SOURCE = """
// 104.hydro2d stand-in: directional flux sweeps over fluid fields.
float density[1296];    // up to 36x36
float moment_x[1296];
float moment_y[1296];
float flux[1296];
int n;

void sweep_x(float dt) {
    // Flux differences along rows.
    int i;
    int j;
    int center;
    float left_flux;
    float right_flux;
    for (i = 0; i < n; i = i + 1) {
        center = i * n + 1;
        for (j = 1; j < n - 1; j = j + 1) {
            left_flux = moment_x[center - 1] * density[center - 1];
            right_flux = moment_x[center + 1] * density[center + 1];
            flux[center] = (left_flux - right_flux) * 0.5;
            center = center + 1;
        }
    }
    for (i = 0; i < n; i = i + 1) {
        center = i * n + 1;
        for (j = 1; j < n - 1; j = j + 1) {
            density[center] = density[center] + dt * flux[center];
            if (density[center] < 0.01) { density[center] = 0.01; }
            center = center + 1;
        }
    }
}

void sweep_y(float dt) {
    // Flux differences along columns.
    int i;
    int j;
    int center;
    float down_flux;
    float up_flux;
    for (j = 0; j < n; j = j + 1) {
        for (i = 1; i < n - 1; i = i + 1) {
            center = i * n + j;
            down_flux = moment_y[center - n] * density[center - n];
            up_flux = moment_y[center + n] * density[center + n];
            flux[center] = (down_flux - up_flux) * 0.5;
        }
    }
    for (j = 0; j < n; j = j + 1) {
        for (i = 1; i < n - 1; i = i + 1) {
            center = i * n + j;
            density[center] = density[center] + dt * flux[center];
            if (density[center] < 0.01) { density[center] = 0.01; }
        }
    }
}

void update_momentum(float dt) {
    // Pressure gradient (density acts as pressure) accelerates the flow.
    int i;
    int j;
    int center;
    for (i = 1; i < n - 1; i = i + 1) {
        center = i * n + 1;
        for (j = 1; j < n - 1; j = j + 1) {
            moment_x[center] = moment_x[center]
                + dt * (density[center - 1] - density[center + 1]);
            moment_y[center] = moment_y[center]
                + dt * (density[center - n] - density[center + n]);
            center = center + 1;
        }
    }
}

void reflect_boundaries() {
    int k;
    for (k = 0; k < n; k = k + 1) {
        density[k] = density[k + n];
        density[(n - 1) * n + k] = density[(n - 2) * n + k];
        density[k * n] = density[k * n + 1];
        density[k * n + n - 1] = density[k * n + n - 2];
        moment_x[k * n] = -moment_x[k * n + 1];
        moment_x[k * n + n - 1] = -moment_x[k * n + n - 2];
        moment_y[k] = -moment_y[k + n];
        moment_y[(n - 1) * n + k] = -moment_y[(n - 2) * n + k];
    }
}

void viscosity(float nu) {
    int i;
    int j;
    int center;
    for (i = 1; i < n - 1; i = i + 1) {
        center = i * n + 1;
        for (j = 1; j < n - 1; j = j + 1) {
            moment_x[center] = moment_x[center] * (1.0 - nu)
                + nu * 0.25 * (moment_x[center - 1] + moment_x[center + 1]
                             + moment_x[center - n] + moment_x[center + n]);
            center = center + 1;
        }
    }
}

float mass_total() {
    int i;
    int total;
    float mass;
    total = n * n;
    mass = 0.0;
    for (i = 0; i < total; i = i + 1) {
        mass = mass + density[i];
    }
    return mass;
}

void main() {
    int i;
    int total;
    int steps;
    int s;
    float dt;

    phase(1);
    n = in();
    steps = in();
    dt = fin();
    total = n * n;
    for (i = 0; i < total; i = i + 1) {
        density[i] = 1.0 + fin();
        moment_x[i] = fin();
        moment_y[i] = fin();
        flux[i] = 0.0;
    }

    out(mass_total());   // initial-mass checksum, still in init

    phase(2);
    for (s = 0; s < steps; s = s + 1) {
        sweep_x(dt);
        sweep_y(dt);
        update_momentum(dt);
        viscosity(0.05);
        reflect_boundaries();
    }
    out(mass_total());
}
"""

#: (grid edge, steps, seed) per input set.
_CONFIGS = [
    (22, 3, 7001),
    (26, 2, 7002),
    (18, 4, 7003),
    (28, 2, 7004),
    (22, 3, 7005),
    (24, 3, 7006),  # held-out test input
]


def make_inputs(index: int, scale: float = 1.0) -> List[float]:
    edge, steps, seed = _CONFIGS[index % len(_CONFIGS)]
    steps = scaled(steps, scale, minimum=1)
    generator = Lcg(seed + 29 * index)
    stream: List[float] = [edge, steps, 0.02]
    stream.extend(generator.floats(3 * edge * edge, -0.25, 0.25))
    return stream


WORKLOAD = Workload(
    name="104.hydro2d",
    suite="fp",
    description="hydrodynamics: directional flux sweeps + viscosity",
    source=SOURCE,
    make_inputs=make_inputs,
)
