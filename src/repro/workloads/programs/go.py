"""099.go stand-in: game playing on a Go-like board.

The SPEC original plays Go.  The stand-in plays a simplified
territory game: it generates candidate moves, scores each with
liberty counting, influence maps and capture heuristics, and plays the
best-scoring move for alternating colors.  Control-heavy code with many
helper functions and data-dependent values — a large instruction working
set with mixed predictability, like the original.
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import scaled

SOURCE = """
// 099.go stand-in: heuristic move selection on a Go-like board.
int board[361];        // 0 empty, 1 black, 2 white
int influence[361];
int scratch[361];
int size;              // board edge (<= 19)
int cells;
int rng_state;
int stones_played;
int captures[3];

int rng() {
    rng_state = (rng_state * 1103515245 + 12345) % 2147483648;
    return rng_state;
}

int at(int row, int col) {
    return board[row * size + col];
}

int on_board(int row, int col) {
    return row >= 0 && row < size && col >= 0 && col < size;
}

int opponent(int color) {
    return 3 - color;
}

int neighbor_count(int point, int what) {
    // How many of the 4 neighbours hold `what` (0 = empty)?
    int row;
    int col;
    int count;
    row = point / size;
    col = point % size;
    count = 0;
    if (row > 0 && board[point - size] == what) { count = count + 1; }
    if (row < size - 1 && board[point + size] == what) { count = count + 1; }
    if (col > 0 && board[point - 1] == what) { count = count + 1; }
    if (col < size - 1 && board[point + 1] == what) { count = count + 1; }
    return count;
}

int pseudo_liberties(int point, int color) {
    // Depth-2 liberty estimate: empty neighbours of the stone plus empty
    // neighbours of adjacent same-colored stones.
    int row;
    int col;
    int total;
    int q;
    row = point / size;
    col = point % size;
    total = neighbor_count(point, 0);
    if (row > 0) {
        q = point - size;
        if (board[q] == color) { total = total + neighbor_count(q, 0); }
    }
    if (row < size - 1) {
        q = point + size;
        if (board[q] == color) { total = total + neighbor_count(q, 0); }
    }
    if (col > 0) {
        q = point - 1;
        if (board[q] == color) { total = total + neighbor_count(q, 0); }
    }
    if (col < size - 1) {
        q = point + 1;
        if (board[q] == color) { total = total + neighbor_count(q, 0); }
    }
    return total;
}

void spread_influence() {
    // One diffusion sweep: stones radiate +-64, decaying over neighbours.
    int point;
    int value;
    for (point = 0; point < cells; point = point + 1) {
        if (board[point] == 1) {
            scratch[point] = 64;
        } else {
            if (board[point] == 2) {
                scratch[point] = -64;
            } else {
                scratch[point] = 0;
            }
        }
    }
    for (point = 0; point < cells; point = point + 1) {
        value = scratch[point] * 4;
        if (point >= size) { value = value + scratch[point - size]; }
        if (point < cells - size) { value = value + scratch[point + size]; }
        if (point % size != 0) { value = value + scratch[point - 1]; }
        if (point % size != size - 1) { value = value + scratch[point + 1]; }
        influence[point] = (influence[point] + value) / 2;
    }
}

int capture_bonus(int point, int color) {
    // Reward moves that take the last liberty of an enemy neighbour.
    int enemy;
    int bonus;
    int row;
    int col;
    enemy = opponent(color);
    bonus = 0;
    row = point / size;
    col = point % size;
    if (row > 0 && board[point - size] == enemy
        && neighbor_count(point - size, 0) == 1) {
        bonus = bonus + 40;
    }
    if (row < size - 1 && board[point + size] == enemy
        && neighbor_count(point + size, 0) == 1) {
        bonus = bonus + 40;
    }
    if (col > 0 && board[point - 1] == enemy
        && neighbor_count(point - 1, 0) == 1) {
        bonus = bonus + 40;
    }
    if (col < size - 1 && board[point + 1] == enemy
        && neighbor_count(point + 1, 0) == 1) {
        bonus = bonus + 40;
    }
    return bonus;
}

int edge_penalty(int point) {
    int row;
    int col;
    int penalty;
    row = point / size;
    col = point % size;
    penalty = 0;
    if (row == 0 || row == size - 1) { penalty = penalty + 6; }
    if (col == 0 || col == size - 1) { penalty = penalty + 6; }
    return penalty;
}

int score_move(int point, int color) {
    int score;
    int lean;
    if (board[point] != 0) {
        return -1000000;
    }
    score = pseudo_liberties(point, color) * 5;
    score = score + capture_bonus(point, color);
    score = score - edge_penalty(point);
    lean = influence[point];
    if (color == 1) {
        score = score - lean / 8;
    } else {
        score = score + lean / 8;
    }
    score = score + neighbor_count(point, opponent(color)) * 3;
    return score;
}

void remove_captured(int color) {
    // Remove enemy stones left with zero empty neighbours (simplified).
    int point;
    int enemy;
    enemy = opponent(color);
    for (point = 0; point < cells; point = point + 1) {
        if (board[point] == enemy && neighbor_count(point, 0) == 0
            && pseudo_liberties(point, enemy) == 0) {
            board[point] = 0;
            captures[color] = captures[color] + 1;
        }
    }
}

int choose_move(int color, int candidates) {
    int best_point;
    int best_score;
    int trial;
    int point;
    int score;
    best_point = -1;
    best_score = -1000000;
    for (trial = 0; trial < candidates; trial = trial + 1) {
        point = rng() % cells;
        score = score_move(point, color);
        if (score > best_score) {
            best_score = score;
            best_point = point;
        }
    }
    return best_point;
}

void play_game(int moves, int candidates) {
    int turn;
    int color;
    int point;
    color = 1;
    for (turn = 0; turn < moves; turn = turn + 1) {
        point = choose_move(color, candidates);
        if (point >= 0 && board[point] == 0) {
            board[point] = color;
            stones_played = stones_played + 1;
            remove_captured(color);
        }
        spread_influence();
        color = opponent(color);
    }
}

int board_hash() {
    int point;
    int hash;
    hash = 0;
    for (point = 0; point < cells; point = point + 1) {
        hash = (hash * 131 + board[point] * 7 + influence[point] + 1000)
               % 1000000007;
    }
    return hash;
}

int territory_balance() {
    int point;
    int balance;
    balance = 0;
    for (point = 0; point < cells; point = point + 1) {
        if (board[point] == 1) { balance = balance + 2; }
        if (board[point] == 2) { balance = balance - 2; }
        if (board[point] == 0 && influence[point] > 8) { balance = balance + 1; }
        if (board[point] == 0 && influence[point] < -8) { balance = balance - 1; }
    }
    return balance;
}

void main() {
    int point;
    int moves;
    int candidates;
    size = in();
    cells = size * size;
    rng_state = in();
    moves = in();
    candidates = in();
    for (point = 0; point < cells; point = point + 1) {
        board[point] = 0;
        influence[point] = 0;
    }
    stones_played = 0;
    captures[1] = 0;
    captures[2] = 0;
    play_game(moves, candidates);
    out(territory_balance());
    out(stones_played);
    out(captures[1] * 100 + captures[2]);
    out(board_hash());
}
"""

#: (board size, moves, candidates per move, seed) per input set.
_CONFIGS = [
    (13, 9, 14, 4321),
    (19, 5, 12, 8765),
    (13, 10, 12, 2468),
    (9, 16, 20, 1357),
    (19, 4, 14, 9753),
    (13, 9, 13, 5151),  # held-out test input
]


def make_inputs(index: int, scale: float = 1.0) -> List[int]:
    size, moves, candidates, seed = _CONFIGS[index % len(_CONFIGS)]
    moves = scaled(moves, scale, minimum=4)
    return [size, seed, moves, candidates]


WORKLOAD = Workload(
    name="099.go",
    suite="int",
    description="heuristic move selection on a Go-like board",
    source=SOURCE,
    make_inputs=make_inputs,
)
