"""101.tomcatv stand-in: vectorized mesh generation.

The SPEC original generates a 2D mesh by iterating residual smoothing
over coordinate arrays.  The stand-in keeps X/Y coordinate grids, computes
second-difference residuals per interior point, and applies damped
corrections until the sweep budget is spent — two-array FP stencils with
data-dependent max-residual tracking, like the original.
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled

SOURCE = """
// 101.tomcatv stand-in: coordinate-mesh smoothing.
float mesh_x[1600];    // up to 40x40
float mesh_y[1600];
float res_x[1600];
float res_y[1600];
int n;
float max_residual;

void compute_residuals() {
    int i;
    int j;
    int center;
    float rx;
    float ry;
    max_residual = 0.0;
    for (i = 1; i < n - 1; i = i + 1) {
        center = i * n + 1;
        for (j = 1; j < n - 1; j = j + 1) {
            rx = mesh_x[center - 1] + mesh_x[center + 1]
               + mesh_x[center - n] + mesh_x[center + n]
               - 4.0 * mesh_x[center];
            ry = mesh_y[center - 1] + mesh_y[center + 1]
               + mesh_y[center - n] + mesh_y[center + n]
               - 4.0 * mesh_y[center];
            res_x[center] = rx;
            res_y[center] = ry;
            if (rx < 0.0) { rx = -rx; }
            if (ry < 0.0) { ry = -ry; }
            if (rx > max_residual) { max_residual = rx; }
            if (ry > max_residual) { max_residual = ry; }
            center = center + 1;
        }
    }
}

void apply_corrections(float damping) {
    int i;
    int j;
    int center;
    for (i = 1; i < n - 1; i = i + 1) {
        center = i * n + 1;
        for (j = 1; j < n - 1; j = j + 1) {
            mesh_x[center] = mesh_x[center] + damping * res_x[center];
            mesh_y[center] = mesh_y[center] + damping * res_y[center];
            center = center + 1;
        }
    }
}

float mesh_energy() {
    int i;
    int total;
    float energy;
    total = n * n;
    energy = 0.0;
    for (i = 0; i < total; i = i + 1) {
        energy = energy + mesh_x[i] * mesh_x[i] + mesh_y[i] * mesh_y[i];
    }
    return energy;
}

void main() {
    int i;
    int j;
    int total;
    int sweeps;
    int s;
    float damping;
    float jitter;

    phase(1);
    n = in();
    sweeps = in();
    damping = fin();
    total = n * n;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            jitter = fin();
            mesh_x[i * n + j] = (float)j + jitter;
            mesh_y[i * n + j] = (float)i - jitter;
        }
    }

    out(mesh_energy());   // initial-mesh checksum, still in init

    phase(2);
    for (s = 0; s < sweeps; s = s + 1) {
        compute_residuals();
        apply_corrections(damping);
    }
    out(mesh_energy());
    out(max_residual);
}
"""

#: (mesh edge, sweeps, seed) per input set.
_CONFIGS = [
    (28, 4, 801),
    (32, 3, 802),
    (24, 6, 803),
    (36, 2, 804),
    (28, 5, 805),
    (30, 4, 806),  # held-out test input
]


def make_inputs(index: int, scale: float = 1.0) -> List[float]:
    edge, sweeps, seed = _CONFIGS[index % len(_CONFIGS)]
    sweeps = scaled(sweeps, scale, minimum=2)
    generator = Lcg(seed + 7 * index)
    stream: List[float] = [edge, sweeps, 0.12]
    stream.extend(generator.floats(edge * edge, -0.3, 0.3))
    return stream


WORKLOAD = Workload(
    name="101.tomcatv",
    suite="fp",
    description="mesh generation: residual smoothing over coordinate grids",
    source=SOURCE,
    make_inputs=make_inputs,
)
