"""107.mgrid stand-in: multigrid relaxation of a 3D potential field.

The SPEC original is a multi-grid solver on a 3D potential field.  The
stand-in runs Jacobi-style relaxation sweeps over a flattened N^3 grid
with a 7-point stencil, plus a coarse-grid restriction/prolongation pair —
classic FP stride-heavy loops.  Like all FP workloads here, it marks the
paper's two execution phases: ``phase(1)`` while reading input data and
``phase(2)`` for the computation.
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled

SOURCE = """
// 107.mgrid stand-in: 7-point stencil relaxation + two-grid cycle.
float grid[4096];    // up to 16^3
float rhs[4096];
float coarse[512];   // up to 8^3
int n;               // fine-grid edge length
int nc;              // coarse-grid edge length

int idx(int i, int j, int k) {
    return (i * n + j) * n + k;
}

int cidx(int i, int j, int k) {
    return (i * nc + j) * nc + k;
}

void relax(float weight) {
    // Indices are maintained incrementally (hand-optimized, like the
    // Fortran original): the center index walks the k-row with stride 1,
    // the i-neighbours sit a plane (n*n) away, the j-neighbours a row away.
    int i;
    int j;
    int k;
    int center;
    int plane;
    float value;
    float neighbors;
    plane = n * n;
    for (i = 1; i < n - 1; i = i + 1) {
        for (j = 1; j < n - 1; j = j + 1) {
            center = (i * n + j) * n + 1;
            for (k = 1; k < n - 1; k = k + 1) {
                value = grid[center];
                neighbors = grid[center - plane] + grid[center + plane]
                          + grid[center - n] + grid[center + n]
                          + grid[center - 1] + grid[center + 1];
                grid[center] = (1.0 - weight) * value
                             + weight * (neighbors + rhs[center]) / 6.0;
                center = center + 1;
            }
        }
    }
}

void restrict_grid() {
    int i;
    int j;
    int k;
    for (i = 0; i < nc; i = i + 1) {
        for (j = 0; j < nc; j = j + 1) {
            for (k = 0; k < nc; k = k + 1) {
                coarse[cidx(i, j, k)] = grid[idx(2 * i, 2 * j, 2 * k)];
            }
        }
    }
}

void prolong_grid(float blend) {
    int i;
    int j;
    int k;
    for (i = 0; i < nc; i = i + 1) {
        for (j = 0; j < nc; j = j + 1) {
            for (k = 0; k < nc; k = k + 1) {
                grid[idx(2 * i, 2 * j, 2 * k)] =
                    grid[idx(2 * i, 2 * j, 2 * k)] + blend * coarse[cidx(i, j, k)];
            }
        }
    }
}

float norm() {
    int i;
    int total;
    float sum;
    total = n * n * n;
    sum = 0.0;
    for (i = 0; i < total; i = i + 1) {
        sum = sum + grid[i] * grid[i];
    }
    return sum;
}

void main() {
    int i;
    int total;
    int sweeps;
    int s;
    float weight;

    phase(1);
    n = in();
    nc = n / 2;
    sweeps = in();
    weight = fin();
    total = n * n * n;
    for (i = 0; i < total; i = i + 1) {
        rhs[i] = fin();
        grid[i] = 0.0;
    }

    out(norm());   // initial-field checksum, still in the init phase

    phase(2);
    for (s = 0; s < sweeps; s = s + 1) {
        relax(weight);
        if (s % 3 == 2) {
            restrict_grid();
            prolong_grid(0.25);
        }
    }
    out(norm());
}
"""

#: (edge length, sweeps, seed) per input set.
_CONFIGS = [
    (12, 4, 301),
    (14, 3, 302),
    (12, 5, 403),
    (10, 7, 404),
    (14, 2, 505),
    (12, 4, 606),  # held-out test input
]


def make_inputs(index: int, scale: float = 1.0) -> List[float]:
    edge, sweeps, seed = _CONFIGS[index % len(_CONFIGS)]
    sweeps = scaled(sweeps, scale, minimum=2)
    generator = Lcg(seed + 13 * index)
    stream: List[float] = [edge, sweeps, 0.8]
    stream.extend(generator.floats(edge**3, -1.0, 1.0))
    return stream


WORKLOAD = Workload(
    name="107.mgrid",
    suite="fp",
    description="3D multigrid potential-field relaxation (7-point stencil)",
    source=SOURCE,
    make_inputs=make_inputs,
)
