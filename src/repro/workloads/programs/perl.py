"""134.perl stand-in: anagram search over a word list.

The paper's Table 4.1 describes 134.perl as "anagram search program".
The stand-in reads a dictionary of letter-code words, computes a
letter-multiset signature per word, buckets signatures in a hash table,
then answers anagram queries (with exact letter-count verification) and a
substring-match scan — hashing, string loops and table probing with
data-dependent control, like the interpreter-driven original.
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled

SOURCE = """
// 134.perl stand-in: anagram search with signature hashing.
int words[9000];        // flattened letter codes (0..25)
int word_start[900];
int word_len[900];
int word_count;
int signature[26];
int sig_hash[1024];     // signature-hash -> first bucket entry (chained)
int bucket_next[900];
int bucket_word[900];
int bucket_count;
int match_total;

int compute_signature(int word) {
    // Fills signature[] with letter counts; returns a rolling hash.
    int i;
    int start;
    int length;
    int hash;
    for (i = 0; i < 26; i = i + 1) {
        signature[i] = 0;
    }
    start = word_start[word];
    length = word_len[word];
    for (i = 0; i < length; i = i + 1) {
        signature[words[start + i]] = signature[words[start + i]] + 1;
    }
    hash = length;
    for (i = 0; i < 26; i = i + 1) {
        hash = (hash * 67 + signature[i]) % 1048573;
    }
    return hash;
}

int same_letters(int first, int second) {
    // Exact multiset comparison, needed because hashes can collide.
    int i;
    int start_a;
    int start_b;
    int length;
    if (word_len[first] != word_len[second]) {
        return 0;
    }
    compute_signature(first);
    length = word_len[second];
    start_b = word_start[second];
    for (i = 0; i < length; i = i + 1) {
        signature[words[start_b + i]] = signature[words[start_b + i]] - 1;
    }
    for (i = 0; i < 26; i = i + 1) {
        if (signature[i] != 0) {
            return 0;
        }
    }
    return 1;
}

void index_words() {
    int word;
    int hash;
    int slot;
    for (slot = 0; slot < 1024; slot = slot + 1) {
        sig_hash[slot] = -1;
    }
    bucket_count = 0;
    for (word = 0; word < word_count; word = word + 1) {
        hash = compute_signature(word) % 1024;
        bucket_word[bucket_count] = word;
        bucket_next[bucket_count] = sig_hash[hash];
        sig_hash[hash] = bucket_count;
        bucket_count = bucket_count + 1;
    }
}

int count_anagrams(int query) {
    int hash;
    int entry;
    int matches;
    hash = compute_signature(query) % 1024;
    matches = 0;
    entry = sig_hash[hash];
    while (entry != -1) {
        if (bucket_word[entry] != query
            && same_letters(query, bucket_word[entry])) {
            matches = matches + 1;
        }
        entry = bucket_next[entry];
    }
    return matches;
}

int substring_scan(int needle_a, int needle_b) {
    // Count words containing the two-letter sequence (needle_a, needle_b).
    int word;
    int i;
    int start;
    int length;
    int hits;
    hits = 0;
    for (word = 0; word < word_count; word = word + 1) {
        start = word_start[word];
        length = word_len[word];
        for (i = 0; i + 1 < length; i = i + 1) {
            if (words[start + i] == needle_a
                && words[start + i + 1] == needle_b) {
                hits = hits + 1;
                break;
            }
        }
    }
    return hits;
}

void main() {
    int i;
    int j;
    int cursor;
    int length;
    int queries;
    int scans;

    word_count = in();
    cursor = 0;
    for (i = 0; i < word_count; i = i + 1) {
        length = in();
        word_start[i] = cursor;
        word_len[i] = length;
        for (j = 0; j < length; j = j + 1) {
            words[cursor] = in();
            cursor = cursor + 1;
        }
    }
    index_words();

    match_total = 0;
    queries = in();
    for (i = 0; i < queries; i = i + 1) {
        match_total = match_total + count_anagrams(in() % word_count);
    }
    out(match_total);

    scans = in();
    match_total = 0;
    for (i = 0; i < scans; i = i + 1) {
        match_total = match_total + substring_scan(in() % 26, in() % 26);
    }
    out(match_total);
    out(bucket_count);
}
"""

#: (word count, queries, scans, seed) per input set.
_CONFIGS = [
    (200, 60, 4, 71717),
    (240, 48, 3, 71719),
    (170, 72, 5, 71723),
    (220, 54, 4, 71729),
    (210, 50, 4, 71731),
    (230, 58, 4, 71737),  # held-out test input
]


def _word_list(count: int, seed: int) -> List[int]:
    """Words of 3-9 biased letters; some deliberate anagram families."""
    generator = Lcg(seed)
    stream: List[int] = []
    base_words: List[List[int]] = []
    for word_index in range(count):
        if base_words and generator.below(100) < 20:
            # Permute an existing word -> guaranteed anagram family member.
            source = base_words[generator.below(len(base_words))]
            letters = list(source)
            for position in range(len(letters) - 1, 0, -1):
                other = generator.below(position + 1)
                letters[position], letters[other] = letters[other], letters[position]
        else:
            length = 3 + generator.below(7)
            letters = [
                min(generator.below(26), generator.below(26))
                for _ in range(length)
            ]
            base_words.append(letters)
        stream.append(len(letters))
        stream.extend(letters)
    return stream


def make_inputs(index: int, scale: float = 1.0) -> List[int]:
    count, queries, scans, seed = _CONFIGS[index % len(_CONFIGS)]
    queries = scaled(queries, scale, minimum=2)
    scans = scaled(scans, scale, minimum=1)
    generator = Lcg(seed ^ 0x5A5A)
    stream: List[int] = [count]
    stream.extend(_word_list(count, seed + 13 * index))
    stream.append(queries)
    stream.extend(generator.integers(queries, 1 << 20))
    stream.append(scans)
    stream.extend(generator.integers(scans * 2, 26))
    return stream


WORKLOAD = Workload(
    name="134.perl",
    suite="int",
    description="anagram search: signature hashing + substring scans",
    source=SOURCE,
    make_inputs=make_inputs,
)
