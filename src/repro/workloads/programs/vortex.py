"""147.vortex stand-in: an object-oriented database under transactions.

The SPEC original is a single-user OO database benchmark.  The stand-in
keeps three "object" tables (persons, parts, orders) in parallel field
arrays with an open-addressing primary index each, and drives a seeded
transaction mix — insert, point lookup, field update, delete, referential
join, and per-department report scans.  Many small accessor/validator
functions give it the large static footprint that makes vortex a
table-pressure benchmark in the paper.
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import scaled

SOURCE = """
// 147.vortex stand-in: three object tables + hash indexes + transactions.
int person_id[1200];
int person_age[1200];
int person_dept[1200];
int person_salary[1200];
int person_live[1200];
int person_count;
int person_index[2048];

int part_id[1200];
int part_weight[1200];
int part_stock[1200];
int part_live[1200];
int part_count;
int part_index[2048];

int order_id[1600];
int order_person[1600];
int order_part[1600];
int order_qty[1600];
int order_live[1600];
int order_count;

int rng_state;
int commits;
int aborts;
int report_value;

int rng() {
    rng_state = (rng_state * 1103515245 + 12345) % 2147483648;
    return rng_state;
}

int hash_id(int id) {
    return ((id * 2654435761) % 2048 + 2048) % 2048;
}

// ---- person accessors ------------------------------------------------
int person_find(int id) {
    int slot;
    slot = hash_id(id);
    while (person_index[slot] != -1) {
        if (person_id[person_index[slot]] == id
            && person_live[person_index[slot]]) {
            return person_index[slot];
        }
        slot = (slot + 1) % 2048;
    }
    return -1;
}

int person_insert(int id, int age, int dept, int salary) {
    int row;
    int slot;
    if (person_count >= 1200) { return -1; }
    if (person_find(id) != -1) { return -1; }
    row = person_count;
    person_count = person_count + 1;
    person_id[row] = id;
    person_age[row] = age;
    person_dept[row] = dept;
    person_salary[row] = salary;
    person_live[row] = 1;
    slot = hash_id(id);
    while (person_index[slot] != -1) {
        slot = (slot + 1) % 2048;
    }
    person_index[slot] = row;
    return row;
}

int person_get_salary(int row) { return person_salary[row]; }
int person_get_dept(int row) { return person_dept[row]; }
int person_get_age(int row) { return person_age[row]; }
void person_set_salary(int row, int salary) { person_salary[row] = salary; }
int person_valid(int row) {
    return row >= 0 && row < person_count && person_live[row];
}

// ---- part accessors --------------------------------------------------
int part_find(int id) {
    int slot;
    slot = hash_id(id);
    while (part_index[slot] != -1) {
        if (part_id[part_index[slot]] == id && part_live[part_index[slot]]) {
            return part_index[slot];
        }
        slot = (slot + 1) % 2048;
    }
    return -1;
}

int part_insert(int id, int weight, int stock) {
    int row;
    int slot;
    if (part_count >= 1200) { return -1; }
    if (part_find(id) != -1) { return -1; }
    row = part_count;
    part_count = part_count + 1;
    part_id[row] = id;
    part_weight[row] = weight;
    part_stock[row] = stock;
    part_live[row] = 1;
    slot = hash_id(id);
    while (part_index[slot] != -1) {
        slot = (slot + 1) % 2048;
    }
    part_index[slot] = row;
    return row;
}

int part_get_stock(int row) { return part_stock[row]; }
void part_take_stock(int row, int amount) {
    part_stock[row] = part_stock[row] - amount;
}
int part_valid(int row) {
    return row >= 0 && row < part_count && part_live[row];
}

// ---- order operations --------------------------------------------------
int order_insert(int person, int part, int qty) {
    int row;
    if (order_count >= 1600) { return -1; }
    row = order_count;
    order_count = order_count + 1;
    order_id[row] = row + 100000;
    order_person[row] = person;
    order_part[row] = part;
    order_qty[row] = qty;
    order_live[row] = 1;
    return row;
}

int order_join_value(int row) {
    // Referential traversal: order -> person salary, order -> part weight.
    int person;
    int part;
    if (!order_live[row]) { return 0; }
    person = order_person[row];
    part = order_part[row];
    if (!person_valid(person) || !part_valid(part)) { return 0; }
    return (person_get_salary(person) / 100 + part_weight[part])
           * order_qty[row];
}

// ---- transactions --------------------------------------------------------
void txn_new_person() {
    int id;
    id = rng() % 50000;
    if (person_insert(id, 20 + rng() % 45, rng() % 16,
                      30000 + rng() % 70000) >= 0) {
        commits = commits + 1;
    } else {
        aborts = aborts + 1;
    }
}

void txn_new_part() {
    int id;
    id = rng() % 50000;
    if (part_insert(id, 1 + rng() % 900, rng() % 500) >= 0) {
        commits = commits + 1;
    } else {
        aborts = aborts + 1;
    }
}

void txn_place_order() {
    int person;
    int part;
    int qty;
    person = rng() % (person_count + 1);
    part = rng() % (part_count + 1);
    qty = 1 + rng() % 9;
    if (person_valid(person) && part_valid(part)
        && part_get_stock(part) >= qty) {
        part_take_stock(part, qty);
        order_insert(person, part, qty);
        commits = commits + 1;
    } else {
        aborts = aborts + 1;
    }
}

void txn_raise_salary() {
    int row;
    row = person_find(rng() % 50000);
    if (row != -1) {
        person_set_salary(row, person_get_salary(row) * 21 / 20);
        commits = commits + 1;
    } else {
        aborts = aborts + 1;
    }
}

void txn_fire_person() {
    int row;
    row = person_find(rng() % 50000);
    if (row != -1) {
        person_live[row] = 0;
        commits = commits + 1;
    } else {
        aborts = aborts + 1;
    }
}

int report_department(int dept) {
    // Aggregate salary and headcount for one department.
    int row;
    int total;
    for (row = 0; row < person_count; row = row + 1) {
        if (person_live[row] && person_get_dept(row) == dept) {
            report_value = (report_value + person_get_salary(row))
                           % 1000000007;
        }
    }
    total = 0;
    for (row = 0; row < order_count; row = row + 1) {
        total = (total + order_join_value(row)) % 1000000007;
    }
    return total;
}

void main() {
    int i;
    int seed_people;
    int seed_parts;
    int transactions;
    int kind;

    rng_state = in();
    seed_people = in();
    seed_parts = in();
    transactions = in();

    for (i = 0; i < 2048; i = i + 1) {
        person_index[i] = -1;
        part_index[i] = -1;
    }
    person_count = 0;
    part_count = 0;
    order_count = 0;
    commits = 0;
    aborts = 0;
    report_value = 0;

    for (i = 0; i < seed_people; i = i + 1) { txn_new_person(); }
    for (i = 0; i < seed_parts; i = i + 1) { txn_new_part(); }

    for (i = 0; i < transactions; i = i + 1) {
        kind = rng() % 100;
        if (kind < 18) { txn_new_person(); }
        else { if (kind < 30) { txn_new_part(); }
        else { if (kind < 62) { txn_place_order(); }
        else { if (kind < 80) { txn_raise_salary(); }
        else { if (kind < 95) { txn_fire_person(); }
        else { report_value = (report_value
                               + report_department(rng() % 16))
                              % 1000000007; } } } } }
    }
    out(commits);
    out(aborts);
    out(report_value);
    out(person_count * 1000000 + part_count * 1000 + order_count);
}
"""

#: (rng seed, seeded people, seeded parts, transactions) per input set.
_CONFIGS = [
    (31415, 140, 100, 260),
    (27182, 165, 90, 230),
    (16180, 120, 120, 290),
    (14142, 150, 105, 245),
    (17320, 130, 95, 275),
    (12345, 145, 100, 260),  # held-out test input
]


def make_inputs(index: int, scale: float = 1.0) -> List[int]:
    seed, people, parts, transactions = _CONFIGS[index % len(_CONFIGS)]
    transactions = scaled(transactions, scale, minimum=10)
    return [seed, people, parts, transactions]


WORKLOAD = Workload(
    name="147.vortex",
    suite="int",
    description="OO database: object tables, hash indexes, transaction mix",
    source=SOURCE,
    make_inputs=make_inputs,
)
