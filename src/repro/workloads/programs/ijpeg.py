"""132.ijpeg stand-in: block-based integer image compression.

The SPEC original is JPEG encoding.  The stand-in runs the JPEG skeleton
on a synthetic image: level shift, 8x8 blocking, an integer 8-point
DCT-like butterfly transform on rows then columns, quantization against a
table, zigzag run-length accounting, and a quality sweep — dense integer
arithmetic over small fixed-trip loops (a compact, highly stride-friendly
working set, like the original).
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled

SOURCE = """
// 132.ijpeg stand-in: 8x8 integer transform + quantization pipeline.
int image[4096];        // up to 64x64
int block[64];
int coeff[64];
int quant_table[64];
int zigzag[64] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63
};
int width;
int height;
int nonzero_total;
int bits_estimate;

void load_block(int block_row, int block_col) {
    int r;
    int c;
    int base;
    for (r = 0; r < 8; r = r + 1) {
        base = (block_row * 8 + r) * width + block_col * 8;
        for (c = 0; c < 8; c = c + 1) {
            block[r * 8 + c] = image[base + c] - 128;   // level shift
        }
    }
}

void transform_rows() {
    // Integer butterfly pass per row (DCT-flavoured, exact-integer).
    int r;
    int base;
    int s07; int s16; int s25; int s34;
    int d07; int d16; int d25; int d34;
    for (r = 0; r < 8; r = r + 1) {
        base = r * 8;
        s07 = block[base] + block[base + 7];
        d07 = block[base] - block[base + 7];
        s16 = block[base + 1] + block[base + 6];
        d16 = block[base + 1] - block[base + 6];
        s25 = block[base + 2] + block[base + 5];
        d25 = block[base + 2] - block[base + 5];
        s34 = block[base + 3] + block[base + 4];
        d34 = block[base + 3] - block[base + 4];
        coeff[base]     = s07 + s16 + s25 + s34;
        coeff[base + 4] = s07 - s16 - s25 + s34;
        coeff[base + 2] = (d07 * 5 + d34 * 2) / 4;
        coeff[base + 6] = (d07 * 2 - d34 * 5) / 4;
        coeff[base + 1] = (d16 * 6 + d25 * 3) / 4;
        coeff[base + 5] = (d16 * 3 - d25 * 6) / 4;
        coeff[base + 3] = (s07 - s34) / 2;
        coeff[base + 7] = (s16 - s25) / 2;
    }
}

void transform_cols() {
    int c;
    int s07; int s16; int s25; int s34;
    int d07; int d16; int d25; int d34;
    for (c = 0; c < 8; c = c + 1) {
        s07 = coeff[c] + coeff[c + 56];
        d07 = coeff[c] - coeff[c + 56];
        s16 = coeff[c + 8] + coeff[c + 48];
        d16 = coeff[c + 8] - coeff[c + 48];
        s25 = coeff[c + 16] + coeff[c + 40];
        d25 = coeff[c + 16] - coeff[c + 40];
        s34 = coeff[c + 24] + coeff[c + 32];
        d34 = coeff[c + 24] - coeff[c + 32];
        block[c]      = (s07 + s16 + s25 + s34) / 8;
        block[c + 32] = (s07 - s16 - s25 + s34) / 8;
        block[c + 16] = (d07 * 5 + d34 * 2) / 32;
        block[c + 48] = (d07 * 2 - d34 * 5) / 32;
        block[c + 8]  = (d16 * 6 + d25 * 3) / 32;
        block[c + 40] = (d16 * 3 - d25 * 6) / 32;
        block[c + 24] = (s07 - s34) / 16;
        block[c + 56] = (s16 - s25) / 16;
    }
}

int quantize_and_count() {
    // Quantize in zigzag order; return nonzero coefficients and update
    // the run-length bit estimate.
    int z;
    int position;
    int quantized;
    int nonzero;
    int run;
    nonzero = 0;
    run = 0;
    for (z = 0; z < 64; z = z + 1) {
        position = zigzag[z];
        quantized = block[position] / quant_table[position];
        if (quantized != 0) {
            nonzero = nonzero + 1;
            bits_estimate = bits_estimate + 4 + run;
            if (quantized < 0) { quantized = -quantized; }
            while (quantized > 0) {
                bits_estimate = bits_estimate + 1;
                quantized = quantized / 2;
            }
            run = 0;
        } else {
            run = run + 1;
        }
    }
    return nonzero;
}

void set_quality(int quality) {
    int i;
    int base;
    for (i = 0; i < 64; i = i + 1) {
        base = 1 + (i / 8) + (i % 8);
        quant_table[i] = base * quality / 8;
        if (quant_table[i] < 1) { quant_table[i] = 1; }
    }
}

void encode_pass() {
    int block_row;
    int block_col;
    for (block_row = 0; block_row < height / 8; block_row = block_row + 1) {
        for (block_col = 0; block_col < width / 8; block_col = block_col + 1) {
            load_block(block_row, block_col);
            transform_rows();
            transform_cols();
            nonzero_total = nonzero_total + quantize_and_count();
        }
    }
}

void main() {
    int i;
    int pixels;
    int qualities;
    int q;
    width = in();
    height = in();
    pixels = width * height;
    for (i = 0; i < pixels; i = i + 1) {
        image[i] = in();
    }
    qualities = in();
    nonzero_total = 0;
    bits_estimate = 0;
    for (q = 0; q < qualities; q = q + 1) {
        set_quality(4 + q * 3);
        encode_pass();
    }
    out(nonzero_total);
    out(bits_estimate);
}
"""

#: (width, height, qualities, seed) per input set.
_CONFIGS = [
    (24, 24, 4, 12001),
    (32, 24, 3, 12007),
    (24, 32, 4, 12011),
    (40, 40, 2, 12013),
    (32, 32, 3, 12017),
    (32, 24, 4, 12019),  # held-out test input
]


def _image(width: int, height: int, seed: int) -> List[int]:
    """A synthetic photo: smooth gradients plus textured noise."""
    generator = Lcg(seed)
    pixels: List[int] = []
    for row in range(height):
        for col in range(width):
            smooth = (row * 3 + col * 2) % 180
            texture = generator.below(40)
            pixels.append(min(255, 40 + smooth + texture))
    return pixels


def make_inputs(index: int, scale: float = 1.0) -> List[int]:
    width, height, qualities, seed = _CONFIGS[index % len(_CONFIGS)]
    qualities = scaled(qualities, scale, minimum=1)
    stream: List[int] = [width, height]
    stream.extend(_image(width, height, seed + index))
    stream.append(qualities)
    return stream


WORKLOAD = Workload(
    name="132.ijpeg",
    suite="int",
    description="JPEG-skeleton encoder: 8x8 integer transform + quantization",
    source=SOURCE,
    make_inputs=make_inputs,
)
