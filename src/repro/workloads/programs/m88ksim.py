"""124.m88ksim stand-in: an instruction-set simulator in the workload.

The SPEC original simulates the Motorola 88100.  The stand-in interprets a
small synthetic RISC guest: a fetch/decode/execute loop over an in-memory
guest program with sixteen guest registers.  The interpreter's own control
and bookkeeping values repeat heavily run after run — a small, highly
value-predictable working set, matching the original's outlier behaviour
in the paper (593% ILP gain).
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled

SOURCE = """
// 124.m88ksim stand-in: interpreter for a tiny guest ISA.
// Guest instruction encoding: op*65536 + a*4096 + b*256 + c
// ops: 0 add, 1 sub, 2 mullo, 3 and, 4 or, 5 load, 6 store, 7 beq,
//      8 addi, 9 shift
int guest_code[512];
int guest_regs[16];
int guest_mem[1024];
int op_count[16];     // per-opcode retirement statistics
int code_len;
int cycle_count;
int alu_count;
int mem_count;

int fetch(int pc) {
    return guest_code[pc];
}

int step(int pc) {
    // Executes one guest instruction; returns the next guest pc.
    int word;
    int op;
    int a;
    int b;
    int c;
    word = fetch(pc);
    op = word >> 16;
    a = (word >> 12) & 15;
    b = (word >> 8) & 15;
    c = word & 255;
    cycle_count = cycle_count + 1;
    op_count[op] = op_count[op] + 1;
    if (op < 5 || op > 7) { alu_count = alu_count + 1; }
    if (op == 5 || op == 6) { mem_count = mem_count + 1; }
    if (op == 0) {
        guest_regs[a] = guest_regs[b] + guest_regs[c & 15];
        return pc + 1;
    }
    if (op == 1) {
        guest_regs[a] = guest_regs[b] - guest_regs[c & 15];
        return pc + 1;
    }
    if (op == 2) {
        guest_regs[a] = (guest_regs[b] * guest_regs[c & 15]) % 65536;
        return pc + 1;
    }
    if (op == 3) {
        guest_regs[a] = guest_regs[b] & guest_regs[c & 15];
        return pc + 1;
    }
    if (op == 4) {
        guest_regs[a] = guest_regs[b] | guest_regs[c & 15];
        return pc + 1;
    }
    if (op == 5) {
        guest_regs[a] = guest_mem[(guest_regs[b] + c) & 1023];
        return pc + 1;
    }
    if (op == 6) {
        guest_mem[(guest_regs[b] + c) & 1023] = guest_regs[a];
        return pc + 1;
    }
    if (op == 7) {
        if (guest_regs[a] == guest_regs[b]) {
            return c % code_len;
        }
        return pc + 1;
    }
    if (op == 8) {
        guest_regs[a] = guest_regs[b] + c;
        return pc + 1;
    }
    guest_regs[a] = guest_regs[b] << (c & 7);
    return pc + 1;
}

void run(int max_cycles) {
    int pc;
    pc = 0;
    cycle_count = 0;
    alu_count = 0;
    mem_count = 0;
    while (cycle_count < max_cycles) {
        pc = step(pc);
        if (pc >= code_len) {
            pc = 0;
        }
    }
}

int register_checksum() {
    int i;
    int sum;
    sum = 0;
    for (i = 0; i < 16; i = i + 1) {
        sum = (sum * 31 + guest_regs[i]) % 1000000007;
    }
    return sum;
}

void main() {
    int i;
    int cycles;
    code_len = in();
    for (i = 0; i < code_len; i = i + 1) {
        guest_code[i] = in();
    }
    for (i = 0; i < 16; i = i + 1) {
        guest_regs[i] = in();
    }
    for (i = 0; i < 1024; i = i + 1) {
        guest_mem[i] = (i * 7 + 3) % 256;
    }
    for (i = 0; i < 16; i = i + 1) {
        op_count[i] = 0;
    }
    cycles = in();
    run(cycles);
    out(register_checksum());
    out(cycle_count);
    out(alu_count * 1000000 + mem_count);
}
"""

#: (guest program length, cycles, seed) per input set.
_CONFIGS = [
    (96, 2300, 17),
    (128, 2050, 23),
    (80, 2500, 31),
    (112, 2200, 47),
    (104, 2400, 59),
    (120, 2250, 71),  # held-out test input
]


def _guest_program(length: int, seed: int) -> List[int]:
    """Generate a plausible guest program (mostly ALU, some memory/branch)."""
    generator = Lcg(seed)
    words: List[int] = []
    for position in range(length):
        roll = generator.below(100)
        if roll < 45:
            op = generator.below(5)  # add/sub/mul/and/or
        elif roll < 60:
            op = 8  # addi
        elif roll < 72:
            op = 5  # load
        elif roll < 82:
            op = 6  # store
        elif roll < 90:
            op = 9  # shift
        else:
            op = 7  # beq
        a = generator.below(16)
        b = generator.below(16)
        if op == 7:
            c = generator.below(max(1, length))
        else:
            c = generator.below(256)
        words.append(op * 65536 + a * 4096 + b * 256 + c)
    return words


def make_inputs(index: int, scale: float = 1.0) -> List[int]:
    length, cycles, seed = _CONFIGS[index % len(_CONFIGS)]
    cycles = scaled(cycles, scale, minimum=64)
    generator = Lcg(seed * 1000 + index)
    stream: List[int] = [length]
    stream.extend(_guest_program(length, seed + 7 * index))
    stream.extend(generator.integers(16, 1 << 16))
    stream.append(cycles)
    return stream


WORKLOAD = Workload(
    name="124.m88ksim",
    suite="int",
    description="instruction-set simulator for a small synthetic guest CPU",
    source=SOURCE,
    make_inputs=make_inputs,
)
