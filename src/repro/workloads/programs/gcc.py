"""126.gcc stand-in: a multi-pass compiler front end.

The SPEC original is GNU C compiling preprocessed source.  The stand-in
lexes a synthetic source stream into tokens, hashes identifiers into a
symbol table, builds a small postfix IR, and then runs a battery of
distinct optimization/analysis passes over the IR — each pass its own
function with its own constants, so the *static* instruction footprint is
large (the defining property of gcc for the paper's table-pressure
results: many live candidate instructions competing for prediction-table
entries).
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled

_PASS_COUNT = 22

# Each generated pass transforms IR values with distinct constants and a
# distinct operator mix, so no two passes produce identical value streams.
_PASS_PARAMS = [
    # (multiplier, addend, modulus, xor mask, shift)
    (37, 11, 8191, 0x155, 3),
    (59, 7, 4093, 0x2AA, 2),
    (101, 13, 16381, 0x0F0, 4),
    (73, 29, 2039, 0x3C3, 1),
    (151, 5, 32749, 0x111, 5),
    (43, 17, 12289, 0x222, 2),
    (67, 23, 6151, 0x0AB, 3),
    (89, 31, 3079, 0x1CD, 1),
    (113, 37, 24593, 0x31F, 4),
    (131, 41, 1543, 0x2E2, 2),
    (61, 43, 49157, 0x199, 5),
    (79, 47, 769, 0x0D7, 1),
    (97, 53, 98317, 0x285, 3),
    (103, 59, 389, 0x33A, 2),
    (107, 61, 196613, 0x143, 4),
    (109, 67, 193, 0x2B8, 1),
    (127, 71, 393241, 0x1E6, 5),
    (137, 73, 99, 0x09C, 2),
    (139, 79, 786433, 0x257, 3),
    (149, 83, 53, 0x362, 1),
    (157, 89, 1572869, 0x124, 4),
    (163, 97, 27, 0x2F1, 2),
]
assert len(_PASS_PARAMS) == _PASS_COUNT


def _generate_passes() -> str:
    """Emit the per-pass transform + driver function pairs."""
    chunks: List[str] = []
    for number, (mul, add, mod, mask, shift) in enumerate(_PASS_PARAMS):
        chunks.append(f"""
int transform_{number}(int value) {{
    int result;
    result = (value * {mul} + {add}) % {mod};
    if (result < 0) {{ result = result + {mod}; }}
    result = result ^ {mask};
    return result >> {shift};
}}

int run_pass_{number}() {{
    int i;
    int acc;
    int value;
    acc = 0;
    for (i = 0; i < ir_len; i = i + 1) {{
        value = transform_{number}(ir_value[i]);
        if (ir_kind[i] == {number % 4}) {{
            ir_value[i] = (ir_value[i] + value) % 65536;
        }}
        acc = (acc + value) % 1000003;
    }}
    return acc;
}}
""")
    return "".join(chunks)


def _generate_driver() -> str:
    calls = "\n".join(
        f"    report = (report * 31 + run_pass_{number}()) % 1000000007;"
        for number in range(_PASS_COUNT)
    )
    return f"""
int run_all_passes() {{
    int report;
    report = 0;
{calls}
    return report;
}}
"""


SOURCE = """
// 126.gcc stand-in: lexer + symbol table + postfix IR + many passes.
int source_text[6000];
int source_len;
int token_kind[3000];   // 0 ident, 1 number, 2 operator, 3 punct
int token_value[3000];
int token_count;
int symbol_hash[1021];
int symbol_count;
int ir_kind[3000];
int ir_value[3000];
int ir_len;

int is_letter(int c) {
    return c >= 'a' && c <= 'z';
}

int is_digit(int c) {
    return c >= '0' && c <= '9';
}

int intern(int name_hash) {
    // Open-addressing symbol table; returns symbol index.
    int slot;
    slot = name_hash % 1021;
    if (slot < 0) { slot = slot + 1021; }
    while (symbol_hash[slot] != 0 && symbol_hash[slot] != name_hash) {
        slot = slot + 1;
        if (slot >= 1021) { slot = 0; }
    }
    if (symbol_hash[slot] == 0) {
        symbol_hash[slot] = name_hash;
        symbol_count = symbol_count + 1;
    }
    return slot;
}

void lex() {
    int i;
    int c;
    int value;
    token_count = 0;
    i = 0;
    while (i < source_len) {
        c = source_text[i];
        if (is_letter(c)) {
            value = 0;
            while (i < source_len && is_letter(source_text[i])) {
                value = (value * 31 + source_text[i]) % 1000003 + 1;
                i = i + 1;
            }
            token_kind[token_count] = 0;
            token_value[token_count] = intern(value);
            token_count = token_count + 1;
        } else {
            if (is_digit(c)) {
                value = 0;
                while (i < source_len && is_digit(source_text[i])) {
                    value = value * 10 + (source_text[i] - '0');
                    i = i + 1;
                }
                token_kind[token_count] = 1;
                token_value[token_count] = value % 65536;
                token_count = token_count + 1;
            } else {
                if (c == '+' || c == '-' || c == '*' || c == '/') {
                    token_kind[token_count] = 2;
                    token_value[token_count] = c;
                    token_count = token_count + 1;
                } else {
                    if (c != ' ') {
                        token_kind[token_count] = 3;
                        token_value[token_count] = c;
                        token_count = token_count + 1;
                    }
                }
                i = i + 1;
            }
        }
    }
}

void build_ir() {
    // Shunting-yard-lite: numbers and identifiers go straight to the IR,
    // operators follow their right operand (postfix-ish).
    int i;
    int pending;
    int has_pending;
    ir_len = 0;
    pending = 0;
    has_pending = 0;
    for (i = 0; i < token_count; i = i + 1) {
        if (token_kind[i] == 0 || token_kind[i] == 1) {
            ir_kind[ir_len] = token_kind[i];
            ir_value[ir_len] = token_value[i];
            ir_len = ir_len + 1;
            if (has_pending) {
                ir_kind[ir_len] = 2;
                ir_value[ir_len] = pending;
                ir_len = ir_len + 1;
                has_pending = 0;
            }
        } else {
            if (token_kind[i] == 2) {
                pending = token_value[i];
                has_pending = 1;
            } else {
                ir_kind[ir_len] = 3;
                ir_value[ir_len] = token_value[i] % 256;
                ir_len = ir_len + 1;
            }
        }
    }
}

int constant_fold() {
    // Fold number-number-operator triples in the postfix IR.
    int i;
    int folded;
    folded = 0;
    i = 2;
    while (i < ir_len) {
        if (ir_kind[i] == 2 && ir_kind[i - 1] == 1 && ir_kind[i - 2] == 1) {
            if (ir_value[i] == '+') {
                ir_value[i - 2] = (ir_value[i - 2] + ir_value[i - 1]) % 65536;
                folded = folded + 1;
            }
            if (ir_value[i] == '*') {
                ir_value[i - 2] = (ir_value[i - 2] * ir_value[i - 1]) % 65536;
                folded = folded + 1;
            }
        }
        i = i + 1;
    }
    return folded;
}
""" + _generate_passes() + _generate_driver() + """
void main() {
    int i;
    int compilations;
    int round;
    int report;
    compilations = in();
    report = 0;
    for (round = 0; round < compilations; round = round + 1) {
        source_len = in();
        for (i = 0; i < source_len; i = i + 1) {
            source_text[i] = in();
        }
        for (i = 0; i < 1021; i = i + 1) {
            symbol_hash[i] = 0;
        }
        symbol_count = 0;
        lex();
        build_ir();
        report = (report + constant_fold()) % 1000000007;
        report = (report * 17 + run_all_passes()) % 1000000007;
        out(token_count);
        out(symbol_count);
    }
    out(report);
}
"""

#: (source length, compilation units, seed) per input set.
_CONFIGS = [
    (380, 2, 607),
    (500, 2, 1013),
    (300, 3, 211),
    (820, 1, 853),
    (430, 2, 1511),
    (450, 2, 431),  # held-out test input
]

_LETTERS = "abcdefghijklmnopqrstuvwxyz"
_OPERATORS = "+-*/"
_PUNCT = ";(){},"


def _source_stream(length: int, seed: int) -> List[int]:
    """Generate plausible source text: identifiers, numbers, operators."""
    generator = Lcg(seed)
    text: List[int] = []
    while len(text) < length:
        roll = generator.below(100)
        if roll < 45:  # identifier of length 1-7 from a small vocabulary
            word_length = 1 + generator.below(7)
            base = generator.below(520)
            for position in range(word_length):
                letter = _LETTERS[(base + position * 7) % 26]
                text.append(ord(letter))
        elif roll < 70:  # number of 1-5 digits
            digit_count = 1 + generator.below(5)
            for _ in range(digit_count):
                text.append(ord("0") + generator.below(10))
        elif roll < 85:
            text.append(ord(_OPERATORS[generator.below(4)]))
        else:
            text.append(ord(_PUNCT[generator.below(len(_PUNCT))]))
        text.append(ord(" "))
    return text[:length]


def make_inputs(index: int, scale: float = 1.0) -> List[int]:
    length, units, seed = _CONFIGS[index % len(_CONFIGS)]
    length = scaled(length, scale, minimum=32)
    stream: List[int] = [units]
    for unit in range(units):
        text = _source_stream(length, seed + 97 * unit + 17 * index)
        stream.append(len(text))
        stream.extend(text)
    return stream


WORKLOAD = Workload(
    name="126.gcc",
    suite="int",
    description="compiler front end: lexer, symbol table, IR, many passes",
    source=SOURCE,
    make_inputs=make_inputs,
)
