"""129.compress stand-in: adaptive LZW compression over a text stream.

The SPEC original compresses a file with adaptive Lempel-Ziv coding.  The
stand-in implements LZW with an open-addressing dictionary over a
pseudo-text input stream: a tight encode loop with hash probing (data-
dependent values) around stride-friendly buffer indices — a small
instruction working set, like the original.
"""

from __future__ import annotations

from typing import List

from ..base import Workload
from ..inputs import Lcg, scaled, text_stream

SOURCE = """
// 129.compress stand-in: LZW encoder with an open-addressing dictionary.
int HASH_SIZE = 4099;        // prime
int hash_prefix[4099];
int hash_suffix[4099];
int hash_code[4099];
int text[12000];
int out_codes[12000];
int next_code;
int text_len;

void clear_dictionary() {
    int i;
    for (i = 0; i < HASH_SIZE; i = i + 1) {
        hash_code[i] = -1;
    }
    next_code = 256;
}

int probe(int prefix, int suffix) {
    // Returns the slot where (prefix, suffix) lives or should live.
    int slot;
    int step;
    slot = ((prefix << 5) ^ suffix) % HASH_SIZE;
    if (slot < 0) { slot = slot + HASH_SIZE; }
    step = 1;
    while (hash_code[slot] != -1) {
        if (hash_prefix[slot] == prefix && hash_suffix[slot] == suffix) {
            return slot;
        }
        slot = slot + step;
        step = step + 2;
        if (slot >= HASH_SIZE) { slot = slot % HASH_SIZE; }
    }
    return slot;
}

int encode() {
    int i;
    int w;
    int c;
    int slot;
    int emitted;
    emitted = 0;
    w = text[0];
    for (i = 1; i < text_len; i = i + 1) {
        c = text[i];
        slot = probe(w, c);
        if (hash_code[slot] != -1) {
            w = hash_code[slot];
        } else {
            out_codes[emitted] = w;
            emitted = emitted + 1;
            if (next_code < 4096) {
                hash_prefix[slot] = w;
                hash_suffix[slot] = c;
                hash_code[slot] = next_code;
                next_code = next_code + 1;
            }
            w = c;
        }
    }
    out_codes[emitted] = w;
    emitted = emitted + 1;
    return emitted;
}

int checksum(int count) {
    int i;
    int sum;
    sum = 0;
    for (i = 0; i < count; i = i + 1) {
        sum = (sum * 131 + out_codes[i]) % 1000000007;
    }
    return sum;
}

void main() {
    int i;
    int blocks;
    int block;
    int emitted;
    int total;
    blocks = in();
    total = 0;
    for (block = 0; block < blocks; block = block + 1) {
        text_len = in();
        for (i = 0; i < text_len; i = i + 1) {
            text[i] = in();
        }
        clear_dictionary();
        emitted = encode();
        total = total + emitted;
        out(checksum(emitted));
    }
    out(total);
}
"""

#: (text length, block count, seed base) per input set.
_CONFIGS = [
    (880, 2, 9001),
    (1020, 2, 4177),
    (640, 3, 7331),
    (1900, 1, 1234),
    (950, 2, 5510),
    (1100, 2, 8086),  # held-out test input
]


def make_inputs(index: int, scale: float = 1.0) -> List[int]:
    length, blocks, seed = _CONFIGS[index % len(_CONFIGS)]
    length = scaled(length, scale, minimum=16)
    stream: List[int] = [blocks]
    for block in range(blocks):
        block_text = text_stream(seed + 31 * block + 101 * index, length)
        # Shift into printable-ish byte codes.
        stream.append(length)
        stream.extend(97 + value for value in block_text)
    return stream


WORKLOAD = Workload(
    name="129.compress",
    suite="int",
    description="LZW compression with an open-addressing dictionary",
    source=SOURCE,
    make_inputs=make_inputs,
)
