"""Workload abstraction and registry.

A :class:`Workload` bundles a mini-C source program with a deterministic
input generator.  Input sets are indexed: sets 0..4 are the training
inputs (the paper's n=5 different runs), set 5 is the held-out test input
used for every evaluation experiment.  ``scale`` shrinks or grows the
dynamic instruction count without changing the program.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Union

from ..isa import Program
from ..lang import compile_source

Number = Union[int, float]
InputMaker = Callable[[int, float], List[Number]]

#: Number of distinct training input sets (the paper's n).
TRAINING_RUNS = 5

#: Index of the held-out evaluation input set.
TEST_INDEX = TRAINING_RUNS


@dataclasses.dataclass
class Workload:
    """One benchmark: name, suite, mini-C source, input generator."""

    name: str
    suite: str  # "int" or "fp"
    description: str
    source: str
    make_inputs: InputMaker
    _compiled: Optional[Program] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ValueError(f"{self.name}: suite must be 'int' or 'fp'")

    def compile(self) -> Program:
        """Compile (once) and return the workload binary."""
        if self._compiled is None:
            self._compiled = compile_source(self.source, name=self.name)
        return self._compiled

    def input_set(self, index: int, scale: float = 1.0) -> List[Number]:
        """Deterministic input stream for run ``index``."""
        if index < 0:
            raise ValueError("input set index must be non-negative")
        return self.make_inputs(index, scale)

    def training_inputs(
        self, count: int = TRAINING_RUNS, scale: float = 1.0
    ) -> List[List[Number]]:
        """The ``count`` training input sets."""
        return [self.input_set(index, scale) for index in range(count)]

    def test_inputs(self, scale: float = 1.0) -> List[Number]:
        """The held-out evaluation input set."""
        return self.input_set(TEST_INDEX, scale)


class WorkloadRegistry:
    """Name -> workload map with suite filters."""

    def __init__(self) -> None:
        self._workloads: Dict[str, Workload] = {}

    def register(self, workload: Workload) -> Workload:
        if workload.name in self._workloads:
            raise ValueError(f"duplicate workload {workload.name!r}")
        self._workloads[workload.name] = workload
        return workload

    def get(self, name: str) -> Workload:
        try:
            return self._workloads[name]
        except KeyError:
            known = ", ".join(sorted(self._workloads))
            raise KeyError(f"unknown workload {name!r}; known: {known}") from None

    def names(self, suite: Optional[str] = None) -> List[str]:
        return [
            name
            for name, workload in sorted(self._workloads.items())
            if suite is None or workload.suite == suite
        ]

    def all(self, suite: Optional[str] = None) -> List[Workload]:
        return [self._workloads[name] for name in self.names(suite)]


#: The global registry, populated by the program modules on import.
REGISTRY = WorkloadRegistry()
