"""Deterministic input generation for workload runs.

The paper drives each benchmark with several distinct input files and
parameter sets (n=5 training runs plus evaluation runs).  We reproduce
that with seeded, fully deterministic generators — a tiny linear
congruential generator, independent of Python's :mod:`random` so that
input streams are stable across Python versions.
"""

from __future__ import annotations

from typing import List


class Lcg:
    """A 31-bit linear congruential generator (glibc constants)."""

    MODULUS = 1 << 31
    MULTIPLIER = 1103515245
    INCREMENT = 12345

    def __init__(self, seed: int) -> None:
        self.state = seed % self.MODULUS

    def next(self) -> int:
        """Advance and return the next raw state (0 .. 2^31-1)."""
        self.state = (self.state * self.MULTIPLIER + self.INCREMENT) % self.MODULUS
        return self.state

    def below(self, bound: int) -> int:
        """Uniform-ish integer in [0, bound)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next() % bound

    def in_range(self, low: int, high: int) -> int:
        """Uniform-ish integer in [low, high]."""
        if high < low:
            raise ValueError("empty range")
        return low + self.below(high - low + 1)

    def floats(self, count: int, low: float = 0.0, high: float = 1.0) -> List[float]:
        """A list of floats in [low, high)."""
        span = high - low
        return [low + span * (self.next() / self.MODULUS) for _ in range(count)]

    def integers(self, count: int, bound: int) -> List[int]:
        """A list of integers in [0, bound)."""
        return [self.below(bound) for _ in range(count)]


def scaled(base: int, scale: float, minimum: int = 1) -> int:
    """Scale an iteration/size parameter, clamped below at ``minimum``."""
    return max(minimum, int(round(base * scale)))


def text_stream(seed: int, length: int, alphabet: int = 26) -> List[int]:
    """A skewed pseudo-text stream of small integers (letter codes).

    Letter frequencies are biased (low codes more likely) so compression
    and string workloads see realistic repetition.
    """
    generator = Lcg(seed)
    stream: List[int] = []
    for _ in range(length):
        # Bias toward small codes: min of two draws.
        first = generator.below(alphabet)
        second = generator.below(alphabet)
        stream.append(min(first, second))
    return stream
