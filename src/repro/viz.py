"""Plain-text visualization helpers.

The paper's figures are bar charts and histograms; this module renders
their reproduced data as ASCII so results are inspectable in a terminal
(`python -m repro experiments ... --chart`) or a log file, with no
plotting
dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .experiments.tables import ExperimentTable

#: Default bar width in characters.
BAR_WIDTH = 40


def bar(value: float, maximum: float, width: int = BAR_WIDTH) -> str:
    """A filled bar proportional to ``value / maximum``."""
    if maximum <= 0:
        return ""
    filled = int(round(width * max(0.0, value) / maximum))
    return "█" * min(filled, width)


def signed_bar(value: float, maximum: float, width: int = BAR_WIDTH) -> str:
    """A bar for values that may be negative: ``-###`` vs ``###``."""
    if maximum <= 0:
        return ""
    filled = int(round(width * min(abs(value), maximum) / maximum))
    glyph = "█" if value >= 0 else "▒"
    sign = "" if value >= 0 else "-"
    return sign + glyph * filled


def histogram_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = BAR_WIDTH,
    unit: str = "%",
) -> str:
    """Render one histogram (e.g. a Figure 4.x row) as labelled bars."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    maximum = max(values) if values else 0.0
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        lines.append(
            f"{label:>{label_width}s} {value:6.1f}{unit} {bar(value, maximum, width)}"
        )
    return "\n".join(lines)


def series_chart(
    names: Sequence[str],
    values: Sequence[float],
    width: int = BAR_WIDTH,
    unit: str = "",
) -> str:
    """Render one named series (e.g. per-benchmark ILP gains) as bars.

    Handles negative values (e.g. Figure 5.4's misprediction reductions)
    with a distinct texture.
    """
    if len(names) != len(values):
        raise ValueError("names and values must align")
    maximum = max((abs(value) for value in values), default=0.0)
    name_width = max((len(name) for name in names), default=0)
    lines = []
    for name, value in zip(names, values):
        lines.append(
            f"{name:>{name_width}s} {value:8.1f}{unit} "
            f"{signed_bar(value, maximum, width)}"
        )
    return "\n".join(lines)


def chart_table(table: ExperimentTable, column: Optional[str] = None) -> str:
    """Chart one numeric column of an experiment table by its first column.

    Without ``column``, the last numeric column is used.
    """
    if not table.rows:
        return "(empty table)"
    if column is None:
        numeric = [
            header
            for index, header in enumerate(table.headers[1:], start=1)
            if all(isinstance(row[index], (int, float)) for row in table.rows)
        ]
        if not numeric:
            raise ValueError("table has no numeric column to chart")
        column = numeric[-1]
    names = [str(row[0]) for row in table.rows]
    values = [float(value) for value in table.column(column)]
    header = f"{table.experiment_id}: {column}"
    return header + "\n" + series_chart(names, values)


def chart_histogram_rows(table: ExperimentTable) -> str:
    """Chart every row of an interval-histogram table (Figures 2.x/4.x)."""
    blocks: List[str] = []
    labels = table.headers[1:]
    for row in table.rows:
        name = str(row[0])
        values = [float(value) for value in row[1:]]
        blocks.append(f"-- {name} --\n{histogram_chart(labels, values)}")
    return "\n\n".join(blocks)
