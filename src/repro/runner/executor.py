"""Serial and process-pool execution of a :class:`JobGraph`.

The scheduler walks the graph in dependency order.  For every job it
first probes the :class:`~repro.runner.cache.ArtifactCache` (a hit costs
a decode and is reported as ``cached``); misses are computed — inline in
the parent for serial runs and ``inline`` jobs, otherwise fanned out to
a :class:`concurrent.futures.ProcessPoolExecutor`.  Pool jobs receive
the encoded payloads of their dependencies, so the disk cache is an
optimization, never a correctness requirement.

Determinism: jobs are launched in graph (topological/insertion) order,
results are keyed by job id, and tables are returned by experiment id —
completion order never influences output.  Every job gets a
:class:`JobRecord` with wall-clock seconds and cache provenance; the CLI
turns these into progress and timing lines.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import inspect
import os
import time
from typing import Dict, List, Optional, TextIO

from ..telemetry import get_registry
from . import keys, serialize, worker
from .jobs import Job, JobGraph


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """Outcome bookkeeping for one executed job."""

    job_id: str
    kind: str
    label: str
    seconds: float
    cached: bool


@dataclasses.dataclass
class ExecutionOutcome:
    """Everything :func:`execute_graph` produced."""

    records: List[JobRecord] = dataclasses.field(default_factory=list)
    tables: Dict[str, object] = dataclasses.field(default_factory=dict)
    values: Dict[str, object] = dataclasses.field(default_factory=dict)

    def record_for(self, job_id: str) -> Optional[JobRecord]:
        for record in self.records:
            if record.job_id == job_id:
                return record
        return None

    @property
    def cached_jobs(self) -> int:
        return sum(1 for record in self.records if record.cached)

    @property
    def computed_seconds(self) -> float:
        return sum(record.seconds for record in self.records if not record.cached)


def resolve_jobs(jobs: Optional[int]) -> int:
    """``--jobs`` semantics: ``None``/``1`` serial, ``<= 0`` all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _job_cache_key(job: Job, context) -> Optional[str]:
    """The content-address of a job's artifact (``None`` = never cached).

    Compile and annotate cells are cheap derivations of cached inputs
    and are recomputed; everything expensive is keyed.
    """
    scale = context.scale
    runs = context.training_runs
    stride = context.stride_threshold
    if job.kind == "profile":
        return keys.profile_key(job.name, job.params[0], scale)
    from ..experiments.context import THRESHOLDS

    if job.kind == "classify":
        return keys.classify_key(job.name, scale, runs, THRESHOLDS, stride)
    if job.kind == "finite":
        entries, ways = job.params
        return keys.finite_key(
            job.name, scale, runs, THRESHOLDS, stride, entries, ways
        )
    if job.kind == "ilp":
        entries, ways = job.params
        return keys.ilp_key(
            job.name, scale, runs, THRESHOLDS, stride, entries, ways, None
        )
    if job.kind == "experiment":
        from ..experiments.runner import MODULES
        from ..workloads import REGISTRY

        return keys.experiment_key(
            job.name,
            inspect.getsource(MODULES[job.name]),
            scale,
            runs,
            stride,
            REGISTRY.names(),
        )
    return None


def execute_graph(
    graph: JobGraph,
    context,
    *,
    jobs: Optional[int] = 1,
    progress: Optional[TextIO] = None,
) -> ExecutionOutcome:
    """Run every job in ``graph`` against ``context``.

    With ``jobs > 1``, independent jobs run in a process pool; the
    parent context ends up primed with every artifact either way, so
    callers can keep using it (e.g. for follow-up experiments) exactly
    as after a serial run.
    """
    workers = resolve_jobs(jobs)
    order = graph.order()
    position = {job.job_id: rank for rank, job in enumerate(order)}
    waiting = {job.job_id: len(job.deps) for job in order}
    dependents: Dict[str, List[str]] = {job.job_id: [] for job in order}
    for job in order:
        for dep in job.deps:
            dependents[dep].append(job.job_id)

    telemetry = get_registry()
    outcome = ExecutionOutcome()
    encoded: Dict[str, str] = {}
    artifacts = context.artifacts
    spec = worker.context_spec(context)
    total = len(order)
    done = 0
    ready = [job.job_id for job in order if not job.deps]
    #: job id -> moment it became runnable (for queue-latency telemetry).
    ready_at: Dict[str, float] = {job_id: time.perf_counter() for job_id in ready}

    use_pool = workers > 1 and any(not job.inline for job in order)
    pool = (
        concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        if use_pool
        else None
    )
    futures: Dict[concurrent.futures.Future, tuple] = {}

    def finish(job: Job, value, payload: Optional[str], seconds: float, cached: bool):
        nonlocal done
        done += 1
        outcome.values[job.job_id] = value
        if payload is not None:
            encoded[job.job_id] = payload
        if job.kind == "experiment":
            outcome.tables[job.name] = value
        record = JobRecord(job.job_id, job.kind, job.label(), seconds, cached)
        outcome.records.append(record)
        if telemetry.enabled:
            telemetry.counter("runner.jobs").add(1)
            if cached:
                telemetry.counter("runner.jobs_cached").add(1)
            else:
                telemetry.timer(f"runner.job.{job.kind}").add(seconds)
            became_ready = ready_at.pop(job.job_id, None)
            if became_ready is not None:
                telemetry.timer("runner.queue_wait").add(
                    time.perf_counter() - became_ready - seconds
                )
        if progress is not None:
            suffix = " (cached)" if cached else ""
            print(
                f"[{done:>3}/{total}] {job.label()}: {seconds:.2f}s{suffix}",
                file=progress,
                flush=True,
            )
        for dependent in dependents[job.job_id]:
            waiting[dependent] -= 1
            if waiting[dependent] == 0:
                ready.append(dependent)
                ready_at[dependent] = time.perf_counter()

    def from_cache(job: Job, key: Optional[str]) -> bool:
        if artifacts is None or key is None:
            return False
        extension = serialize.EXTENSIONS[job.kind]
        payload = artifacts.load(job.kind, key, extension)
        if payload is None:
            return False
        started = time.perf_counter()
        try:
            value = serialize.decode(job.kind, payload)
        except serialize.PayloadError:
            # Corrupt entry: drop it and fall back to recomputing.
            artifacts.discard(job.kind, key, extension)
            return False
        worker.prime(context, job, value)
        finish(job, value, payload, time.perf_counter() - started, True)
        return True

    def compute_inline(job: Job, key: Optional[str]) -> None:
        started = time.perf_counter()
        value = worker.compute_value(job, context)
        store_table = (
            job.kind == "experiment" and artifacts is not None and key is not None
        )
        payload = None
        if pool is not None or store_table:
            payload = serialize.encode(job.kind, value)
        if store_table:
            artifacts.store(job.kind, key, payload, serialize.EXTENSIONS[job.kind])
        finish(job, value, payload, time.perf_counter() - started, False)

    try:
        while done < total:
            ready.sort(key=position.__getitem__)
            while ready:
                job = graph[ready.pop(0)]
                key = _job_cache_key(job, context)
                if from_cache(job, key):
                    continue
                if pool is None or job.inline:
                    compute_inline(job, key)
                    continue
                dep_items = tuple(
                    (graph[dep], encoded[dep])
                    for dep in job.deps
                    if graph[dep].kind != "compile" and dep in encoded
                )
                future = pool.submit(worker.run_pool_job, spec, job, dep_items)
                futures[future] = (job, key)
            if not futures:
                if done < total:
                    stuck = [j.job_id for j in order if j.job_id not in outcome.values]
                    raise RuntimeError(f"job graph deadlock; unrunnable: {stuck}")
                break
            completed, _ = concurrent.futures.wait(
                futures, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in completed:
                job, key = futures.pop(future)
                try:
                    seconds, payload, worker_metrics = future.result()
                except Exception as error:
                    raise RuntimeError(
                        f"job {job.job_id} failed in worker: {error}"
                    ) from error
                if worker_metrics is not None:
                    # Re-root the worker's spans under the coordinator's
                    # active span so nesting survives the process pool.
                    telemetry.merge(
                        worker_metrics, prefix=telemetry.current_path or None
                    )
                value = serialize.decode(job.kind, payload)
                worker.prime(context, job, value)
                if artifacts is not None and key is not None and job.kind == "experiment":
                    artifacts.store(
                        job.kind, key, payload, serialize.EXTENSIONS[job.kind]
                    )
                finish(job, value, payload, seconds, False)
    finally:
        if pool is not None:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=True, cancel_futures=True)
    return outcome
