"""Serial and process-pool execution of a :class:`JobGraph`.

The scheduler walks the graph in dependency order.  For every job it
first probes the :class:`~repro.runner.cache.ArtifactCache` (a hit costs
a decode and is reported as ``cached``); misses are computed — inline in
the parent for serial runs and ``inline`` jobs, otherwise fanned out to
a :class:`concurrent.futures.ProcessPoolExecutor`.  Pool jobs receive
the encoded payloads of their dependencies, so the disk cache is an
optimization, never a correctness requirement.

Fault tolerance: every attempt is fallible.  A worker exception, a
corrupt result payload, a timed-out attempt or a crashed worker process
each count as one *failed attempt* against the run's
:class:`~repro.runner.retry.RetryPolicy`; the job is resubmitted with
deterministic backoff until the policy is exhausted.  A broken pool is
rebuilt and the jobs that were merely in flight at the time are
resubmitted without being charged an attempt.  When a job does exhaust
its retries the run *degrades* instead of aborting: the job's
transitive dependents are marked skipped, independent jobs still
complete, and the outcome carries a structured
:class:`~repro.runner.retry.RunReport` (per-job status, attempts,
durations, causes) in place of a stack trace.  Deterministic fault
injection for all of these paths lives in :mod:`repro.runner.faults`.

Determinism: jobs are launched in graph (topological/insertion) order,
results are keyed by job id, and tables are returned by experiment id —
completion order never influences output.  Every job gets a
:class:`JobRecord` with wall-clock seconds and cache provenance; the CLI
turns these into progress and timing lines.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import heapq
import inspect
import os
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, TextIO, Tuple

from ..telemetry import get_registry
from . import faults, keys, serialize, worker
from .jobs import Job, JobGraph
from .retry import CACHED, FAILED, OK, SKIPPED, JobReport, RetryPolicy, RunReport


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """Outcome bookkeeping for one executed job."""

    job_id: str
    kind: str
    label: str
    seconds: float
    cached: bool
    status: str = OK
    attempts: int = 1


@dataclasses.dataclass
class ExecutionOutcome:
    """Everything :func:`execute_graph` produced."""

    records: List[JobRecord] = dataclasses.field(default_factory=list)
    tables: Dict[str, object] = dataclasses.field(default_factory=dict)
    values: Dict[str, object] = dataclasses.field(default_factory=dict)
    report: Optional[RunReport] = None

    def record_for(self, job_id: str) -> Optional[JobRecord]:
        for record in self.records:
            if record.job_id == job_id:
                return record
        return None

    @property
    def cached_jobs(self) -> int:
        return sum(1 for record in self.records if record.cached)

    @property
    def computed_seconds(self) -> float:
        return sum(record.seconds for record in self.records if not record.cached)


def resolve_jobs(jobs: Optional[int]) -> int:
    """``--jobs`` semantics: ``None``/``1`` serial, ``<= 0`` all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _job_cache_key(job: Job, context) -> Optional[str]:
    """The content-address of a job's artifact (``None`` = never cached).

    Compile and annotate cells are cheap derivations of cached inputs
    and are recomputed; everything expensive is keyed.
    """
    scale = context.scale
    runs = context.training_runs
    stride = context.stride_threshold
    if job.kind == "profile":
        return keys.profile_key(job.name, job.params[0], scale)
    from ..experiments.context import THRESHOLDS

    if job.kind == "classify":
        return keys.classify_key(job.name, scale, runs, THRESHOLDS, stride)
    if job.kind == "finite":
        entries, ways = job.params
        return keys.finite_key(
            job.name, scale, runs, THRESHOLDS, stride, entries, ways
        )
    if job.kind == "ilp":
        entries, ways = job.params
        return keys.ilp_key(
            job.name, scale, runs, THRESHOLDS, stride, entries, ways, None
        )
    if job.kind == "experiment":
        from ..experiments.runner import MODULES
        from ..workloads import REGISTRY

        return keys.experiment_key(
            job.name,
            inspect.getsource(MODULES[job.name]),
            scale,
            runs,
            stride,
            REGISTRY.names(),
        )
    return None


def _describe(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


def execute_graph(
    graph: JobGraph,
    context,
    *,
    jobs: Optional[int] = 1,
    progress: Optional[TextIO] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan=None,
) -> ExecutionOutcome:
    """Run every job in ``graph`` against ``context``.

    With ``jobs > 1``, independent jobs run in a process pool; the
    parent context ends up primed with every artifact either way, so
    callers can keep using it (e.g. for follow-up experiments) exactly
    as after a serial run.

    ``retry`` governs per-job resubmission and timeouts (default: one
    attempt, no timeout).  ``fault_plan`` accepts anything
    :func:`repro.runner.faults.resolve_plan` does and injects
    deterministic faults for testing the recovery paths.  The returned
    outcome always carries ``outcome.report`` — a
    :class:`~repro.runner.retry.RunReport` in graph order; jobs that
    exhausted their retries appear there as ``failed`` and their
    transitive dependents as ``skipped`` rather than raising.
    """
    policy = retry or RetryPolicy()
    plan = faults.resolve_plan(fault_plan, graph)
    workers = resolve_jobs(jobs)
    order = graph.order()
    position = {job.job_id: rank for rank, job in enumerate(order)}
    waiting = {job.job_id: len(job.deps) for job in order}
    dependents = graph.dependents()

    telemetry = get_registry()
    outcome = ExecutionOutcome()
    encoded: Dict[str, str] = {}
    artifacts = context.artifacts
    spec = worker.context_spec(context)
    total = len(order)
    done = 0
    ready = [job.job_id for job in order if not job.deps]
    #: job id -> moment it became runnable (for queue-latency telemetry).
    ready_at: Dict[str, float] = {job_id: time.perf_counter() for job_id in ready}
    #: Moment execution capacity last freed up.  ``runner.queue_wait``
    #: charges each job only the time it sat runnable *beyond* resource
    #: saturation — launch minus max(became ready, capacity freed) — so
    #: the summed metric is scheduler-induced dispatch latency and stays
    #: bounded by wall clock, instead of re-counting every other job's
    #: compute time the way finish-time accounting would.
    capacity_freed_at = time.perf_counter()

    #: Attempts launched, failure causes, and seconds burned per job.
    attempts: Dict[str, int] = {job.job_id: 0 for job in order}
    causes: Dict[str, List[str]] = {job.job_id: [] for job in order}
    spent: Dict[str, float] = {job.job_id: 0.0 for job in order}
    #: Terminal status per job; presence means the job is settled.
    status: Dict[str, str] = {}
    #: Pool breaks suffered per job while merely in flight (loop guard).
    pool_breaks: Dict[str, int] = {}
    #: Min-heap of (resume_time, graph rank, job_id) backoff retries.
    delayed: List[Tuple[float, int, str]] = []
    retries_count = timeouts_count = rebuilds_count = 0

    use_pool = workers > 1 and any(not job.inline for job in order)
    old_plan_env = None
    if plan is not None and use_pool:
        # Workers inherit the environment at spawn; both the initial pool
        # and any rebuilt pool therefore see the same schedule.
        old_plan_env = os.environ.get(faults.ENV_VAR)
        os.environ[faults.ENV_VAR] = plan.to_json()

    def new_pool():
        return concurrent.futures.ProcessPoolExecutor(max_workers=workers)

    pool = new_pool() if use_pool else None
    #: future -> (job, cache key, attempt number, timeout deadline).
    futures: Dict[concurrent.futures.Future, tuple] = {}

    def discard_pool(*, kill: bool) -> None:
        """Tear the pool down; ``kill`` reclaims hung/stuck workers."""
        if kill:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.kill()
                except Exception:
                    pass
        pool.shutdown(wait=True, cancel_futures=True)

    def finish(job: Job, value, payload: Optional[str], seconds: float, cached: bool):
        nonlocal done, capacity_freed_at
        done += 1
        status[job.job_id] = CACHED if cached else OK
        outcome.values[job.job_id] = value
        if payload is not None:
            encoded[job.job_id] = payload
        if job.kind == "experiment":
            outcome.tables[job.name] = value
        record = JobRecord(
            job.job_id,
            job.kind,
            job.label(),
            seconds,
            cached,
            status=status[job.job_id],
            attempts=attempts[job.job_id],
        )
        outcome.records.append(record)
        capacity_freed_at = time.perf_counter()
        ready_at.pop(job.job_id, None)
        if telemetry.enabled:
            telemetry.counter("runner.jobs").add(1)
            if cached:
                telemetry.counter("runner.jobs_cached").add(1)
            else:
                telemetry.timer(f"runner.job.{job.kind}").add(seconds)
        if progress is not None:
            suffix = " (cached)" if cached else ""
            print(
                f"[{done:>3}/{total}] {job.label()}: {seconds:.2f}s{suffix}",
                file=progress,
                flush=True,
            )
        for dependent in dependents[job.job_id]:
            waiting[dependent] -= 1
            if waiting[dependent] == 0:
                ready.append(dependent)
                ready_at[dependent] = time.perf_counter()

    def mark_terminal(job: Job, job_status: str, cause: Optional[str]) -> None:
        """Settle ``job`` as failed/skipped (degraded, not raised)."""
        nonlocal done, capacity_freed_at
        done += 1
        capacity_freed_at = time.perf_counter()
        status[job.job_id] = job_status
        if cause:
            causes[job.job_id].append(cause)
        ready_at.pop(job.job_id, None)
        outcome.records.append(
            JobRecord(
                job.job_id,
                job.kind,
                job.label(),
                spent[job.job_id],
                False,
                status=job_status,
                attempts=attempts[job.job_id],
            )
        )
        if telemetry.enabled:
            telemetry.counter(f"runner.jobs_{job_status}").add(1)
        if progress is not None:
            last_cause = causes[job.job_id][-1] if causes[job.job_id] else ""
            detail = f" ({last_cause})" if last_cause else ""
            print(
                f"[{done:>3}/{total}] {job.label()}: {job_status.upper()}{detail}",
                file=progress,
                flush=True,
            )

    def fail_job(job: Job) -> None:
        """Exhausted retries: fail ``job``, skip its transitive dependents."""
        mark_terminal(job, FAILED, None)
        for dependent_id in graph.transitive_dependents(job.job_id, table=dependents):
            if dependent_id in status:
                continue
            mark_terminal(
                graph[dependent_id],
                SKIPPED,
                f"dependency {job.job_id} failed",
            )

    def attempt_failed(
        job: Job, attempt: int, cause: str, *, timed_out: bool = False
    ) -> None:
        nonlocal retries_count, timeouts_count, capacity_freed_at
        capacity_freed_at = time.perf_counter()
        causes[job.job_id].append(f"attempt {attempt}: {cause}")
        if timed_out:
            timeouts_count += 1
            if telemetry.enabled:
                telemetry.counter("runner.timeouts").add(1)
        if attempt < policy.max_attempts:
            retries_count += 1
            if telemetry.enabled:
                telemetry.counter("runner.retries").add(1)
            resume = time.perf_counter() + policy.backoff_seconds(job.job_id, attempt)
            heapq.heappush(delayed, (resume, position[job.job_id], job.job_id))
        else:
            fail_job(job)

    def from_cache(job: Job, key: Optional[str]) -> bool:
        if artifacts is None or key is None:
            return False
        extension = serialize.EXTENSIONS[job.kind]
        payload = artifacts.load(job.kind, key, extension)
        if payload is None:
            return False
        started = time.perf_counter()
        try:
            value = serialize.decode(job.kind, payload)
        except serialize.PayloadError as error:
            # Corrupt entry: drop it and recompute through the normal
            # launch path, i.e. under the run's retry policy.
            artifacts.discard(job.kind, key, extension)
            if telemetry.enabled:
                telemetry.counter("runner.cache.corrupt").add(1)
                telemetry.emit(
                    "runner.cache.corrupt", job_id=job.job_id, kind=job.kind, key=key
                )
            return False
        worker.prime(context, job, value)
        finish(job, value, payload, time.perf_counter() - started, True)
        return True

    def compute_inline(job: Job, key: Optional[str], attempt: int) -> None:
        started = time.perf_counter()
        try:
            if plan is not None:
                plan.fire(job.job_id, attempt, in_worker=False)
            with telemetry.span(f"attempt:{job.kind}"):
                value = worker.compute_value(job, context)
        except Exception as error:
            spent[job.job_id] += time.perf_counter() - started
            attempt_failed(job, attempt, _describe(error))
            return
        store_table = (
            job.kind == "experiment" and artifacts is not None and key is not None
        )
        payload = None
        if pool is not None or store_table:
            payload = serialize.encode(job.kind, value)
        if store_table:
            artifacts.store(job.kind, key, payload, serialize.EXTENSIONS[job.kind])
        finish(job, value, payload, time.perf_counter() - started, False)

    def settle(job: Job, key: Optional[str], attempt: int, result: tuple) -> None:
        """Handle a pool attempt that returned: decode, prime, record."""
        seconds, payload, worker_metrics = result
        try:
            value = serialize.decode(job.kind, payload)
        except serialize.PayloadError as error:
            # Worker metrics from a failed attempt are deliberately not
            # merged: totals reflect committed results only, which keeps
            # a recovered faulty run's telemetry equal to a clean run's.
            spent[job.job_id] += seconds
            attempt_failed(job, attempt, f"corrupt result payload: {error}")
            return
        if worker_metrics is not None:
            # Re-root the worker's spans under the coordinator's active
            # span so nesting survives the process pool.
            telemetry.merge(worker_metrics, prefix=telemetry.current_path or None)
        worker.prime(context, job, value)
        if artifacts is not None and key is not None and job.kind == "experiment":
            artifacts.store(job.kind, key, payload, serialize.EXTENSIONS[job.kind])
        finish(job, value, payload, seconds, False)

    def requeue_in_flight(in_flight: List[tuple], *, expired: frozenset) -> None:
        """Re-dispatch jobs that were in flight when the pool went down.

        Jobs whose deadline expired and jobs whose schedule says this
        attempt crashed are the culprits — they are charged a failed
        attempt.  Everything else was an innocent bystander and is
        resubmitted without being charged, guarded by a per-job break
        budget so a repeatedly crashing pool cannot loop forever.
        """
        for future, (job, key, attempt, deadline) in in_flight:
            if job.job_id in status:
                continue
            error = future.exception() if future.done() and not future.cancelled() else None
            if future.done() and not future.cancelled() and error is None:
                settle(job, key, attempt, future.result())
                continue
            if error is not None and not isinstance(error, BrokenProcessPool):
                attempt_failed(job, attempt, _describe(error))
                continue
            if future in expired:
                spent[job.job_id] += policy.job_timeout or 0.0
                attempt_failed(
                    job,
                    attempt,
                    f"timed out after {policy.job_timeout:g}s",
                    timed_out=True,
                )
                continue
            fault = plan.fault_for(job.job_id, attempt) if plan is not None else None
            if fault is not None and fault.kind == "crash":
                attempt_failed(job, attempt, "worker process crashed (injected fault)")
                continue
            pool_breaks[job.job_id] = pool_breaks.get(job.job_id, 0) + 1
            if pool_breaks[job.job_id] > policy.max_attempts:
                causes[job.job_id].append(
                    f"attempt {attempt}: worker pool broke repeatedly "
                    f"with this job in flight"
                )
                fail_job(job)
            else:
                attempts[job.job_id] -= 1
                ready.append(job.job_id)

    def rebuild_pool(*, expired: frozenset = frozenset()) -> None:
        nonlocal pool, rebuilds_count
        rebuilds_count += 1
        if telemetry.enabled:
            telemetry.counter("runner.pool_rebuilds").add(1)
        in_flight = list(futures.items())
        futures.clear()
        discard_pool(kill=True)
        pool = new_pool()
        requeue_in_flight(in_flight, expired=expired)

    def submit(job: Job, key: Optional[str], attempt: int) -> None:
        dep_items = tuple(
            (graph[dep], encoded[dep])
            for dep in job.deps
            if graph[dep].kind != "compile" and dep in encoded
        )
        deadline = (
            time.perf_counter() + policy.job_timeout if policy.job_timeout else None
        )
        try:
            future = pool.submit(worker.run_pool_job, spec, job, dep_items, attempt)
        except BrokenProcessPool:
            # The pool died since the last wait; recover the in-flight
            # jobs, rebuild, and resubmit on the fresh pool.
            rebuild_pool()
            future = pool.submit(worker.run_pool_job, spec, job, dep_items, attempt)
        futures[future] = (job, key, attempt, deadline)

    def launch(job: Job, key: Optional[str]) -> None:
        attempts[job.job_id] += 1
        attempt = attempts[job.job_id]
        if telemetry.enabled and attempt == 1:
            became_ready = ready_at.get(job.job_id)
            if became_ready is not None:
                telemetry.timer("runner.queue_wait").add(
                    max(
                        0.0,
                        time.perf_counter()
                        - max(became_ready, capacity_freed_at),
                    )
                )
        if pool is None or job.inline:
            compute_inline(job, key, attempt)
        else:
            submit(job, key, attempt)

    def check_timeouts() -> None:
        if not policy.job_timeout or not futures:
            return
        now = time.perf_counter()
        expired = frozenset(
            future
            for future, (_, _, _, deadline) in futures.items()
            if deadline is not None and deadline <= now and not future.done()
        )
        if expired:
            # A running task cannot be cancelled; reclaim the stuck
            # worker(s) by rebuilding the pool.
            rebuild_pool(expired=expired)

    def deadlock_error() -> RuntimeError:
        pending = [job for job in order if job.job_id not in status]
        details = []
        for job in pending:
            unmet = [dep for dep in job.deps if dep not in outcome.values]
            details.append(f"{job.job_id} (waiting on: {', '.join(unmet) or '?'})")
        failed = sorted(
            job_id for job_id, job_status in status.items() if job_status == FAILED
        )
        root = (
            f"; root-cause failed jobs: {', '.join(failed)}"
            if failed
            else "; no failed jobs — the graph is malformed (dependency cycle?)"
        )
        return RuntimeError(
            f"job graph deadlock; unrunnable: {'; '.join(details)}{root}"
        )

    try:
        while done < total:
            now = time.perf_counter()
            while delayed and delayed[0][0] <= now:
                _, _, job_id = heapq.heappop(delayed)
                if job_id not in status:
                    ready.append(job_id)
                    ready_at[job_id] = now
            ready.sort(key=position.__getitem__)
            # Pool submissions are throttled to the worker count so that
            # submit time ≈ start time: per-attempt deadlines then bound
            # compute, not time spent queued behind busy workers, and a
            # pool break touches at most ``workers`` in-flight jobs.
            index = 0
            while index < len(ready):
                job_id = ready[index]
                job = graph[job_id]
                if job_id in status:
                    ready.pop(index)
                    continue
                if pool is not None and not job.inline and len(futures) >= workers:
                    index += 1
                    continue
                ready.pop(index)
                key = _job_cache_key(job, context)
                if attempts[job_id] == 0 and from_cache(job, key):
                    continue
                launch(job, key)
            if done >= total:
                break
            if not futures and not delayed:
                raise deadlock_error()
            # Wake for the first of: a completion, a due backoff retry,
            # or the nearest attempt deadline.
            now = time.perf_counter()
            wake = delayed[0][0] if delayed else None
            if policy.job_timeout:
                deadlines = [
                    meta[3] for meta in futures.values() if meta[3] is not None
                ]
                if deadlines:
                    nearest = min(deadlines)
                    wake = nearest if wake is None else min(wake, nearest)
            if futures:
                timeout = None if wake is None else max(0.0, wake - now)
                completed, _ = concurrent.futures.wait(
                    futures,
                    timeout=timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in completed:
                    if future not in futures:
                        continue
                    job, key, attempt, deadline = futures.pop(future)
                    error = future.exception()
                    if error is None:
                        settle(job, key, attempt, future.result())
                    elif isinstance(error, BrokenProcessPool):
                        # Put it back: recovery classifies every
                        # in-flight job (culprit vs bystander) at once.
                        futures[future] = (job, key, attempt, deadline)
                        rebuild_pool()
                        break
                    else:
                        attempt_failed(job, attempt, _describe(error))
                check_timeouts()
            elif wake is not None:
                time.sleep(max(0.0, wake - now))
    finally:
        if pool is not None:
            for future in futures:
                future.cancel()
            had_stuck = any(not future.done() for future in futures)
            discard_pool(kill=had_stuck)
        if plan is not None and use_pool:
            if old_plan_env is None:
                os.environ.pop(faults.ENV_VAR, None)
            else:
                os.environ[faults.ENV_VAR] = old_plan_env

    records_by_id = {record.job_id: record for record in outcome.records}
    outcome.report = RunReport(
        jobs=[
            JobReport(
                job_id=job.job_id,
                kind=job.kind,
                label=job.label(),
                status=records_by_id[job.job_id].status,
                attempts=attempts[job.job_id],
                seconds=spent[job.job_id]
                + (
                    records_by_id[job.job_id].seconds
                    if records_by_id[job.job_id].status in (OK, CACHED)
                    else 0.0
                ),
                causes=tuple(causes[job.job_id]),
            )
            for job in order
        ],
        retries=retries_count,
        timeouts=timeouts_count,
        pool_rebuilds=rebuilds_count,
    )
    return outcome
