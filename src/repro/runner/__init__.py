"""The parallel experiment engine.

The full experiment suite decomposes into independent *cells* — compile a
workload, profile one training run, merge-and-annotate at a threshold,
simulate a (benchmark × engine-set) grid, schedule it on the ILP machine
— with explicit dependencies between them.  This package expresses the
suite as a :class:`JobGraph` of such cells, fans it out across cores with
a :class:`concurrent.futures.ProcessPoolExecutor`, and persists every
expensive artifact in a content-addressed on-disk :class:`ArtifactCache`
so that a repeated run is nearly free and single-figure reruns reuse
sibling work.

Layering (no module imports upward):

* :mod:`~repro.runner.cache` — the content-addressed store (stdlib only).
* :mod:`~repro.runner.keys` — SHA-256 cache keys from program text +
  input streams + configuration.
* :mod:`~repro.runner.serialize` — payload codecs: profile images and
  annotated binaries travel in their on-disk text formats,
  ``PredictionStats`` / ``IlpResult`` grids and experiment tables as JSON
  / TSV.
* :mod:`~repro.runner.jobs` — the job graph and its builder.
* :mod:`~repro.runner.retry` — :class:`RetryPolicy` (attempts, per-job
  timeouts, deterministic backoff jitter) and the structured
  :class:`RunReport` every run ends with.
* :mod:`~repro.runner.faults` — seeded, env-propagated
  :class:`FaultPlan` schedules (crash / hang / corrupt / transient) for
  deterministic fault injection.
* :mod:`~repro.runner.worker` — the picklable job entry points executed
  in pool processes.
* :mod:`~repro.runner.executor` — serial and process-pool scheduling
  with retries, timeout-driven pool rebuilds and graceful degradation;
  per-job timing, progress lines, deterministic result ordering.

Typical use (what ``python -m repro experiments`` does)::

    from repro.experiments import ExperimentContext
    from repro.runner import build_experiment_graph, execute_graph

    context = ExperimentContext(scale=0.3, cache_dir="~/.cache/repro")
    graph = build_experiment_graph(["fig-5.1", "table-5.2"], context)
    outcome = execute_graph(graph, context, jobs=4)
    for record in outcome.records:
        print(record.job_id, record.seconds, record.cached)
    print(outcome.tables["table-5.2"].format())
"""

from .cache import ArtifactCache, default_cache_dir
from .faults import Fault, FaultPlan, TransientFault, resolve_plan
from .jobs import CELL_KINDS, Job, JobGraph, build_experiment_graph
from .retry import JobReport, RetryPolicy, RunFailure, RunReport

__all__ = [
    "ArtifactCache",
    "CELL_KINDS",
    "ExecutionOutcome",
    "Fault",
    "FaultPlan",
    "Job",
    "JobGraph",
    "JobRecord",
    "JobReport",
    "RetryPolicy",
    "RunFailure",
    "RunReport",
    "TransientFault",
    "build_experiment_graph",
    "default_cache_dir",
    "execute_graph",
    "resolve_plan",
]


def __getattr__(name: str):
    # The executor pulls in the experiments layer (for table codecs and
    # the worker entry points); import it lazily so that the cache/key
    # layers stay importable from `repro.experiments.context` without a
    # cycle.
    if name in ("execute_graph", "ExecutionOutcome", "JobRecord"):
        from . import executor

        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
