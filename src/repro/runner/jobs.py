"""The experiment job graph.

The suite decomposes into independent *cells* with explicit
dependencies::

    compile(w)                                   [inline: parent process]
      └─ profile(w, run)                         one per training run
           └─ annotate(w, threshold)             merge + directive insertion
                ├─ classify(w)                   Figs 5.1/5.2 grid
                ├─ finite(w, entries, ways)      Figs 5.3/5.4 grid
                └─ ilp(w, entries, ways)         Table 5.2 grid
    experiment(id)                               one per requested table

Each experiment module declares which cell kinds it consumes in a
module-level ``CELLS`` tuple (e.g. ``CELLS = ("classify",)`` for
Figure 5.1); the builder instantiates the union of the requested cells
across the Table 4.1 benchmarks and makes each experiment job depend on
the closure of its kinds, so a pool worker running the experiment
receives every primed artifact it needs and recomputes nothing.
Experiments with ``CELLS = ()`` (bespoke studies like the ablations) run
self-contained in their own worker.

Compile jobs are marked ``inline``: the parent needs every program text
anyway to compute cache keys, and compilation is memoized per process,
so shipping it to a worker would only add overhead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

#: Cell kinds an experiment module may declare in its ``CELLS`` tuple.
CELL_KINDS = ("profile", "annotate", "classify", "finite", "ilp")

#: Transitive closure of artifacts implied by each cell kind.
KIND_CLOSURE = {
    "profile": ("profile",),
    "annotate": ("profile", "annotate"),
    "classify": ("profile", "annotate", "classify"),
    "finite": ("profile", "annotate", "finite"),
    "ilp": ("profile", "annotate", "ilp"),
}


@dataclasses.dataclass(frozen=True)
class Job:
    """One schedulable unit of work.

    ``name`` is the workload name for cell jobs and the experiment id
    for experiment jobs; ``params`` carries kind-specific values (run
    index, threshold, table geometry).  Jobs are immutable and picklable
    — they travel to pool workers alongside their dependency payloads.
    """

    job_id: str
    kind: str
    name: str
    params: Tuple = ()
    deps: Tuple[str, ...] = ()
    inline: bool = False

    def label(self) -> str:
        """Human-readable form for progress lines."""
        if self.kind == "profile":
            return f"profile({self.name}, run {self.params[0]})"
        if self.kind == "annotate":
            return f"annotate({self.name}, th={self.params[0]:g})"
        if self.kind in ("finite", "ilp"):
            entries, ways = self.params[:2]
            return f"{self.kind}({self.name}, {entries}x{ways})"
        return f"{self.kind}({self.name})"


class JobGraph:
    """An insertion-ordered DAG of :class:`Job` objects."""

    def __init__(self) -> None:
        self.jobs: Dict[str, Job] = {}

    def add(self, job: Job) -> Job:
        existing = self.jobs.get(job.job_id)
        if existing is not None:
            return existing
        for dep in job.deps:
            if dep not in self.jobs:
                raise ValueError(f"{job.job_id}: unknown dependency {dep!r}")
        self.jobs[job.job_id] = job
        return job

    def order(self) -> List[Job]:
        """Jobs in insertion order (a valid topological order)."""
        return list(self.jobs.values())

    def dependents(self) -> Dict[str, List[str]]:
        """job id -> the ids that list it as a direct dependency."""
        table: Dict[str, List[str]] = {job_id: [] for job_id in self.jobs}
        for job in self.jobs.values():
            for dep in job.deps:
                table[dep].append(job.job_id)
        return table

    def transitive_dependents(
        self, job_id: str, table: Optional[Dict[str, List[str]]] = None
    ) -> List[str]:
        """Every job downstream of ``job_id``, in insertion order.

        This is the skip set when ``job_id`` fails: nothing in it can
        ever run.  Pass a precomputed :meth:`dependents` ``table`` to
        amortize the reverse-edge scan across calls.
        """
        if table is None:
            table = self.dependents()
        reached = set()
        frontier = list(table[job_id])
        while frontier:
            current = frontier.pop()
            if current in reached:
                continue
            reached.add(current)
            frontier.extend(table[current])
        return [job.job_id for job in self.jobs.values() if job.job_id in reached]

    def __len__(self) -> int:
        return len(self.jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self.jobs

    def __getitem__(self, job_id: str) -> Job:
        return self.jobs[job_id]


def compile_id(name: str) -> str:
    return f"compile:{name}"


def profile_id(name: str, run_index: int) -> str:
    return f"profile:{name}:{run_index}"


def annotate_id(name: str, threshold: float) -> str:
    return f"annotate:{name}:{threshold:g}"


def classify_id(name: str) -> str:
    return f"classify:{name}"


def finite_id(name: str, entries: int, ways: int) -> str:
    return f"finite:{name}:{entries}:{ways}"


def ilp_id(name: str, entries: int, ways: int) -> str:
    return f"ilp:{name}:{entries}:{ways}"


def experiment_id(identifier: str) -> str:
    return f"experiment:{identifier}"


def experiment_cells(module) -> Tuple[str, ...]:
    """The ``CELLS`` declaration of an experiment module (default none)."""
    cells = tuple(getattr(module, "CELLS", ()))
    unknown = [kind for kind in cells if kind not in CELL_KINDS]
    if unknown:
        raise ValueError(
            f"{module.__name__}: unknown cell kind(s) {unknown}; "
            f"known: {CELL_KINDS}"
        )
    return cells


def build_experiment_graph(
    names: Sequence[str],
    context,
    workload_names: Optional[Sequence[str]] = None,
) -> JobGraph:
    """Express the requested experiments as a job graph.

    ``context`` is an :class:`~repro.experiments.context.ExperimentContext`
    — only its configuration (training-run count, thresholds constants)
    shapes the graph.  ``workload_names`` defaults to the Table 4.1
    benchmark set shared by every paper experiment.
    """
    # Imported here: the experiments layer imports this package at the
    # module level, so the dependency must stay one-way at import time.
    from ..experiments.context import TABLE_ENTRIES, TABLE_WAYS, THRESHOLDS
    from ..experiments.runner import EXPERIMENTS, MODULES
    from ..workloads import TABLE_4_1_NAMES

    if workload_names is None:
        workload_names = TABLE_4_1_NAMES

    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        known = ", ".join(EXPERIMENTS)
        raise SystemExit(f"unknown experiment {unknown[0]!r}; known: {known}")

    graph = JobGraph()
    kinds_needed = set()
    for name in names:
        for kind in experiment_cells(MODULES[name]):
            kinds_needed.update(KIND_CLOSURE[kind])

    cell_ids: Dict[str, List[str]] = {kind: [] for kind in CELL_KINDS}
    if kinds_needed:
        for workload in workload_names:
            graph.add(Job(compile_id(workload), "compile", workload, inline=True))
        for workload in workload_names:
            profiles = []
            for run_index in range(context.training_runs):
                job = graph.add(
                    Job(
                        profile_id(workload, run_index),
                        "profile",
                        workload,
                        params=(run_index,),
                        deps=(compile_id(workload),),
                    )
                )
                profiles.append(job.job_id)
            cell_ids["profile"].extend(profiles)
            if not kinds_needed - {"profile"}:
                continue
            annotates = []
            for threshold in THRESHOLDS:
                job = graph.add(
                    Job(
                        annotate_id(workload, threshold),
                        "annotate",
                        workload,
                        params=(threshold,),
                        deps=tuple(profiles),
                    )
                )
                annotates.append(job.job_id)
            cell_ids["annotate"].extend(annotates)
            if "classify" in kinds_needed:
                job = graph.add(
                    Job(
                        classify_id(workload),
                        "classify",
                        workload,
                        deps=tuple(annotates),
                    )
                )
                cell_ids["classify"].append(job.job_id)
            if "finite" in kinds_needed:
                job = graph.add(
                    Job(
                        finite_id(workload, TABLE_ENTRIES, TABLE_WAYS),
                        "finite",
                        workload,
                        params=(TABLE_ENTRIES, TABLE_WAYS),
                        deps=tuple(annotates),
                    )
                )
                cell_ids["finite"].append(job.job_id)
            if "ilp" in kinds_needed:
                job = graph.add(
                    Job(
                        ilp_id(workload, TABLE_ENTRIES, TABLE_WAYS),
                        "ilp",
                        workload,
                        params=(TABLE_ENTRIES, TABLE_WAYS),
                        deps=tuple(annotates),
                    )
                )
                cell_ids["ilp"].append(job.job_id)

    for name in names:
        deps: List[str] = []
        for kind in experiment_cells(MODULES[name]):
            for closure_kind in KIND_CLOSURE[kind]:
                deps.extend(cell_ids[closure_kind])
        graph.add(
            Job(
                experiment_id(name),
                "experiment",
                name,
                deps=tuple(dict.fromkeys(deps)),
            )
        )
    return graph
