"""Job entry points executed in pool processes (and inline).

A pool worker receives a picklable job plus the *encoded* payloads of
its dependencies, rebuilds an :class:`ExperimentContext` matching the
parent's configuration, primes the dependency artifacts into it, and
computes its own cell through exactly the same code path a serial run
takes (:mod:`repro.experiments.shared` and the context's artifact
methods).  That shared path is what makes ``--jobs N`` byte-identical to
``--jobs 1``.

Contexts are kept in a per-process table keyed by configuration, so a
long-lived pool worker reuses compiled programs, profiles and annotated
binaries across every job it is handed.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

from ..telemetry import Telemetry, get_registry, use_registry
from . import faults, serialize
from .jobs import Job

#: Per-process contexts, keyed by :func:`spec_key` of the parent config.
_CONTEXTS: Dict[Tuple, object] = {}


def context_spec(context) -> dict:
    """The picklable configuration a worker needs to mirror ``context``."""
    return {
        "scale": context.scale,
        "training_runs": context.training_runs,
        "stride_threshold": context.stride_threshold,
        "cache_dir": str(context.cache_dir) if context.cache_dir else None,
        "telemetry": get_registry().enabled,
    }


def spec_key(spec: dict) -> Tuple:
    return (
        spec["scale"],
        spec["training_runs"],
        spec["stride_threshold"],
        spec["cache_dir"],
    )


def resolve_context(spec: dict):
    """The per-process context for ``spec`` (created on first use)."""
    key = spec_key(spec)
    context = _CONTEXTS.get(key)
    if context is None:
        from ..experiments.context import ExperimentContext

        context = ExperimentContext(
            scale=spec["scale"],
            training_runs=spec["training_runs"],
            cache_dir=spec["cache_dir"],
            stride_threshold=spec["stride_threshold"],
        )
        _CONTEXTS[key] = context
    return context


def already_primed(context, job: Job) -> bool:
    """Whether ``context`` already holds this job's artifact (skip decode)."""
    from ..experiments import shared

    if job.kind == "profile":
        return context.has_profile(job.name, job.params[0])
    if job.kind == "annotate":
        return context.has_annotated(job.name, job.params[0])
    if job.kind == "classify":
        return shared.classification_memo_key(job.name) in context.memo
    if job.kind == "finite":
        return shared.finite_memo_key(job.name, *job.params) in context.memo
    if job.kind == "ilp":
        entries, ways = job.params
        return shared.ilp_memo_key(job.name, None, entries, ways) in context.memo
    return False


def prime(context, job: Job, value) -> None:
    """Install a decoded job result into ``context``'s memo structures."""
    from ..experiments import shared

    if job.kind == "profile":
        context.prime_profile(job.name, job.params[0], value)
    elif job.kind == "annotate":
        context.prime_annotated(job.name, job.params[0], value)
    elif job.kind == "classify":
        context.memo.setdefault(shared.classification_memo_key(job.name), value)
    elif job.kind == "finite":
        entries, ways = job.params
        context.memo.setdefault(
            shared.finite_memo_key(job.name, entries, ways), value
        )
    elif job.kind == "ilp":
        entries, ways = job.params
        context.memo.setdefault(
            shared.ilp_memo_key(job.name, None, entries, ways), value
        )
    # compile/experiment results carry no context state.


def compute_value(job: Job, context):
    """Compute one job in-process, returning the native (decoded) value."""
    from ..experiments import shared

    if job.kind == "compile":
        return context.program(job.name)
    if job.kind == "profile":
        return context.training_profile(job.name, job.params[0])
    if job.kind == "annotate":
        return context.annotated(job.name, job.params[0])
    if job.kind == "classify":
        return shared.classification_accuracy_stats(context, job.name)
    if job.kind == "finite":
        entries, ways = job.params
        return shared.finite_table_stats(context, job.name, entries, ways)
    if job.kind == "ilp":
        entries, ways = job.params
        return shared.ilp_results(context, job.name, None, entries, ways)
    if job.kind == "experiment":
        from ..experiments.runner import EXPERIMENTS

        return EXPERIMENTS[job.name](context)
    raise ValueError(f"unknown job kind {job.kind!r}")


def run_pool_job(
    spec: dict, job: Job, dep_items: Sequence[Tuple[Job, str]], attempt: int = 1
) -> Tuple[float, str, Optional[dict]]:
    """Pool entry point: prime dependencies, compute, return encoded.

    Returns ``(compute_seconds, payload, telemetry_snapshot)`` — the
    timing covers only this job's own work, not queue wait or dependency
    decoding, so parent-side progress lines report honest per-cell cost.
    When the coordinator's registry is live, the job runs under a fresh
    per-job registry whose snapshot rides back for merging; totals over a
    parallel run therefore equal a serial run's.

    ``attempt`` is the coordinator's 1-based attempt number for this
    job.  It keys the deterministic fault schedule (the env-passed
    :class:`~repro.runner.faults.FaultPlan`, if any, is consulted before
    computing and may raise, crash, stall, or mangle the payload) and
    names the per-attempt telemetry span.
    """
    context = resolve_context(spec)
    plan = faults.active_plan()
    fault = (
        plan.fire(job.job_id, attempt, in_worker=True) if plan is not None else None
    )
    for dep_job, payload in dep_items:
        if not already_primed(context, dep_job):
            prime(context, dep_job, serialize.decode(dep_job.kind, payload))
    if spec.get("telemetry"):
        registry = Telemetry()
        with use_registry(registry):
            with registry.span(f"attempt:{job.kind}"):
                started = time.perf_counter()
                value = compute_value(job, context)
                seconds = time.perf_counter() - started
        snapshot = registry.snapshot()
    else:
        started = time.perf_counter()
        value = compute_value(job, context)
        seconds = time.perf_counter() - started
        snapshot = None
    payload = serialize.encode(job.kind, value)
    if fault is not None and fault.kind == "corrupt":
        payload = faults.corrupt_payload(payload)
    return seconds, payload, snapshot
