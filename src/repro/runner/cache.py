"""Content-addressed on-disk artifact cache.

Every expensive artifact of the experiment pipeline — profile images,
merged profiles, serialized simulation/ILP grids, finished experiment
tables — is stored under a key that is the SHA-256 of everything the
artifact depends on (program text, input streams, configuration; see
:mod:`repro.runner.keys`).  Identical inputs therefore share one entry,
any change to the inputs produces a new key, and entries never need
invalidation logic beyond "the key changed".

Layout on disk::

    <cache-dir>/<kind>/<key[:2]>/<key>.<ext>

where ``kind`` is the artifact family (``profile``, ``merged``,
``classify``, ``finite``, ``ilp``, ``table``), the two-character fan-out
keeps directories small, and ``ext`` is the payload's native extension
(``.profile``, ``.json``, ``.tsv``, ``.asm``).  Payloads are UTF-8 text;
writes go through a temporary file and :func:`os.replace` so concurrent
writers (pool workers racing on a shared artifact) are safe — last
writer wins with identical content.

A corrupt entry (truncated write, stray file, version skew) is treated
as a miss: readers that fail to decode delete the entry and recompute.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from ..telemetry import get_registry

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro`` (honouring XDG)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


class ArtifactCache:
    """A content-addressed text store rooted at ``root``.

    The cache is a dumb key/value store: keys are hex digests computed
    by the caller (see :mod:`repro.runner.keys`), values are text.  All
    decode validation lives in the caller; use :meth:`discard` when a
    payload fails to decode.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, kind: str, key: str, extension: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.{extension}"

    # -- store/load ----------------------------------------------------------

    def load(self, kind: str, key: str, extension: str = "json") -> Optional[str]:
        """The stored payload, or ``None`` on a miss or unreadable entry."""
        path = self._path(kind, key, extension)
        try:
            payload = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            get_registry().counter(f"cache.miss.{kind}").add(1)
            return None
        except (OSError, UnicodeDecodeError):
            self.discard(kind, key, extension)
            get_registry().counter(f"cache.miss.{kind}").add(1)
            return None
        get_registry().counter(f"cache.hit.{kind}").add(1)
        return payload

    def store(self, kind: str, key: str, payload: str, extension: str = "json") -> Path:
        """Atomically write ``payload`` under ``(kind, key)``."""
        get_registry().counter(f"cache.store.{kind}").add(1)
        path = self._path(kind, key, extension)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as stream:
                stream.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def discard(self, kind: str, key: str, extension: str = "json") -> None:
        """Drop the entry (used when a payload fails to decode)."""
        registry = get_registry()
        registry.counter(f"cache.corrupt.{kind}").add(1)
        registry.emit("cache.discard", kind=kind, key=key)
        try:
            self._path(kind, key, extension).unlink()
        except OSError:
            pass

    # -- inspection ----------------------------------------------------------

    def __contains__(self, kind_key: Tuple[str, str]) -> bool:
        kind, key = kind_key
        fanout = self.root / kind / key[:2]
        return any(fanout.glob(f"{key}.*")) if fanout.is_dir() else False

    def entries(self) -> Iterator[Path]:
        """Every stored entry (for tests and cache statistics)."""
        for path in sorted(self.root.rglob("*")):
            if path.is_file() and not path.name.endswith(".tmp"):
                yield path

    def __repr__(self) -> str:  # pragma: no cover
        return f"ArtifactCache({str(self.root)!r})"
