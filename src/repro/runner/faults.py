"""Deterministic fault injection for the experiment engine.

The fault-tolerance paths of :mod:`repro.runner.executor` — retries,
timeouts, pool rebuilds, graceful degradation — are only trustworthy if
they are exercised deliberately.  A :class:`FaultPlan` is a seeded,
pickleable schedule of faults keyed by ``(job_id, attempt)``; the
executor ships it to pool workers through the :data:`ENV_VAR`
environment variable (inherited at worker spawn), so the same plan
produces the same faults in every process of every run.

Fault kinds (:data:`FAULT_KINDS`):

``transient``
    Raise :class:`TransientFault` before computing — models a flaky
    dependency or resource blip.  Fires in workers *and* inline in the
    coordinator.
``crash``
    ``os._exit`` the worker process mid-job — models an OOM kill or
    segfault.  Breaks the whole pool; the executor rebuilds it.  Fires
    in pool workers only.
``hang``
    Sleep for :attr:`Fault.seconds` before computing — models a wedged
    job.  Only observable under a :class:`~repro.runner.retry.RetryPolicy`
    job timeout, which kills and rebuilds the pool.  Pool workers only.
``corrupt``
    Compute normally but return a mangled result payload — models a
    torn write.  The coordinator's decode fails and the attempt is
    retried.  Pool workers only.

Because faults are keyed by attempt number, a fault at attempt 1 leaves
attempt 2 clean: any plan whose per-job fault runs are shorter than the
policy's ``max_attempts`` is fully recoverable, and a recovered run is
byte-identical to a fault-free one (the chaos suite in
``tests/test_faults.py`` asserts exactly this).

This module is reproduction *infrastructure* — nothing here corresponds
to a claim in the paper.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

#: Environment variable carrying the JSON-encoded plan to pool workers.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Exit code used by injected worker crashes (distinctive in core dumps).
CRASH_EXIT_CODE = 97

FAULT_KINDS = ("transient", "crash", "hang", "corrupt")

#: Prefix prepended to payloads by ``corrupt`` faults; breaks every
#: payload codec (assembler, profile reader, JSON, TSV table header).
CORRUPTION_PREFIX = "\x00corrupted-by-fault-injection\n"


class TransientFault(RuntimeError):
    """The exception raised by an injected ``transient`` fault."""


@dataclasses.dataclass(frozen=True)
class Fault:
    """One scheduled fault: ``kind`` fires on ``attempt`` of ``job_id``."""

    kind: str
    job_id: str
    attempt: int = 1
    #: Sleep length for ``hang`` faults (ignored by other kinds).
    seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.attempt < 1:
            raise ValueError(f"attempt is 1-based, got {self.attempt}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "seconds": self.seconds,
        }


class FaultPlan:
    """A deterministic schedule of faults, keyed by ``(job_id, attempt)``.

    Plans are immutable value objects: pickleable (they ride in job
    submissions and test fixtures) and JSON round-trippable (they ride
    to pool workers in :data:`ENV_VAR`).  At most one fault may target a
    given ``(job_id, attempt)`` pair.
    """

    def __init__(self, faults: Iterable[Fault] = (), seed: Optional[int] = None):
        self.seed = seed
        self._faults: Dict[Tuple[str, int], Fault] = {}
        for fault in faults:
            key = (fault.job_id, fault.attempt)
            if key in self._faults:
                raise ValueError(
                    f"duplicate fault for job {fault.job_id!r} attempt {fault.attempt}"
                )
            self._faults[key] = fault

    # -- querying ------------------------------------------------------------

    def fault_for(self, job_id: str, attempt: int) -> Optional[Fault]:
        return self._faults.get((job_id, attempt))

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(sorted(self._faults.values(), key=lambda f: (f.job_id, f.attempt)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._faults == other._faults

    def __repr__(self) -> str:  # pragma: no cover
        return f"FaultPlan({len(self._faults)} faults, seed={self.seed})"

    def job_ids(self) -> Sequence[str]:
        return sorted({job_id for job_id, _ in self._faults})

    def consecutive_failures(self, job_id: str) -> int:
        """Length of the fault run starting at attempt 1 for ``job_id``.

        A job fails exactly its leading consecutive faulted attempts: a
        fault scheduled *after* the first clean attempt never fires.
        """
        attempt = 1
        while (job_id, attempt) in self._faults:
            attempt += 1
        return attempt - 1

    def is_recoverable(self, max_attempts: int) -> bool:
        """Whether every faulted job reaches a clean attempt within budget."""
        return all(
            self.consecutive_failures(job_id) < max_attempts
            for job_id in self.job_ids()
        )

    def expected_retries(self, max_attempts: int) -> int:
        """Exactly how many retry resubmissions this plan will cause.

        Per job: one retry per leading faulted attempt, bounded by the
        retry budget (an exhausted job made ``max_attempts`` attempts,
        i.e. ``max_attempts - 1`` retries).
        """
        return sum(
            min(self.consecutive_failures(job_id), max_attempts - 1)
            for job_id in self.job_ids()
        )

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": 1,
                "seed": self.seed,
                "faults": [fault.to_dict() for fault in self],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if payload.get("version") != 1:
            raise ValueError(f"unknown fault plan version {payload.get('version')!r}")
        return cls(
            (Fault(**entry) for entry in payload.get("faults", ())),
            seed=payload.get("seed"),
        )

    def __reduce__(self):
        return (FaultPlan.from_json, (self.to_json(),))

    # -- generation ----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        job_ids: Sequence[str],
        *,
        seed: int,
        rate: float = 0.2,
        kinds: Sequence[str] = ("transient",),
        max_attempt: int = 1,
        hang_seconds: float = 60.0,
    ) -> "FaultPlan":
        """A seeded random plan over ``job_ids``.

        Each job is independently faulted with probability ``rate``; a
        faulted job gets one fault of a random ``kinds`` member at a
        random attempt in ``[1, max_attempt]``.  Same seed and job list
        ⇒ same plan, on every platform and Python version.
        """
        rng = random.Random(seed)
        faults = []
        for job_id in job_ids:
            if rng.random() < rate:
                kind = kinds[rng.randrange(len(kinds))]
                attempt = rng.randint(1, max_attempt)
                faults.append(
                    Fault(kind=kind, job_id=job_id, attempt=attempt, seconds=hang_seconds)
                )
        return cls(faults, seed=seed)

    # -- firing --------------------------------------------------------------

    def fire(self, job_id: str, attempt: int, *, in_worker: bool) -> Optional[Fault]:
        """Enact the fault for ``(job_id, attempt)``, if any.

        ``transient`` raises; ``crash`` and ``hang`` only act when
        ``in_worker`` (crashing or stalling the coordinator would take
        the whole run down, which no fault kind models).  Returns the
        fault for kinds the *caller* must enact (``corrupt``: mangle the
        encoded payload with :func:`corrupt_payload`).
        """
        fault = self.fault_for(job_id, attempt)
        if fault is None:
            return None
        if fault.kind == "transient":
            raise TransientFault(
                f"injected transient fault ({job_id}, attempt {attempt})"
            )
        if not in_worker:
            return None
        if fault.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if fault.kind == "hang":
            time.sleep(fault.seconds)
            return None
        return fault


def corrupt_payload(payload: str) -> str:
    """Mangle an encoded job payload so every codec rejects it."""
    return CORRUPTION_PREFIX + payload


# -- named plans and spec resolution ----------------------------------------


def _ci_smoke_plan(graph) -> FaultPlan:
    """The pinned CI plan: transient/corrupt faults on first attempts.

    Every fault fires on attempt 1 only, so any policy with at least one
    retry converges and the run stays byte-identical to a fault-free one.
    """
    pool_ids = [job.job_id for job in graph.order() if not job.inline]
    return FaultPlan.generate(
        pool_ids, seed=1997, rate=0.25, kinds=("transient", "corrupt"), max_attempt=1
    )


NAMED_PLANS = {"ci-smoke": _ci_smoke_plan}


def resolve_plan(spec, graph=None) -> Optional[FaultPlan]:
    """Turn a ``--fault-plan`` spec into a :class:`FaultPlan`.

    Accepts ``None`` (no faults), a ready :class:`FaultPlan`, inline
    JSON (``{...}``), ``@path`` or a bare path to a JSON plan file, or a
    named plan (:data:`NAMED_PLANS` — named plans are generated against
    ``graph``, so they need one).
    """
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"fault plan spec must be a string or FaultPlan, got {spec!r}")
    text = spec.strip()
    if text.startswith("{"):
        return FaultPlan.from_json(text)
    if text.startswith("@"):
        return FaultPlan.from_json(Path(text[1:]).read_text(encoding="utf-8"))
    if text in NAMED_PLANS:
        if graph is None:
            raise ValueError(f"named fault plan {text!r} needs a job graph")
        return NAMED_PLANS[text](graph)
    path = Path(text)
    if path.is_file():
        return FaultPlan.from_json(path.read_text(encoding="utf-8"))
    known = ", ".join(sorted(NAMED_PLANS))
    raise ValueError(f"unknown fault plan {spec!r}; known named plans: {known}")


#: Cache of the worker-side plan, keyed by the raw env value so a
#: changed plan (tests flip it between runs) is re-parsed.
_ACTIVE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan in :data:`ENV_VAR`, parsed once per distinct value."""
    global _ACTIVE
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _ACTIVE[0] != raw:
        _ACTIVE = (raw, FaultPlan.from_json(raw))
    return _ACTIVE[1]


__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "NAMED_PLANS",
    "TransientFault",
    "active_plan",
    "corrupt_payload",
    "resolve_plan",
]
