"""Payload codecs for the experiment engine.

Every job result travels as UTF-8 text — between pool processes, and
into/out of the :class:`~repro.runner.cache.ArtifactCache`.  Each job
kind reuses the artifact's native on-disk format where one exists:

==========  ===========================================  =========
kind        payload                                      extension
==========  ===========================================  =========
compile     canonical program disassembly                ``asm``
profile     profile image (v1 text format)               ``profile``
merged      merged profile image (v1 text format)        ``profile``
annotate    annotated program disassembly                ``asm``
classify    ``{label: PredictionStats.to_dict()}`` JSON  ``json``
finite      ``{label: PredictionStats.to_dict()}`` JSON  ``json``
ilp         ``{label: IlpResult.to_dict()}`` JSON        ``json``
experiment  :meth:`ExperimentTable.to_tsv`               ``tsv``
==========  ===========================================  =========

All encodings are exact (integer counters, repr'd floats), which is what
makes ``--jobs N`` byte-identical to a serial run.  :func:`decode` wraps
any parse failure in :class:`PayloadError` so cache readers can treat a
corrupt entry as a miss.
"""

from __future__ import annotations

import json
from typing import Dict

from ..core import PredictionStats
from ..ilp import IlpResult
from ..isa import Program, assemble, disassemble
from ..profiling import ProfileImage, dumps_profile, loads_profile

#: File extension per job kind (also the cache entry extension).
EXTENSIONS = {
    "compile": "asm",
    "profile": "profile",
    "merged": "profile",
    "annotate": "asm",
    "classify": "json",
    "finite": "json",
    "ilp": "json",
    "experiment": "tsv",
}


class PayloadError(ValueError):
    """A payload failed to decode (corrupt cache entry, version skew)."""


def encode(kind: str, value) -> str:
    """Serialize a job result to its transport/cache text form."""
    if kind == "compile" or kind == "annotate":
        return disassemble(value)
    if kind == "profile" or kind == "merged":
        return dumps_profile(value)
    if kind == "classify" or kind == "finite":
        return json.dumps(
            {label: stats.to_dict() for label, stats in value.items()},
            sort_keys=True,
        )
    if kind == "ilp":
        return json.dumps(
            {label: result.to_dict() for label, result in value.items()},
            sort_keys=True,
        )
    if kind == "experiment":
        return value.to_tsv()
    raise ValueError(f"unknown payload kind {kind!r}")


def decode(kind: str, payload: str):
    """Inverse of :func:`encode`; raises :class:`PayloadError` on failure."""
    try:
        if kind == "compile" or kind == "annotate":
            return assemble(payload)
        if kind == "profile" or kind == "merged":
            return loads_profile(payload)
        if kind == "classify" or kind == "finite":
            return {
                label: PredictionStats.from_dict(stats)
                for label, stats in json.loads(payload).items()
            }
        if kind == "ilp":
            return {
                label: IlpResult.from_dict(result)
                for label, result in json.loads(payload).items()
            }
        if kind == "experiment":
            from ..experiments.tables import ExperimentTable

            table = ExperimentTable.from_tsv(payload)
            # from_tsv is lenient; a payload we wrote always names its
            # experiment, so a blank id means the entry is corrupt.
            if not table.experiment_id:
                raise PayloadError("experiment payload has no id header")
            return table
    except PayloadError:
        raise
    except Exception as error:
        raise PayloadError(f"cannot decode {kind} payload: {error}") from error
    raise ValueError(f"unknown payload kind {kind!r}")


def decode_stats_grid(payload: str) -> Dict[str, PredictionStats]:
    """Typed helper for classify/finite grids (used by tests)."""
    return decode("classify", payload)


__all__ = [
    "EXTENSIONS",
    "PayloadError",
    "decode",
    "decode_stats_grid",
    "encode",
    "Program",
    "ProfileImage",
]
