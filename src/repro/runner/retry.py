"""Retry policy and structured run reporting for the experiment engine.

The executor (:mod:`repro.runner.executor`) treats every job attempt as
fallible: a worker exception, a corrupt result payload, a timed-out or
crashed worker process all count as a *failed attempt*, and the
:class:`RetryPolicy` decides whether the job is resubmitted (with
exponential backoff and deterministic per-job jitter) or declared
failed.  A failed job degrades the run gracefully — its transitive
dependents are marked skipped, independent jobs still complete — and the
whole run is summarized by a :class:`RunReport` instead of a stack
trace.

Backoff jitter is derived from a SHA-256 of the job id and attempt
number, never from a random source, so two runs of the same suite retry
on exactly the same schedule.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional, Tuple

#: Terminal job statuses (:attr:`JobReport.status`).
OK = "ok"
CACHED = "cached"
FAILED = "failed"
SKIPPED = "skipped"

STATUSES = (OK, CACHED, FAILED, SKIPPED)


def deterministic_jitter(job_id: str, attempt: int) -> float:
    """A stable pseudo-random value in ``[0, 1)`` for backoff jitter.

    Hashing ``job_id:attempt`` decorrelates retry schedules across jobs
    (no thundering herd after a pool rebuild) while keeping every run of
    the same suite byte-identical in its retry timing decisions.
    """
    digest = hashlib.sha256(f"{job_id}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How the executor responds to failed job attempts.

    Args:
        max_attempts: total attempts per job (1 = no retries).
        job_timeout: wall-clock seconds allowed per pool attempt
            (``None`` = unbounded).  A timed-out attempt counts as
            failed; the worker pool is rebuilt to reclaim the stuck
            process.
        backoff_base: delay before the first retry, in seconds.
        backoff_factor: multiplier applied per subsequent retry.
        backoff_cap: upper bound on the pre-jitter delay.
    """

    max_attempts: int = 1
    job_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(f"job_timeout must be positive, got {self.job_timeout}")

    @classmethod
    def from_cli(
        cls, retries: int = 0, job_timeout: Optional[float] = None
    ) -> "RetryPolicy":
        """``--retries N`` semantics: N *extra* attempts after the first."""
        return cls(max_attempts=max(0, retries) + 1, job_timeout=job_timeout)

    @property
    def retries(self) -> int:
        return self.max_attempts - 1

    def backoff_seconds(self, job_id: str, attempt: int) -> float:
        """Delay before resubmitting ``job_id`` after failed ``attempt``.

        Exponential in the attempt number, capped, and scaled by a
        deterministic jitter in ``[0.5, 1.5)`` derived from the job id —
        reproducible across runs, decorrelated across jobs.
        """
        raw = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return min(self.backoff_cap, raw) * (0.5 + deterministic_jitter(job_id, attempt))


@dataclasses.dataclass(frozen=True)
class JobReport:
    """Terminal outcome of one job across all its attempts."""

    job_id: str
    kind: str
    label: str
    status: str
    attempts: int
    seconds: float
    causes: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "label": self.label,
            "status": self.status,
            "attempts": self.attempts,
            "seconds": self.seconds,
            "causes": list(self.causes),
        }


@dataclasses.dataclass
class RunReport:
    """Structured summary of an engine run (schema ``repro-run/1``).

    ``jobs`` is in graph order, one entry per job, regardless of
    completion order — the report of a run is deterministic even when
    the pool is not.
    """

    jobs: List[JobReport] = dataclasses.field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0

    SCHEMA = "repro-run/1"

    def job(self, job_id: str) -> Optional[JobReport]:
        for entry in self.jobs:
            if entry.job_id == job_id:
                return entry
        return None

    @property
    def failed(self) -> List[JobReport]:
        return [entry for entry in self.jobs if entry.status == FAILED]

    @property
    def skipped(self) -> List[JobReport]:
        return [entry for entry in self.jobs if entry.status == SKIPPED]

    @property
    def completed(self) -> List[JobReport]:
        return [entry for entry in self.jobs if entry.status in (OK, CACHED)]

    @property
    def ok(self) -> bool:
        return not self.failed and not self.skipped

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in STATUSES}
        for entry in self.jobs:
            counts[entry.status] += 1
        return counts

    def to_dict(self) -> dict:
        return {
            "schema": self.SCHEMA,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "counts": self.counts(),
            "jobs": [entry.to_dict() for entry in self.jobs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def format(self) -> str:
        """Human-readable summary: one headline, then failures in detail."""
        counts = self.counts()
        headline = (
            f"run report: {len(self.jobs)} jobs — "
            f"{counts[OK]} ok, {counts[CACHED]} cached, "
            f"{counts[FAILED]} failed, {counts[SKIPPED]} skipped; "
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.pool_rebuilds} pool rebuilds"
        )
        lines = [headline]
        if self.failed:
            lines.append("failed:")
            for entry in self.failed:
                lines.append(
                    f"  {entry.job_id} — {entry.attempts} attempt(s), "
                    f"{entry.seconds:.2f}s"
                )
                for cause in entry.causes:
                    lines.append(f"      {cause}")
        if self.skipped:
            lines.append("skipped (unmet dependencies):")
            for entry in self.skipped:
                cause = entry.causes[-1] if entry.causes else "dependency failed"
                lines.append(f"  {entry.job_id} — {cause}")
        return "\n".join(lines)


class RunFailure(RuntimeError):
    """Raised by the experiment runner when a run ends with failed jobs.

    Carries the :class:`RunReport` (``.report``) and whatever tables did
    complete (``.tables``), so callers degrade gracefully instead of
    digging a cause out of a traceback.
    """

    def __init__(self, report: RunReport, tables: Optional[list] = None) -> None:
        self.report = report
        self.tables = list(tables or [])
        failed = ", ".join(entry.job_id for entry in report.failed)
        super().__init__(
            f"{len(report.failed)} job(s) failed ({failed}); "
            f"{len(report.skipped)} skipped"
        )


__all__ = [
    "CACHED",
    "FAILED",
    "JobReport",
    "OK",
    "RetryPolicy",
    "RunFailure",
    "RunReport",
    "SKIPPED",
    "STATUSES",
    "deterministic_jitter",
]
