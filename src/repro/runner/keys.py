"""Cache keys: SHA-256 fingerprints of program text + inputs + config.

An artifact's key digests *everything the artifact is a function of*:

* the workload's **program text** (its canonical disassembly — so an
  edited mini-C source or a compiler change produces new keys),
* the exact **input streams** consumed (so a new input generator or a
  different ``--scale`` produces new keys),
* the relevant **configuration** (thresholds, table geometry, ILP
  machine parameters, training-run count),
* a format **version** plus the package version, bumped to invalidate
  globally when payload encodings change.

Experiment-table keys additionally digest the experiment module's own
source code, so editing an experiment re-runs it while its cached cell
inputs stay warm.

All functions take plain values rather than an ``ExperimentContext`` so
this module stays importable from the context itself without a cycle.
Program texts and input digests are memoized per process — key
computation must stay negligible next to the work it gates.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, Optional, Sequence, Tuple

from .. import __version__
from ..isa import disassemble
from ..workloads import get_workload

#: Bump to invalidate every cache entry (payload format changes).
FORMAT_VERSION = "1"

_SEPARATOR = "\x1e"

_program_texts: Dict[str, str] = {}
_input_digests: Dict[Tuple[str, int, float], str] = {}


def _digest(parts: Iterable[str]) -> str:
    return hashlib.sha256(_SEPARATOR.join(parts).encode("utf-8")).hexdigest()


def _prefix(kind: str) -> Tuple[str, ...]:
    return ("repro", __version__, FORMAT_VERSION, kind)


def program_text(name: str) -> str:
    """Canonical (disassembled) program text of a workload, memoized."""
    text = _program_texts.get(name)
    if text is None:
        text = disassemble(get_workload(name).compile())
        _program_texts[name] = text
    return text


def input_digest(name: str, index: int, scale: float) -> str:
    """Digest of one deterministic input stream, memoized."""
    key = (name, index, scale)
    digest = _input_digests.get(key)
    if digest is None:
        stream = get_workload(name).input_set(index, scale=scale)
        digest = _digest(repr(value) for value in stream)
        _input_digests[key] = digest
    return digest


def _training_digests(name: str, scale: float, training_runs: int) -> Tuple[str, ...]:
    return tuple(input_digest(name, index, scale) for index in range(training_runs))


def _test_digest(name: str, scale: float) -> str:
    from ..workloads import TEST_INDEX

    return input_digest(name, TEST_INDEX, scale)


def workload_fingerprint(name: str, scale: float, training_runs: int) -> str:
    """One digest covering a workload's program text and every input set."""
    return _digest(
        _prefix("workload")
        + (program_text(name),)
        + _training_digests(name, scale, training_runs)
        + (_test_digest(name, scale),)
    )


# -- per-cell keys -----------------------------------------------------------


def profile_key(name: str, run_index: int, scale: float) -> str:
    """Key of one training-run profile image."""
    return _digest(
        _prefix("profile")
        + (program_text(name), str(run_index), input_digest(name, run_index, scale))
    )


def merged_key(name: str, scale: float, training_runs: int) -> str:
    """Key of the merged multi-run profile image."""
    return _digest(
        _prefix("merged")
        + (program_text(name),)
        + _training_digests(name, scale, training_runs)
    )


def _annotation_parts(
    name: str,
    scale: float,
    training_runs: int,
    thresholds: Sequence[float],
    stride_threshold: float,
) -> Tuple[str, ...]:
    return (
        (program_text(name),)
        + _training_digests(name, scale, training_runs)
        + tuple(repr(threshold) for threshold in thresholds)
        + (repr(stride_threshold),)
    )


def classify_key(
    name: str,
    scale: float,
    training_runs: int,
    thresholds: Sequence[float],
    stride_threshold: float,
) -> str:
    """Key of the infinite-table classification grid (Figs 5.1/5.2)."""
    return _digest(
        _prefix("classify")
        + _annotation_parts(name, scale, training_runs, thresholds, stride_threshold)
        + (_test_digest(name, scale),)
    )


def finite_key(
    name: str,
    scale: float,
    training_runs: int,
    thresholds: Sequence[float],
    stride_threshold: float,
    entries: int,
    ways: int,
) -> str:
    """Key of the finite-table prediction grid (Figs 5.3/5.4)."""
    return _digest(
        _prefix("finite")
        + _annotation_parts(name, scale, training_runs, thresholds, stride_threshold)
        + (_test_digest(name, scale), str(entries), str(ways))
    )


def ilp_key(
    name: str,
    scale: float,
    training_runs: int,
    thresholds: Sequence[float],
    stride_threshold: float,
    entries: int,
    ways: int,
    config: Optional[object] = None,
) -> str:
    """Key of the abstract-machine ILP grid (Table 5.2).

    ``config`` is an :class:`~repro.ilp.IlpConfig` (or ``None`` for the
    paper's default machine); it is digested field-by-field so any two
    equal configs — including an explicit default — share a key.
    """
    if config is None:
        from ..ilp import IlpConfig

        config = IlpConfig()
    config_parts = tuple(
        f"{field}={value!r}"
        for field, value in sorted(dataclasses.asdict(config).items())
    )
    return _digest(
        _prefix("ilp")
        + _annotation_parts(name, scale, training_runs, thresholds, stride_threshold)
        + (_test_digest(name, scale), str(entries), str(ways))
        + config_parts
    )


def experiment_key(
    experiment_id: str,
    module_source: str,
    scale: float,
    training_runs: int,
    stride_threshold: float,
    workload_names: Sequence[str],
) -> str:
    """Key of a finished experiment table.

    Digests the experiment module's own source (editing an experiment
    invalidates only that experiment) plus the fingerprint of every
    registered workload it could touch.
    """
    return _digest(
        _prefix("table")
        + (
            experiment_id,
            module_source,
            repr(scale),
            str(training_runs),
            repr(stride_threshold),
        )
        + tuple(
            workload_fingerprint(name, scale, training_runs)
            for name in workload_names
        )
    )
