"""Value-prediction-aware critical-path analysis within basic blocks.

The paper's future work (Section 6): use the profile to analyze "the
scheduling of instruction within a basic block and the analysis of the
critical path".  This module implements that analysis statically:

* build the register-dependence DAG of each basic block (unit latencies,
  memory conservatively serialized store→load within the block);
* its *height* is the block's dataflow critical path — the minimum
  schedule length on a machine with unlimited units;
* with a profile and an annotation policy, instructions classified as
  value-predictable *break* their outgoing dependence edges (consumers
  would run on the predicted value), shortening the path.

The per-block shortening quantifies how much intra-block scheduling
freedom profile-guided value prediction buys the compiler.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from ..annotate import AnnotationPolicy
from ..isa import Program
from ..profiling import ProfileImage
from .blocks import BasicBlock, basic_blocks


@dataclasses.dataclass(frozen=True)
class BlockPath:
    """Critical-path lengths of one basic block (in unit-latency cycles)."""

    block: BasicBlock
    length: int              # plain dataflow height
    predicted_length: int    # with value-predictable producers collapsed

    @property
    def shortening(self) -> int:
        return self.length - self.predicted_length

    @property
    def speedup(self) -> float:
        if self.predicted_length == 0:
            return 1.0
        return self.length / self.predicted_length


def predictable_addresses(
    program: Program,
    image: ProfileImage,
    policy: Optional[AnnotationPolicy] = None,
) -> Set[int]:
    """Candidate addresses the policy would tag as value-predictable."""
    policy = policy or AnnotationPolicy()
    tagged: Set[int] = set()
    for address in program.candidate_addresses:
        profile = image.instructions.get(address)
        if profile is not None and policy.classify(profile) is not None:
            tagged.add(address)
    return tagged


def block_critical_path(
    program: Program,
    block: BasicBlock,
    predictable: Optional[Set[int]] = None,
) -> int:
    """Dataflow height of ``block`` with unit latencies.

    ``predictable`` producers contribute no dependence height to their
    consumers (the consumer speculates on the predicted value); their own
    execution still takes a cycle, so a block of only predictable
    instructions still has height 1.
    """
    predictable = predictable or set()
    register_depth: Dict[int, int] = {}
    memory_depth = 0
    height = 0
    for address in block.addresses:
        instruction = program[address]
        start = 0
        for source in instruction.srcs:
            depth = register_depth.get(source, 0)
            if depth > start:
                start = depth
        if instruction.opcode.reads_memory and memory_depth > start:
            start = memory_depth
        finish = start + 1
        if instruction.dest is not None:
            if address in predictable:
                # Consumers see the predicted value immediately.
                register_depth[instruction.dest] = start
            else:
                register_depth[instruction.dest] = finish
        if instruction.opcode.writes_memory:
            memory_depth = finish
        if finish > height:
            height = finish
    return height


def analyze_blocks(
    program: Program,
    image: Optional[ProfileImage] = None,
    policy: Optional[AnnotationPolicy] = None,
    min_size: int = 1,
) -> List[BlockPath]:
    """Critical paths for every block of at least ``min_size`` instructions."""
    predictable: Set[int] = set()
    if image is not None:
        predictable = predictable_addresses(program, image, policy)
    paths = []
    for block in basic_blocks(program):
        if len(block) < min_size:
            continue
        plain = block_critical_path(program, block)
        collapsed = block_critical_path(program, block, predictable)
        paths.append(
            BlockPath(block=block, length=plain, predicted_length=collapsed)
        )
    return paths


@dataclasses.dataclass(frozen=True)
class PathSummary:
    """Aggregate of a program's per-block critical-path analysis."""

    blocks: int
    mean_length: float
    mean_predicted_length: float

    @property
    def mean_shortening(self) -> float:
        return self.mean_length - self.mean_predicted_length

    @property
    def relative_shortening(self) -> float:
        """Fraction of the mean path removed (0..1)."""
        if self.mean_length == 0:
            return 0.0
        return self.mean_shortening / self.mean_length


def summarize_paths(paths: List[BlockPath]) -> PathSummary:
    """Aggregate per-block results into one summary."""
    if not paths:
        return PathSummary(blocks=0, mean_length=0.0, mean_predicted_length=0.0)
    return PathSummary(
        blocks=len(paths),
        mean_length=sum(path.length for path in paths) / len(paths),
        mean_predicted_length=(
            sum(path.predicted_length for path in paths) / len(paths)
        ),
    )
