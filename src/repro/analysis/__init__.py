"""Static program analysis (the paper's Section 6 future work).

Basic-block extraction, control-flow graphs, value-prediction-aware
critical-path analysis and an ASAP list scheduler: how much does knowing
(from the profile) which instructions are value-predictable shorten each
basic block's dataflow critical path, and what does the corresponding
schedule look like?
"""

from .blocks import (
    BasicBlock,
    basic_blocks,
    block_of,
    block_statistics,
    control_flow_graph,
    find_leaders,
)
from .critical_path import (
    BlockPath,
    PathSummary,
    analyze_blocks,
    block_critical_path,
    predictable_addresses,
    summarize_paths,
)
from .scheduler import BlockSchedule, format_schedule, schedule_block

__all__ = [
    "BasicBlock",
    "BlockPath",
    "BlockSchedule",
    "PathSummary",
    "analyze_blocks",
    "basic_blocks",
    "block_critical_path",
    "block_of",
    "block_statistics",
    "control_flow_graph",
    "find_leaders",
    "format_schedule",
    "predictable_addresses",
    "schedule_block",
    "summarize_paths",
]
