"""Basic-block extraction and the control-flow graph.

Substrate for the paper's stated future work (Section 6): "the effect of
the profiling information on the scheduling of instruction within a basic
block and the analysis of the critical path".

A *leader* is the entry point, any branch/jump/call target, and any
instruction following a control transfer.  A basic block runs from a
leader up to (and including) the next control transfer or the instruction
before the next leader.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from ..isa import Opcode, Program


@dataclasses.dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line instruction sequence.

    Attributes:
        start: address of the first instruction (the leader).
        end: address one past the last instruction.
    """

    start: int
    end: int

    def __len__(self) -> int:
        return self.end - self.start

    @property
    def addresses(self) -> range:
        return range(self.start, self.end)


def find_leaders(program: Program) -> Set[int]:
    """Addresses that begin a basic block."""
    leaders = {0} if len(program) else set()
    for address, instruction in enumerate(program.instructions):
        if instruction.target is not None:
            leaders.add(instruction.target)
        if instruction.opcode.is_control or instruction.opcode is Opcode.HALT:
            if address + 1 < len(program):
                leaders.add(address + 1)
    return leaders


def basic_blocks(program: Program) -> List[BasicBlock]:
    """Partition the code segment into basic blocks, in address order."""
    if not len(program):
        return []
    leaders = sorted(find_leaders(program))
    blocks = []
    for index, start in enumerate(leaders):
        end = leaders[index + 1] if index + 1 < len(leaders) else len(program)
        blocks.append(BasicBlock(start=start, end=end))
    return blocks


def block_of(blocks: List[BasicBlock], address: int) -> BasicBlock:
    """The block containing ``address`` (blocks must be address-ordered)."""
    low, high = 0, len(blocks) - 1
    while low <= high:
        middle = (low + high) // 2
        block = blocks[middle]
        if address < block.start:
            high = middle - 1
        elif address >= block.end:
            low = middle + 1
        else:
            return block
    raise ValueError(f"address {address} not inside any block")


def control_flow_graph(program: Program) -> Dict[int, List[int]]:
    """Successor map over block start addresses.

    Edges: a block ending in a branch has the branch target and the
    fall-through; a jump only the target; a call its target *and* the
    fall-through (the return continues there); a ``jr`` (function return)
    and ``halt`` have no static successors.
    """
    blocks = basic_blocks(program)
    starts = {block.start for block in blocks}
    successors: Dict[int, List[int]] = {block.start: [] for block in blocks}

    def add_edge(source: int, destination: int) -> None:
        if destination in starts and destination not in successors[source]:
            successors[source].append(destination)

    for block in blocks:
        last = program[block.end - 1]
        opcode = last.opcode
        if opcode in (Opcode.BEQZ, Opcode.BNEZ):
            add_edge(block.start, last.target)
            if block.end < len(program):
                add_edge(block.start, block.end)
        elif opcode is Opcode.JMP:
            add_edge(block.start, last.target)
        elif opcode is Opcode.CALL:
            add_edge(block.start, last.target)
            if block.end < len(program):
                add_edge(block.start, block.end)
        elif opcode is Opcode.JR or opcode is Opcode.HALT:
            pass  # returns resolve dynamically; halt terminates
        else:
            if block.end < len(program):
                add_edge(block.start, block.end)
    return successors


def block_statistics(program: Program) -> Tuple[int, float, int]:
    """(block count, mean block size, largest block size)."""
    blocks = basic_blocks(program)
    if not blocks:
        return (0, 0.0, 0)
    sizes = [len(block) for block in blocks]
    return (len(blocks), sum(sizes) / len(sizes), max(sizes))
