"""List scheduling within basic blocks, value-prediction aware.

The critical-path analysis (:mod:`.critical_path`) bounds how fast a
block *could* run; this module produces an actual schedule achieving that
bound on an unlimited-unit machine: an ASAP (as-soon-as-possible) list
schedule over the block's dependence DAG.  Producers classified as
value-predictable release their consumers immediately — the compiler-side
view of the paper's Section-6 "scheduling of instruction within a basic
block" direction.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from ..isa import Program
from .blocks import BasicBlock


@dataclasses.dataclass(frozen=True)
class BlockSchedule:
    """An ASAP schedule of one basic block.

    Attributes:
        block: the scheduled block.
        cycle_of: instruction address -> issue cycle (0-based).
        cycles: list of cycles, each the addresses issuing that cycle, in
            address order within a cycle.
    """

    block: BasicBlock
    cycle_of: Dict[int, int]
    cycles: List[List[int]]

    @property
    def makespan(self) -> int:
        """Schedule length in cycles."""
        return len(self.cycles)

    def verify(self, program: Program, predictable: Optional[Set[int]] = None) -> None:
        """Assert the schedule respects every dependence.

        Raises:
            AssertionError: if a consumer issues before its producer's
                value is available.
        """
        predictable = predictable or set()
        last_writer: Dict[int, int] = {}
        last_store: Optional[int] = None
        for address in self.block.addresses:
            instruction = program[address]
            cycle = self.cycle_of[address]
            for source in instruction.srcs:
                producer = last_writer.get(source)
                if producer is None:
                    continue
                if producer in predictable:
                    continue  # consumer speculates on the predicted value
                assert cycle > self.cycle_of[producer], (
                    f"@{address} issues at {cycle}, before its producer "
                    f"@{producer} completes"
                )
            if instruction.opcode.reads_memory and last_store is not None:
                assert cycle > self.cycle_of[last_store]
            if instruction.dest is not None:
                last_writer[instruction.dest] = address
            if instruction.opcode.writes_memory:
                last_store = address


def schedule_block(
    program: Program,
    block: BasicBlock,
    predictable: Optional[Set[int]] = None,
) -> BlockSchedule:
    """ASAP-schedule ``block`` with unit latencies and unlimited units.

    ``predictable`` producers release their register consumers in the
    producer's own issue cycle (the consumers use the predicted value);
    memory stays conservatively serialized store→load.
    """
    predictable = predictable or set()
    register_ready: Dict[int, int] = {}
    memory_ready = 0
    cycle_of: Dict[int, int] = {}
    for address in block.addresses:
        instruction = program[address]
        start = 0
        for source in instruction.srcs:
            ready = register_ready.get(source, 0)
            if ready > start:
                start = ready
        if instruction.opcode.reads_memory and memory_ready > start:
            start = memory_ready
        cycle_of[address] = start
        finish = start + 1
        if instruction.dest is not None:
            register_ready[instruction.dest] = (
                start if address in predictable else finish
            )
        if instruction.opcode.writes_memory:
            memory_ready = finish
    makespan = max((cycle + 1 for cycle in cycle_of.values()), default=0)
    cycles: List[List[int]] = [[] for _ in range(makespan)]
    for address in block.addresses:
        cycles[cycle_of[address]].append(address)
    return BlockSchedule(block=block, cycle_of=cycle_of, cycles=cycles)


def format_schedule(program: Program, schedule: BlockSchedule) -> str:
    """Render a schedule as one line per cycle."""
    lines = []
    for cycle, addresses in enumerate(schedule.cycles):
        rendered = " ; ".join(program[a].render() for a in addresses)
        lines.append(f"cycle {cycle:3d}: {rendered}")
    return "\n".join(lines)
