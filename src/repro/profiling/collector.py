"""Profile collection: run a program under an emulated value predictor.

This is phase 2 of the paper's methodology.  The tracing simulator
(:mod:`repro.machine`) executes the program while a value predictor —
by default an *unbounded* stride predictor, so the profile reflects pure
value behaviour rather than table pressure — observes every dynamic
instance of every value-prediction candidate.  The result records, per
static instruction, its prediction accuracy and stride efficiency ratio,
and per (category, phase) the aggregate accuracies behind Table 2.1.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..isa import Category, Number, Program
from ..machine import DEFAULT_BUDGET, Executor, TraceStore
from ..predictors import StridePredictor, ValuePredictor
from ..predictors.stride import StrideEntry
from ..telemetry import get_registry


@dataclasses.dataclass(slots=True)
class InstructionProfile:
    """Per-static-instruction prediction statistics.

    ``attempts`` counts accesses where the predictor held an entry (its
    first dynamic instance only trains).  ``correct`` of those matched;
    ``nonzero_stride_correct`` matched using a non-zero stride.
    """

    address: int
    executions: int = 0
    attempts: int = 0
    correct: int = 0
    nonzero_stride_correct: int = 0

    @property
    def accuracy(self) -> float:
        """Prediction accuracy in percent (0 when never attempted)."""
        if self.attempts == 0:
            return 0.0
        return 100.0 * self.correct / self.attempts

    @property
    def stride_efficiency(self) -> float:
        """Stride efficiency ratio in percent (0 when never correct)."""
        if self.correct == 0:
            return 0.0
        return 100.0 * self.nonzero_stride_correct / self.correct


@dataclasses.dataclass(slots=True)
class GroupStats:
    """Aggregate accuracy for one (category, phase) group."""

    executions: int = 0
    attempts: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        if self.attempts == 0:
            return 0.0
        return 100.0 * self.correct / self.attempts


class ProfileImage:
    """The output of one profiling run (paper Section 3.2, Table 3.1).

    Maps instruction address -> :class:`InstructionProfile`, with program
    and run labels.  The (category, phase) aggregates ride along for the
    Table 2.1 measurements.

    Group accounting is stored at *per-address* granularity
    (:attr:`group_detail`: ``(category, phase) -> {address: [executions,
    attempts, correct]}``) and the coarse :attr:`groups` view is derived
    by summation.  The detail is what makes two operations exact that an
    aggregate-only image cannot support: filtering group counts to a
    subset of instructions (``merge_profiles(require_common=True)``) and
    the lossless save→load→merge round trip of
    :mod:`~repro.profiling.image_io`.
    """

    def __init__(self, program_name: str, run_label: str = "") -> None:
        self.program_name = program_name
        self.run_label = run_label
        self.instructions: Dict[int, InstructionProfile] = {}
        #: (category, phase) -> address -> [executions, attempts, correct]
        self.group_detail: Dict[Tuple[Category, int], Dict[int, List[int]]] = {}

    def profile_for(self, address: int) -> InstructionProfile:
        profile = self.instructions.get(address)
        if profile is None:
            profile = InstructionProfile(address)
            self.instructions[address] = profile
        return profile

    def group_slot(self, category: Category, phase: int, address: int) -> List[int]:
        """The mutable ``[executions, attempts, correct]`` accumulator for
        ``address`` within the ``(category, phase)`` group."""
        key = (category, phase)
        members = self.group_detail.get(key)
        if members is None:
            members = self.group_detail[key] = {}
        slot = members.get(address)
        if slot is None:
            slot = members[address] = [0, 0, 0]
        return slot

    @property
    def groups(self) -> Dict[Tuple[Category, int], GroupStats]:
        """The (category, phase) aggregates, summed from the detail."""
        aggregated: Dict[Tuple[Category, int], GroupStats] = {}
        for key, members in self.group_detail.items():
            stats = GroupStats()
            for executions, attempts, correct in members.values():
                stats.executions += executions
                stats.attempts += attempts
                stats.correct += correct
            aggregated[key] = stats
        return aggregated

    @property
    def addresses(self) -> list[int]:
        return sorted(self.instructions)

    def accuracy_of(self, address: int) -> float:
        profile = self.instructions.get(address)
        return 0.0 if profile is None else profile.accuracy

    def stride_efficiency_of(self, address: int) -> float:
        profile = self.instructions.get(address)
        return 0.0 if profile is None else profile.stride_efficiency

    def overall_accuracy(self, category: Optional[Category] = None) -> float:
        """Aggregate accuracy over all (or one category of) instructions."""
        attempts = 0
        correct = 0
        for (group_category, _phase), stats in self.groups.items():
            if category is not None and group_category is not category:
                continue
            attempts += stats.attempts
            correct += stats.correct
        return 0.0 if attempts == 0 else 100.0 * correct / attempts

    def __len__(self) -> int:
        return len(self.instructions)

    def __eq__(self, other: object) -> bool:
        """Exact equality: labels, per-instruction counts, group detail."""
        if not isinstance(other, ProfileImage):
            return NotImplemented
        return (
            self.program_name == other.program_name
            and self.run_label == other.run_label
            and self.instructions == other.instructions
            and self.group_detail == other.group_detail
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ProfileImage({self.program_name!r}, run={self.run_label!r}, "
            f"{len(self.instructions)} instructions, "
            f"{len(self.group_detail)} groups)"
        )


def collect_profile(
    program: Program,
    inputs: Iterable[Number] = (),
    predictor: Optional[ValuePredictor] = None,
    run_label: str = "",
    max_instructions: Optional[int] = None,
    records=None,
    store: Optional[TraceStore] = None,
    sample_every: int = 1,
    address_buckets: int = 1,
    address_bucket: int = 0,
) -> ProfileImage:
    """Profile one run of ``program`` under ``predictor``.

    Args:
        program: the compiled binary.
        inputs: the run's input stream.
        predictor: predictor to emulate; default is an unbounded
            :class:`~repro.predictors.StridePredictor` (the paper profiles
            with the stride predictor so the stride efficiency ratio is
            also available).
        run_label: stored in the image for bookkeeping.
        max_instructions: optional dynamic-instruction cap.
        store: optional :class:`~repro.machine.TraceStore`; the trace is
            replayed from the store when present there, captured into it
            otherwise.
        sample_every: keep only every ``k``-th dynamic trace record
            (``k = 1`` keeps everything and is byte-identical to full
            profiling; see :func:`collect_profiles`).
        address_buckets / address_bucket: optionally restrict the profile
            to candidate addresses in one modulo bucket.
    """
    images = collect_profiles(
        program,
        inputs,
        predictors={"default": predictor or StridePredictor()},
        run_label=run_label,
        max_instructions=max_instructions,
        records=records,
        store=store,
        sample_every=sample_every,
        address_buckets=address_buckets,
        address_bucket=address_bucket,
    )
    return images["default"]


def collect_profiles(
    program: Program,
    inputs: Iterable[Number] = (),
    predictors: Optional[Mapping[str, ValuePredictor]] = None,
    run_label: str = "",
    max_instructions: Optional[int] = None,
    records=None,
    store: Optional[TraceStore] = None,
    sample_every: int = 1,
    address_buckets: int = 1,
    address_bucket: int = 0,
) -> Dict[str, ProfileImage]:
    """Profile one run under several predictors simultaneously.

    A single execution of the program feeds every predictor, so comparing
    last-value against stride (Table 2.1) costs one simulation, not two.

    The native consumption path walks the executor's columnar trace
    batches (optionally captured into / replayed from ``store``), with a
    batch-walking fast path for unbounded stride predictors that is
    bit-identical to driving ``predictor.access`` record by record.

    Pass ``records`` (an iterable of
    :class:`~repro.machine.trace.TraceRecord`, e.g. from
    :func:`repro.machine.read_trace`) to profile a *stored* trace instead
    of executing the program — the SHADE-style trace/analyze split.

    ``sample_every=k`` keeps only dynamic records whose 0-based position
    in the run's full trace is a multiple of ``k`` — the sampled phase-2
    mode.  The rule is applied to the *unfiltered* dynamic stream (before
    the candidate filter), identically across the ``records``, batch and
    fast-stride consumption paths, so profiling with ``sample_every=k``
    equals profiling ``records[::k]`` and ``k=1`` is byte-identical to
    full profiling (the ``profile-sampled-k1`` oracle pair enforces
    this).  ``address_buckets``/``address_bucket`` optionally restrict
    collection to candidate addresses with ``address % address_buckets
    == address_bucket`` — the bucketed profiles of one run partition the
    full profile.
    """
    if (
        isinstance(sample_every, bool)
        or not isinstance(sample_every, int)
        or sample_every < 1
    ):
        raise ValueError(f"sample_every must be an int >= 1, got {sample_every!r}")
    if (
        isinstance(address_buckets, bool)
        or not isinstance(address_buckets, int)
        or address_buckets < 1
    ):
        raise ValueError(
            f"address_buckets must be an int >= 1, got {address_buckets!r}"
        )
    if not 0 <= address_bucket < address_buckets:
        raise ValueError(
            f"address_bucket must be in [0, {address_buckets}), got {address_bucket!r}"
        )
    if predictors is None:
        predictors = {"stride": StridePredictor()}
    images = {
        name: ProfileImage(program.name, run_label=run_label) for name in predictors
    }
    is_candidate = [
        instruction.is_prediction_candidate for instruction in program.instructions
    ]
    if address_buckets > 1:
        is_candidate = [
            flag and address % address_buckets == address_bucket
            for address, flag in enumerate(is_candidate)
        ]
    categories = [instruction.category for instruction in program.instructions]
    pairs = [(name, predictor) for name, predictor in predictors.items()]

    started = time.perf_counter()
    if records is not None:
        for position, record in enumerate(records):
            if sample_every > 1 and position % sample_every:
                continue
            address = record.address
            if not is_candidate[address]:
                continue
            value = record.value
            phase = record.phase
            category = categories[address]
            for name, predictor in pairs:
                result = predictor.access(address, value)
                image = images[name]
                profile = image.profile_for(address)
                profile.executions += 1
                group = image.group_slot(category, phase, address)
                group[0] += 1
                if result.hit:
                    profile.attempts += 1
                    group[1] += 1
                    if result.correct:
                        profile.correct += 1
                        group[2] += 1
                        if result.nonzero_stride:
                            profile.nonzero_stride_correct += 1
    else:
        budget = max_instructions if max_instructions is not None else DEFAULT_BUDGET
        if store is not None:
            batches = store.batches(program, inputs, max_instructions=budget)
        else:
            batches = Executor(
                program, inputs=inputs, max_instructions=budget
            ).run_batches()
        consumers = []
        finishers = []
        for name, predictor in pairs:
            fast = _fast_stride_profiler(predictor, images[name], categories)
            if fast is not None:
                consume, finish = fast
                consumers.append(consume)
                finishers.append(finish)
            else:
                consumers.append(
                    _generic_profiler(predictor, images[name], categories)
                )
        try:
            # 0-based position of the current batch's first record within
            # the run's full dynamic stream — the sampling rule is global,
            # not per batch, so a record boundary mid-batch cannot shift
            # which records a sampled profile keeps.
            offset = 0
            for batch in batches:
                addresses = batch.addresses
                triples: List[Tuple[int, Optional[Number], int]] = []
                if sample_every > 1:
                    # Sampling indexes records at arbitrary positions, so
                    # rebuild the aligned one-slot-per-record view (the
                    # sampled rows are a small fraction of the batch).
                    values = batch.record_values()
                    for start, end, phase in batch.phase_segments():
                        first = -(-(offset + start) // sample_every) * sample_every
                        triples.extend(
                            (addresses[position], values[position], phase)
                            for position in range(
                                first - offset, end, sample_every
                            )
                            if is_candidate[addresses[position]]
                        )
                else:
                    # Full profiling: cursor-walk the packed produced-value
                    # column (candidates are always producers).
                    vflags = batch.value_flags
                    column = batch.values
                    produced = (
                        column.ints if column.is_pure_int else column.tolist()
                    )
                    append = triples.append
                    cursor = 0
                    for start, end, phase in batch.phase_segments():
                        for position in range(start, end):
                            address = addresses[position]
                            if vflags[address]:
                                if is_candidate[address]:
                                    append((address, produced[cursor], phase))
                                cursor += 1
                offset += len(batch)
                if not triples:
                    continue
                for consume in consumers:
                    consume(triples)
        finally:
            # Fold the fast paths' accumulators even when the trace raised
            # mid-run, matching the record path's behaviour of keeping
            # every observation up to the fault.
            for finish in finishers:
                finish()
    telemetry = get_registry()
    if telemetry.enabled:
        # Candidate records observed = per-image executions (identical
        # across images, so read the first); records/sec derives from the
        # profiling.collect timer downstream.
        first = next(iter(images.values()))
        observed = sum(profile.executions for profile in first.instructions.values())
        telemetry.counter("profiling.records").add(observed)
        telemetry.counter("profiling.runs").add(1)
        telemetry.timer("profiling.collect").add(time.perf_counter() - started)
        if sample_every > 1 or address_buckets > 1:
            telemetry.counter("profiling.sampled.runs").add(1)
            telemetry.counter("profiling.sampled.records").add(observed)
    return images


def _generic_profiler(predictor, image: ProfileImage, categories):
    """Batch consumer for arbitrary predictors: one ``access`` per record."""

    def consume(triples) -> None:
        access = predictor.access
        profile_for = image.profile_for
        group_slot = image.group_slot
        for address, value, phase in triples:
            result = access(address, value)
            profile = profile_for(address)
            profile.executions += 1
            group = group_slot(categories[address], phase, address)
            group[0] += 1
            if result.hit:
                profile.attempts += 1
                group[1] += 1
                if result.correct:
                    profile.correct += 1
                    group[2] += 1
                    if result.nonzero_stride:
                        profile.nonzero_stride_correct += 1

    return consume


def _fast_stride_profiler(predictor, image: ProfileImage, categories):
    """Inlined batch consumer for an unbounded stride predictor.

    Operates directly on the predictor's (single, unbounded) table set
    with local counter accumulators, folding them into the profile image
    and the table's lookup/hit counters when finished.  Results are
    bit-identical to the generic path; the only divergence is internal —
    the table set's LRU order is not refreshed on hits, which is
    unobservable for a table that never evicts.
    """
    if type(predictor) is not StridePredictor or not predictor.table.is_infinite:
        return None
    table = predictor.table
    entries = table._set_for(0)
    counts: Dict[int, List[int]] = {}
    #: (address, phase) -> [executions, attempts, correct]; the category
    #: is static per address and re-attached when folding into the image.
    group_counts: Dict[Tuple[int, int], List[int]] = {}
    meters = [0, 0]  # lookups, hits

    def consume(triples) -> None:
        lookups = hits = 0
        get_entry = entries.get
        get_count = counts.get
        get_group = group_counts.get
        for address, value, phase in triples:
            slot = get_count(address)
            if slot is None:
                slot = counts[address] = [0, 0, 0, 0]
            group_key = (address, phase)
            group = get_group(group_key)
            if group is None:
                group = group_counts[group_key] = [0, 0, 0]
            slot[0] += 1
            group[0] += 1
            lookups += 1
            entry = get_entry(address)
            if entry is None:
                entries[address] = StrideEntry(value)
                continue
            hits += 1
            last = entry.last_value
            stride = entry.stride
            entry.stride = value - last
            entry.last_value = value
            slot[1] += 1
            group[1] += 1
            if last + stride == value:
                slot[2] += 1
                group[2] += 1
                if stride != 0:
                    slot[3] += 1
        meters[0] += lookups
        meters[1] += hits

    def finish() -> None:
        table.lookups += meters[0]
        table.hits += meters[1]
        meters[0] = meters[1] = 0
        for address, slot in counts.items():
            profile = image.profile_for(address)
            profile.executions += slot[0]
            profile.attempts += slot[1]
            profile.correct += slot[2]
            profile.nonzero_stride_correct += slot[3]
        counts.clear()
        for (address, phase), group in group_counts.items():
            stats = image.group_slot(categories[address], phase, address)
            stats[0] += group[0]
            stats[1] += group[1]
            stats[2] += group[2]
        group_counts.clear()

    return consume, finish
