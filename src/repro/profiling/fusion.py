"""Streaming fusion of profile images in bounded memory.

Batch :func:`~repro.profiling.merge.merge_profiles` materializes every
input image before summing — fine for the paper's five training runs,
impossible for the fleet-scale case the ROADMAP targets (thousands of
edge-run profiles).  :class:`MergeAccumulator` folds images one at a
time: memory is bounded by the size of the *merged* table (and, under
``require_common``, by the first image — the running intersection only
shrinks), never by the number of inputs.

The merge algebra verified in the PR 5 oracle (associative, commutative,
commutes with serialization) is the license for this: any fold order
over any transport — in-memory image, open text stream, or a
:class:`~repro.profiling.sketch.ProfileSketch` — produces the same
merged image as the batch path.  That equivalence is not assumed; the
``fuse-stream-vs-batch`` oracle pair (:mod:`repro.check.oracle`)
differentially tests this module against the independently implemented
batch merge on seeded random programs, and a hypothesis property does
the same over random images.

The ``require_common`` intersection is maintained incrementally: each
fold first drops accumulated addresses missing from the incoming image
(they can never rejoin — intersection is monotone), then adds the
incoming counts for the survivors.  Group accounting is pruned with the
same keep-set, matching the batch semantics exactly.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from ..isa import Category
from ..telemetry import get_registry
from .collector import InstructionProfile, ProfileImage
from .image_io import load_profile, read_profile
from .sketch import SKETCH_MAGIC, ProfileSketch, read_sketch

#: Anything `MergeAccumulator.fold` accepts.
FusionSource = Union[ProfileImage, ProfileSketch, object]


def _as_image(source: FusionSource) -> ProfileImage:
    if isinstance(source, ProfileImage):
        return source
    if isinstance(source, ProfileSketch):
        return source.to_image()
    if hasattr(source, "read"):
        return load_profile(source)
    raise TypeError(
        f"cannot fold {type(source).__name__}: expected a ProfileImage, "
        "a ProfileSketch, or an open text stream"
    )


class MergeAccumulator:
    """Fold profile images one at a time into a single merged image.

    Equivalent to ``merge_profiles(images, ...)`` for any fold order,
    but holds only the running merge in memory.  Sources may be
    :class:`ProfileImage` objects, :class:`ProfileSketch` objects, or
    open text streams in the v1 format (auto-``load_profile``).

    >>> accumulator = MergeAccumulator(require_common=True)
    >>> for image in images:          # doctest: +SKIP
    ...     accumulator.fold(image)
    >>> merged = accumulator.result() # doctest: +SKIP
    """

    def __init__(
        self,
        *,
        program_name: str = "",
        run_label: str = "merged",
        require_common: bool = False,
    ) -> None:
        self._program_name = program_name
        self._run_label = run_label
        self._require_common = require_common
        self._first_program_name = ""
        self._folded = 0
        #: address -> [executions, attempts, correct, nonzero_stride_correct]
        self._instructions: Dict[int, List[int]] = {}
        #: (category, phase) -> address -> [executions, attempts, correct]
        self._groups: Dict[Tuple[Category, int], Dict[int, List[int]]] = {}

    @property
    def images_folded(self) -> int:
        """How many sources have been folded so far."""
        return self._folded

    @property
    def live_addresses(self) -> int:
        """Instruction addresses currently resident in the accumulator.

        Under ``require_common`` this is monotone non-increasing after
        the first fold — the bounded-memory guarantee the tests assert.
        """
        return len(self._instructions)

    def fold(self, source: FusionSource) -> "MergeAccumulator":
        """Fold one more source into the running merge."""
        image = _as_image(source)
        started = time.perf_counter()
        if self._folded == 0:
            self._first_program_name = image.program_name
        if self._require_common and self._folded > 0:
            self._shrink_to(image.instructions)
        restrict = self._require_common and self._folded > 0
        instructions = self._instructions
        for address, profile in image.instructions.items():
            into = instructions.get(address)
            if into is None:
                if restrict:
                    continue
                instructions[address] = [
                    profile.executions,
                    profile.attempts,
                    profile.correct,
                    profile.nonzero_stride_correct,
                ]
            else:
                into[0] += profile.executions
                into[1] += profile.attempts
                into[2] += profile.correct
                into[3] += profile.nonzero_stride_correct
        for key, members in image.group_detail.items():
            into_members = self._groups.get(key)
            for address, counts in members.items():
                if self._require_common and address not in instructions:
                    continue
                if into_members is None:
                    into_members = self._groups.setdefault(key, {})
                slot = into_members.get(address)
                if slot is None:
                    into_members[address] = list(counts)
                else:
                    slot[0] += counts[0]
                    slot[1] += counts[1]
                    slot[2] += counts[2]
        self._folded += 1
        telemetry = get_registry()
        if telemetry.enabled:
            telemetry.counter("fusion.images").add(1)
            telemetry.timer("fusion.fold").add(time.perf_counter() - started)
        return self

    def _shrink_to(self, incoming: Dict[int, InstructionProfile]) -> None:
        """Drop accumulated addresses absent from ``incoming``.

        The intersection is monotone — a dropped address can never
        rejoin — so pruning eagerly is what bounds the memory.
        """
        stale = [
            address for address in self._instructions if address not in incoming
        ]
        if not stale:
            return
        for address in stale:
            del self._instructions[address]
        empty_keys = []
        for key, members in self._groups.items():
            dead = [
                address for address in members
                if address not in self._instructions
            ]
            for address in dead:
                del members[address]
            if not members:
                empty_keys.append(key)
        for key in empty_keys:
            del self._groups[key]

    def update(self, sources: Iterable[FusionSource]) -> "MergeAccumulator":
        """Fold every source from an iterable (consumed lazily)."""
        for source in sources:
            self.fold(source)
        return self

    def result(self) -> ProfileImage:
        """Build the merged image from the accumulated counts.

        Raises :class:`ValueError` when nothing has been folded,
        matching ``merge_profiles([])``.  The accumulator stays usable
        — further folds refine a later ``result()``.
        """
        if self._folded == 0:
            raise ValueError("cannot merge zero profile images")
        merged = ProfileImage(
            self._program_name or self._first_program_name,
            run_label=self._run_label,
        )
        for address, counts in self._instructions.items():
            merged.instructions[address] = InstructionProfile(
                address=address,
                executions=counts[0],
                attempts=counts[1],
                correct=counts[2],
                nonzero_stride_correct=counts[3],
            )
        for key, members in self._groups.items():
            merged.group_detail[key] = {
                address: list(slot) for address, slot in members.items()
            }
        telemetry = get_registry()
        if telemetry.enabled:
            telemetry.counter("fusion.runs").add(1)
        return merged


def fuse_images(
    sources: Iterable[FusionSource],
    *,
    program_name: str = "",
    run_label: str = "merged",
    require_common: bool = False,
) -> ProfileImage:
    """One-shot streaming fuse of an iterable of sources."""
    accumulator = MergeAccumulator(
        program_name=program_name,
        run_label=run_label,
        require_common=require_common,
    )
    return accumulator.update(sources).result()


def read_any_profile(path: Union[str, Path]) -> ProfileImage:
    """Load ``path`` as a profile image, sniffing text image vs sketch.

    Any malformed content — truncated files, a mangled magic line,
    corrupt deflate bodies, binary garbage — raises a typed
    :class:`~repro.profiling.image_io.ProfileFormatError` (or its
    :class:`~repro.profiling.sketch.SketchFormatError` subclass), never
    a bare ``zlib.error``/``UnicodeDecodeError``.
    """
    with open(path, "rb") as stream:
        head = stream.read(len(SKETCH_MAGIC))
    if head == SKETCH_MAGIC:
        return read_sketch(path).to_image()
    return read_profile(path)


__all__ = [
    "FusionSource",
    "MergeAccumulator",
    "fuse_images",
    "read_any_profile",
]
