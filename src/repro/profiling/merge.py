"""Combining profile images from multiple training runs.

The paper's phase 2 may run the program "either single or multiple times,
where in each run the program is driven by different input parameters and
files".  Merging sums the underlying counts, which weights each run by its
dynamic instruction count — an instruction that executes a million times
in one training run and ten in another is dominated by the former, exactly
as a single concatenated profiling session would be.

This is the *batch* path: it materializes every input image before
summing, which is the right call for the paper's five training runs and
is kept as an independent implementation so the streaming path
(:mod:`~repro.profiling.fusion`) has a genuine differential reference.
For fleet-scale inputs use :class:`~repro.profiling.fusion.MergeAccumulator`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Union

from .collector import InstructionProfile, ProfileImage
from .image_io import load_profile

#: ``merge_profiles`` accepts images or open v1 text streams.
MergeSource = Union[ProfileImage, object]


def _as_image(source: MergeSource) -> ProfileImage:
    if isinstance(source, ProfileImage):
        return source
    if hasattr(source, "read"):
        return load_profile(source)
    raise TypeError(
        f"cannot merge {type(source).__name__}: expected a ProfileImage "
        "or an open text stream"
    )


def common_addresses(images: Iterable[ProfileImage]) -> List[int]:
    """Addresses profiled in *every* image.

    The paper: "we only consider the instructions that appear in all the
    different runs of the program" (instructions appearing in only some
    runs are omitted; their number is relatively small).

    Intersects incrementally — memory is bounded by the first image, the
    running set only shrinks, and an empty intersection stops consuming
    the input (at thousands of images most of the work is skipped).
    """
    addresses: Optional[Set[int]] = None
    for image in images:
        if addresses is None:
            addresses = set(image.instructions)
        else:
            addresses.intersection_update(image.instructions)
        if not addresses:
            break
    return sorted(addresses) if addresses else []


def merge_profiles(
    images: Iterable[MergeSource],
    *,
    program_name: str = "",
    run_label: str = "merged",
    require_common: bool = False,
) -> ProfileImage:
    """Merge several training-run images into one by summing counts.

    Args:
        images: the per-run profile images, or open text streams in the
            v1 format (each is passed through
            :func:`~repro.profiling.image_io.load_profile`).
        program_name: name for the merged image (defaults to the first
            image's).
        run_label: label for the merged image.
        require_common: keep only instructions present in every run
            (matching the vector analysis of Section 4); otherwise keep
            the union.  The filter applies to the per-instruction table
            *and* to the (category, phase) group accounting — an
            instruction dropped from the merged table contributes
            nothing to the merged group aggregates either.
    """
    image_list = [_as_image(source) for source in images]
    if not image_list:
        raise ValueError("cannot merge zero profile images")
    keep = set(common_addresses(image_list)) if require_common else None
    merged = ProfileImage(
        program_name or image_list[0].program_name, run_label=run_label
    )
    for image in image_list:
        for address, profile in image.instructions.items():
            if keep is not None and address not in keep:
                continue
            into = merged.profile_for(address)
            into.executions += profile.executions
            into.attempts += profile.attempts
            into.correct += profile.correct
            into.nonzero_stride_correct += profile.nonzero_stride_correct
        for (category, phase), members in image.group_detail.items():
            for address, counts in members.items():
                if keep is not None and address not in keep:
                    continue
                slot = merged.group_slot(category, phase, address)
                slot[0] += counts[0]
                slot[1] += counts[1]
                slot[2] += counts[2]
    return merged


def _merged_instruction(profiles: Sequence[InstructionProfile]) -> InstructionProfile:
    """Sum a sequence of per-run profiles for the same address."""
    merged = InstructionProfile(profiles[0].address)
    for profile in profiles:
        merged.executions += profile.executions
        merged.attempts += profile.attempts
        merged.correct += profile.correct
        merged.nonzero_stride_correct += profile.nonzero_stride_correct
    return merged
