"""The similarity metrics of the paper's Section 4.

Each run's profile image is viewed as a vector whose coordinate ``l`` is
the prediction accuracy (or stride efficiency ratio) of instruction ``l``;
only instructions appearing in all runs are kept.  Two metrics measure the
resemblance of the run vectors:

* **maximum-distance** ``M(V)max`` (Equation 4.1): coordinate ``i`` is the
  maximum absolute difference between coordinate ``i`` of any pair of
  vectors;
* **average-distance** ``M(V)average`` (Equation 4.2): the arithmetic mean
  of those pairwise differences.

The distribution of metric coordinates over the intervals [0,10],
(10,20], ..., (90,100] (Figures 4.1-4.3) shows whether value
predictability transfers across inputs: mass in the low intervals means
the profiles agree.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .collector import ProfileImage
from .merge import common_addresses

#: Interval edges of the paper's histograms: [0,10], (10,20], ..., (90,100].
HISTOGRAM_EDGES = [10.0 * i for i in range(11)]

#: Human-readable labels for the ten intervals.
HISTOGRAM_LABELS = ["[0,10]"] + [f"({10 * i},{10 * (i + 1)}]" for i in range(1, 10)]


def accuracy_vectors(images: Sequence[ProfileImage]) -> List[List[float]]:
    """Per-run prediction-accuracy vectors over the common instructions."""
    return _vectors(images, lambda image, address: image.accuracy_of(address))


def stride_efficiency_vectors(images: Sequence[ProfileImage]) -> List[List[float]]:
    """Per-run stride-efficiency vectors over the common instructions."""
    return _vectors(
        images, lambda image, address: image.stride_efficiency_of(address)
    )


def _vectors(
    images: Sequence[ProfileImage],
    value_of: Callable[[ProfileImage, int], float],
) -> List[List[float]]:
    if len(images) < 2:
        raise ValueError("need at least two runs to compare")
    addresses = common_addresses(images)
    return [[value_of(image, address) for address in addresses] for image in images]


def max_distance_metric(vectors: Sequence[Sequence[float]]) -> List[float]:
    """``M(V)max`` of Equation 4.1: per-coordinate max pairwise distance."""
    _validate(vectors)
    coordinate_count = len(vectors[0])
    metric: List[float] = []
    for index in range(coordinate_count):
        column = [vector[index] for vector in vectors]
        largest = 0.0
        for first in range(len(column)):
            for second in range(first + 1, len(column)):
                distance = abs(column[first] - column[second])
                if distance > largest:
                    largest = distance
        metric.append(largest)
    return metric


def average_distance_metric(vectors: Sequence[Sequence[float]]) -> List[float]:
    """``M(V)average`` of Equation 4.2: per-coordinate mean pairwise distance."""
    _validate(vectors)
    run_count = len(vectors)
    pair_count = run_count * (run_count - 1) // 2
    coordinate_count = len(vectors[0])
    metric: List[float] = []
    for index in range(coordinate_count):
        column = [vector[index] for vector in vectors]
        total = 0.0
        for first in range(run_count):
            for second in range(first + 1, run_count):
                total += abs(column[first] - column[second])
        metric.append(total / pair_count)
    return metric


def _validate(vectors: Sequence[Sequence[float]]) -> None:
    if len(vectors) < 2:
        raise ValueError("metrics need at least two vectors")
    lengths = {len(vector) for vector in vectors}
    if len(lengths) != 1:
        raise ValueError(f"vectors have differing dimensions: {sorted(lengths)}")


def interval_histogram(values: Sequence[float]) -> List[int]:
    """Count ``values`` into the paper's ten accuracy intervals.

    The first interval is closed ([0,10]); the rest are half-open
    ((10,20] ... (90,100]).  Values outside [0,100] raise ``ValueError``.
    """
    counts = [0] * 10
    for value in values:
        if not 0.0 <= value <= 100.0:
            raise ValueError(f"value {value} outside [0, 100]")
        if value <= 10.0:
            counts[0] += 1
        else:
            # ceil(value/10) - 1 indexes the (10k, 10k+10] interval.
            bin_index = int(-(-value // 10.0)) - 1
            counts[min(bin_index, 9)] += 1
    return counts


def interval_percentages(values: Sequence[float]) -> List[float]:
    """The interval histogram normalized to percentages (sums to ~100)."""
    counts = interval_histogram(values)
    total = sum(counts)
    if total == 0:
        return [0.0] * 10
    return [100.0 * count / total for count in counts]
