"""Profile-image file format.

The paper describes the profile output as "a file that is organized as a
table.  Each entry is associated with an individual instruction and
consists of three fields: the instruction's address, its prediction
accuracy and its stride efficiency ratio."  We persist the underlying
*counts* instead of the two ratios so that images from multiple training
runs can be merged exactly; the ratios are recomputed on load.

Format (text, line-oriented)::

    # repro-profile-image v1
    # program: 126.gcc
    # run: train-0
    # columns: address executions attempts correct nonzero_stride_correct
    3 1000 999 995 995
    ...
    # group: int_alu 2 3 1000 999 995

v1 extension — group rows.  The per-address (category, phase) group
accounting (:attr:`~repro.profiling.collector.ProfileImage.group_detail`,
behind Table 2.1) is persisted as ``# group: <category> <phase>
<address> <executions> <attempts> <correct>`` comment rows, one per
member address.  Writing them as comments keeps the extension backward
compatible: v1 readers that predate it skip every ``#`` line and still
load the instruction table.  The loader validates group rows exactly
like instruction rows — integer fields, ``0 <= correct <= attempts <=
executions`` — and rejects duplicate rows, so a save→load→merge
pipeline is bit-for-bit identical to merging the in-memory images.
"""

from __future__ import annotations

import io
import os
import tempfile
from pathlib import Path
from typing import TextIO, Union

from ..isa import Category
from .collector import InstructionProfile, ProfileImage

_MAGIC = "# repro-profile-image v1"

_CATEGORY_BY_VALUE = {category.value: category for category in Category}


class ProfileFormatError(ValueError):
    """Raised when a profile-image file is malformed."""


def dump_profile(image: ProfileImage, stream: TextIO) -> None:
    """Write ``image`` to ``stream`` in the v1 text format."""
    stream.write(f"{_MAGIC}\n")
    stream.write(f"# program: {image.program_name}\n")
    stream.write(f"# run: {image.run_label}\n")
    stream.write("# columns: address executions attempts correct "
                 "nonzero_stride_correct\n")
    for address in image.addresses:
        profile = image.instructions[address]
        stream.write(
            f"{address} {profile.executions} {profile.attempts} "
            f"{profile.correct} {profile.nonzero_stride_correct}\n"
        )
    for (category, phase), members in sorted(
        image.group_detail.items(), key=lambda item: (item[0][0].value, item[0][1])
    ):
        for address in sorted(members):
            executions, attempts, correct = members[address]
            stream.write(
                f"# group: {category.value} {phase} {address} "
                f"{executions} {attempts} {correct}\n"
            )


def dumps_profile(image: ProfileImage) -> str:
    """Serialize ``image`` to a string."""
    buffer = io.StringIO()
    dump_profile(image, buffer)
    return buffer.getvalue()


def _publish_atomic(path: Path, payload: Union[str, bytes]) -> None:
    """Publish ``payload`` at ``path`` via temp file + rename.

    Mirrors the TraceStore publish semantics: a reader either sees the
    previous complete file or the new complete file, never a torn write,
    and a failure mid-write leaves the original untouched.
    """
    parent = path.parent if str(path.parent) else Path(".")
    handle, tmp_name = tempfile.mkstemp(
        dir=str(parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        if isinstance(payload, bytes):
            with os.fdopen(handle, "wb") as stream:
                stream.write(payload)
        else:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already renamed or removed
            pass
        raise


def save_profile(image: ProfileImage, path: Union[str, Path]) -> None:
    """Write ``image`` to ``path`` atomically (temp file + rename).

    The image is serialized in full before the temp file is created, so
    a serialization failure leaves the filesystem untouched.
    """
    _publish_atomic(Path(path), dumps_profile(image))


def _parse_group_row(line_number: int, body: str) -> tuple:
    """Parse the payload of one ``# group:`` row."""
    fields = body.split()
    if len(fields) != 6:
        raise ProfileFormatError(
            f"line {line_number}: group row expects 6 fields, got {len(fields)}"
        )
    category = _CATEGORY_BY_VALUE.get(fields[0])
    if category is None:
        raise ProfileFormatError(
            f"line {line_number}: unknown group category {fields[0]!r}"
        )
    try:
        phase, address, executions, attempts, correct = (
            int(field) for field in fields[1:]
        )
    except ValueError:
        raise ProfileFormatError(
            f"line {line_number}: non-integer field in group row {body!r}"
        ) from None
    if not 0 <= correct <= attempts <= executions:
        raise ProfileFormatError(
            f"line {line_number}: inconsistent group counts for address {address}"
        )
    return category, phase, address, executions, attempts, correct


def load_profile(stream: TextIO) -> ProfileImage:
    """Parse a v1 profile image from ``stream``.

    Raises:
        ProfileFormatError: on a bad magic line, malformed rows, or a
            duplicate instruction/group row.
    """
    first = stream.readline().rstrip("\n")
    if first != _MAGIC:
        raise ProfileFormatError(f"not a profile image (header {first!r})")
    program_name = ""
    run_label = ""
    rows = []
    group_rows = []
    for line_number, raw in enumerate(stream, start=2):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("program:"):
                program_name = body[len("program:"):].strip()
            elif body.startswith("run:"):
                run_label = body[len("run:"):].strip()
            elif body.startswith("group:"):
                group_rows.append(
                    (line_number, _parse_group_row(line_number, body[len("group:"):]))
                )
            continue
        fields = line.split()
        if len(fields) != 5:
            raise ProfileFormatError(
                f"line {line_number}: expected 5 fields, got {len(fields)}"
            )
        try:
            rows.append((line_number,) + tuple(int(field) for field in fields))
        except ValueError:
            raise ProfileFormatError(
                f"line {line_number}: non-integer field in {line!r}"
            ) from None
    image = ProfileImage(program_name, run_label=run_label)
    for line_number, address, executions, attempts, correct, nonzero in rows:
        if not 0 <= correct <= attempts <= executions or nonzero > correct:
            raise ProfileFormatError(
                f"line {line_number}: inconsistent counts for address {address}"
            )
        if address in image.instructions:
            raise ProfileFormatError(
                f"line {line_number}: duplicate row for address {address}"
            )
        image.instructions[address] = InstructionProfile(
            address=address,
            executions=executions,
            attempts=attempts,
            correct=correct,
            nonzero_stride_correct=nonzero,
        )
    for line_number, (category, phase, address, executions, attempts, correct) in (
        group_rows
    ):
        members = image.group_detail.setdefault((category, phase), {})
        if address in members:
            raise ProfileFormatError(
                f"line {line_number}: duplicate group row for "
                f"{category.value} phase {phase} address {address}"
            )
        members[address] = [executions, attempts, correct]
    return image


def loads_profile(text: str) -> ProfileImage:
    """Parse a v1 profile image from a string."""
    return load_profile(io.StringIO(text))


def read_profile(path: Union[str, Path]) -> ProfileImage:
    """Load a profile image from ``path``.

    Raises :class:`ProfileFormatError` for any malformed content —
    including binary garbage that is not valid UTF-8, which the text
    decoder would otherwise surface as a bare ``UnicodeDecodeError``.
    """
    try:
        with open(path, "r", encoding="utf-8") as stream:
            return load_profile(stream)
    except UnicodeDecodeError as error:
        raise ProfileFormatError(
            f"{path}: not a text profile image (undecodable bytes: {error})"
        ) from error
