"""Profile-image file format.

The paper describes the profile output as "a file that is organized as a
table.  Each entry is associated with an individual instruction and
consists of three fields: the instruction's address, its prediction
accuracy and its stride efficiency ratio."  We persist the underlying
*counts* instead of the two ratios so that images from multiple training
runs can be merged exactly; the ratios are recomputed on load.

Format (text, line-oriented)::

    # repro-profile-image v1
    # program: 126.gcc
    # run: train-0
    # columns: address executions attempts correct nonzero_stride_correct
    3 1000 999 995 995
    ...
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from .collector import InstructionProfile, ProfileImage

_MAGIC = "# repro-profile-image v1"


class ProfileFormatError(ValueError):
    """Raised when a profile-image file is malformed."""


def dump_profile(image: ProfileImage, stream: TextIO) -> None:
    """Write ``image`` to ``stream`` in the v1 text format."""
    stream.write(f"{_MAGIC}\n")
    stream.write(f"# program: {image.program_name}\n")
    stream.write(f"# run: {image.run_label}\n")
    stream.write("# columns: address executions attempts correct "
                 "nonzero_stride_correct\n")
    for address in image.addresses:
        profile = image.instructions[address]
        stream.write(
            f"{address} {profile.executions} {profile.attempts} "
            f"{profile.correct} {profile.nonzero_stride_correct}\n"
        )


def dumps_profile(image: ProfileImage) -> str:
    """Serialize ``image`` to a string."""
    buffer = io.StringIO()
    dump_profile(image, buffer)
    return buffer.getvalue()


def save_profile(image: ProfileImage, path: Union[str, Path]) -> None:
    """Write ``image`` to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        dump_profile(image, stream)


def load_profile(stream: TextIO) -> ProfileImage:
    """Parse a v1 profile image from ``stream``.

    Raises:
        ProfileFormatError: on a bad magic line or malformed rows.
    """
    first = stream.readline().rstrip("\n")
    if first != _MAGIC:
        raise ProfileFormatError(f"not a profile image (header {first!r})")
    program_name = ""
    run_label = ""
    image: ProfileImage
    rows = []
    for line_number, raw in enumerate(stream, start=2):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("program:"):
                program_name = body[len("program:"):].strip()
            elif body.startswith("run:"):
                run_label = body[len("run:"):].strip()
            continue
        fields = line.split()
        if len(fields) != 5:
            raise ProfileFormatError(
                f"line {line_number}: expected 5 fields, got {len(fields)}"
            )
        try:
            rows.append(tuple(int(field) for field in fields))
        except ValueError:
            raise ProfileFormatError(
                f"line {line_number}: non-integer field in {line!r}"
            ) from None
    image = ProfileImage(program_name, run_label=run_label)
    for address, executions, attempts, correct, nonzero in rows:
        if not 0 <= correct <= attempts <= executions or nonzero > correct:
            raise ProfileFormatError(f"inconsistent counts for address {address}")
        image.instructions[address] = InstructionProfile(
            address=address,
            executions=executions,
            attempts=attempts,
            correct=correct,
            nonzero_stride_correct=nonzero,
        )
    return image


def loads_profile(text: str) -> ProfileImage:
    """Parse a v1 profile image from a string."""
    return load_profile(io.StringIO(text))


def read_profile(path: Union[str, Path]) -> ProfileImage:
    """Load a profile image from ``path``."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_profile(stream)
