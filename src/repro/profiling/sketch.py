"""Compact profile sketches: the wire format for fleet-scale fusion.

A :class:`ProfileSketch` is a profile image compressed for shipping from
"edge" profiling runs to a central fusion point (ROADMAP: fleet-scale
profile fusion; cf. *Hardware Counted Profile-Guided Optimization* —
cheap collection only pays off if the upload is cheap too).  The bulk of
a v1 text image is per-address counter rows, so the sketch encodes
exactly those, three ways smaller:

1. **varint** — counters are magnitude-skewed (most instructions execute
   far fewer times than the hottest one), so LEB128 variable-length
   integers beat fixed-width fields;
2. **delta** — addresses are encoded sorted as successive differences,
   and within a row the counter chain ``executions >= attempts >=
   correct >= nonzero_stride_correct`` is stored as its non-negative
   differences, which are small when accuracy is high (the common case
   the paper banks on);
3. **zlib** — the varint body is deflate-compressed, which collapses the
   heavy cross-row redundancy of profile tables.

Optionally the counters are **quantized**: level ``q`` floor-truncates
the low ``q`` bits of every counter (``count >> q << q``).  Truncation
preserves the ordering invariants the loader enforces, degrades counts
by at most ``2**q - 1`` each, and its absolute error is monotone
non-decreasing in ``q`` — :func:`fidelity_report` measures the actual
classification-fidelity loss on a corpus so the trade is chosen from
data, not hope.

Level 0 is lossless: ``loads_sketch(dumps_sketch(s)).to_image()``
round-trips the image exactly, so a sketch is a drop-in transport for
the merge algebra verified in the PR 5 oracle.

Binary layout::

    # repro-profile-sketch v1\n      (magic, bytes)
    zlib(body)                       (to end of stream)

where ``body`` is a varint stream: program/run labels (length-prefixed
UTF-8), the quantization level, the instruction-row count and rows
(zigzag address delta, then the quantized counter-chain deltas), then
the group count and per-(category, phase) member rows in the same shape.
"""

from __future__ import annotations

import base64
import binascii
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..isa import Category
from ..telemetry import get_registry
from .collector import InstructionProfile, ProfileImage
from .image_io import (
    ProfileFormatError,
    _publish_atomic,
    dumps_profile,
    loads_profile,
)

SKETCH_MAGIC = b"# repro-profile-sketch v1\n"

_CATEGORY_BY_VALUE = {category.value: category for category in Category}

#: Quantization levels measured by default in :func:`fidelity_report`.
DEFAULT_FIDELITY_LEVELS: Tuple[int, ...] = (0, 1, 2, 4, 8)


class SketchFormatError(ProfileFormatError):
    """Raised when a profile-sketch payload is malformed."""


def _quantize(count: int, level: int) -> int:
    return (count >> level) << level


@dataclass(frozen=True)
class ProfileSketch:
    """A profile image plus the quantization level it was encoded at.

    ``image`` already carries the quantized (floor-truncated) counts, so
    :meth:`to_image` is free and a sketch round-trips bit-for-bit through
    :func:`dumps_sketch` / :func:`loads_sketch` at any level.
    """

    image: ProfileImage
    quantize: int = 0

    @classmethod
    def from_image(cls, image: ProfileImage, quantize: int = 0) -> "ProfileSketch":
        """Sketch ``image`` at ``quantize`` (level 0 is lossless)."""
        if quantize < 0:
            raise ValueError(f"quantization level must be >= 0, got {quantize}")
        sketched = ProfileImage(image.program_name, run_label=image.run_label)
        for address in image.addresses:
            profile = image.instructions[address]
            sketched.instructions[address] = InstructionProfile(
                address=address,
                executions=_quantize(profile.executions, quantize),
                attempts=_quantize(profile.attempts, quantize),
                correct=_quantize(profile.correct, quantize),
                nonzero_stride_correct=_quantize(
                    profile.nonzero_stride_correct, quantize
                ),
            )
        for key, members in image.group_detail.items():
            sketched.group_detail[key] = {
                address: [_quantize(count, quantize) for count in members[address]]
                for address in sorted(members)
            }
        return cls(image=sketched, quantize=quantize)

    def to_image(self) -> ProfileImage:
        """The (de)quantized profile image this sketch represents."""
        return self.image


# --------------------------------------------------------------------------
# varint primitives


def _put_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise SketchFormatError(f"cannot encode negative varint {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _get_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SketchFormatError("truncated varint in sketch body")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _put_svarint(out: bytearray, value: int) -> None:
    """Zigzag-encoded signed varint (used for first-address and phase)."""
    _put_uvarint(out, value * 2 if value >= 0 else -value * 2 - 1)


def _get_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    raw, pos = _get_uvarint(data, pos)
    return (raw // 2 if raw % 2 == 0 else -(raw + 1) // 2), pos


def _put_text(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _put_uvarint(out, len(raw))
    out.extend(raw)


def _get_text(data: bytes, pos: int) -> Tuple[str, int]:
    length, pos = _get_uvarint(data, pos)
    if pos + length > len(data):
        raise SketchFormatError("truncated string in sketch body")
    try:
        text = data[pos : pos + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SketchFormatError(f"invalid UTF-8 in sketch body: {exc}") from None
    return text, pos + length


# --------------------------------------------------------------------------
# encode / decode


def dumps_sketch(sketch: ProfileSketch) -> bytes:
    """Serialize ``sketch`` to its binary wire format."""
    started = time.perf_counter()
    image = sketch.image
    body = bytearray()
    _put_text(body, image.program_name)
    _put_text(body, image.run_label)
    _put_uvarint(body, sketch.quantize)

    addresses = image.addresses
    _put_uvarint(body, len(addresses))
    previous = 0
    for address in addresses:
        profile = image.instructions[address]
        _put_svarint(body, address - previous)
        previous = address
        executions = profile.executions
        attempts = profile.attempts
        correct = profile.correct
        nonzero = profile.nonzero_stride_correct
        if not 0 <= nonzero <= correct <= attempts <= executions:
            raise SketchFormatError(
                f"inconsistent counts for address {address}"
            )
        _put_uvarint(body, executions)
        _put_uvarint(body, executions - attempts)
        _put_uvarint(body, attempts - correct)
        _put_uvarint(body, correct - nonzero)

    group_keys = sorted(
        image.group_detail, key=lambda key: (key[0].value, key[1])
    )
    _put_uvarint(body, len(group_keys))
    for category, phase in group_keys:
        members = image.group_detail[(category, phase)]
        _put_text(body, category.value)
        _put_svarint(body, phase)
        _put_uvarint(body, len(members))
        previous = 0
        for address in sorted(members):
            executions, attempts, correct = members[address]
            if not 0 <= correct <= attempts <= executions:
                raise SketchFormatError(
                    f"inconsistent group counts for address {address}"
                )
            _put_svarint(body, address - previous)
            previous = address
            _put_uvarint(body, executions)
            _put_uvarint(body, executions - attempts)
            _put_uvarint(body, attempts - correct)

    payload = SKETCH_MAGIC + zlib.compress(bytes(body), 9)
    telemetry = get_registry()
    if telemetry.enabled:
        telemetry.counter("fusion.sketch_bytes").add(len(payload))
        telemetry.timer("fusion.encode").add(time.perf_counter() - started)
    return payload


def loads_sketch(data: bytes) -> ProfileSketch:
    """Parse a binary sketch payload.

    Raises:
        SketchFormatError: on a bad magic, a corrupt deflate stream,
            truncated or trailing bytes, unsorted/duplicate rows, or an
            unknown group category.
    """
    started = time.perf_counter()
    if not data.startswith(SKETCH_MAGIC):
        raise SketchFormatError(
            f"not a profile sketch (header {bytes(data[:16])!r})"
        )
    try:
        decompressor = zlib.decompressobj()
        body = decompressor.decompress(data[len(SKETCH_MAGIC):])
        body += decompressor.flush()
    except zlib.error as exc:
        raise SketchFormatError(f"corrupt sketch body: {exc}") from None
    if not decompressor.eof:
        raise SketchFormatError("truncated deflate stream in sketch")
    if decompressor.unused_data:
        raise SketchFormatError(
            f"{len(decompressor.unused_data)} trailing bytes after "
            "sketch deflate stream"
        )

    pos = 0
    program_name, pos = _get_text(body, pos)
    run_label, pos = _get_text(body, pos)
    quantize, pos = _get_uvarint(body, pos)
    image = ProfileImage(program_name, run_label=run_label)

    row_count, pos = _get_uvarint(body, pos)
    previous: Optional[int] = None
    for _ in range(row_count):
        delta, pos = _get_svarint(body, pos)
        address = delta if previous is None else previous + delta
        if previous is not None and delta <= 0:
            raise SketchFormatError(
                f"unsorted or duplicate instruction row at address {address}"
            )
        previous = address
        executions, pos = _get_uvarint(body, pos)
        gap_attempts, pos = _get_uvarint(body, pos)
        gap_correct, pos = _get_uvarint(body, pos)
        gap_nonzero, pos = _get_uvarint(body, pos)
        attempts = executions - gap_attempts
        correct = attempts - gap_correct
        nonzero = correct - gap_nonzero
        if nonzero < 0:
            raise SketchFormatError(
                f"inconsistent counts for address {address}"
            )
        image.instructions[address] = InstructionProfile(
            address=address,
            executions=executions,
            attempts=attempts,
            correct=correct,
            nonzero_stride_correct=nonzero,
        )

    group_count, pos = _get_uvarint(body, pos)
    for _ in range(group_count):
        category_value, pos = _get_text(body, pos)
        category = _CATEGORY_BY_VALUE.get(category_value)
        if category is None:
            raise SketchFormatError(f"unknown group category {category_value!r}")
        phase, pos = _get_svarint(body, pos)
        key = (category, phase)
        if key in image.group_detail:
            raise SketchFormatError(
                f"duplicate group {category_value!r} phase {phase}"
            )
        members: Dict[int, List[int]] = {}
        member_count, pos = _get_uvarint(body, pos)
        previous = None
        for _ in range(member_count):
            delta, pos = _get_svarint(body, pos)
            address = delta if previous is None else previous + delta
            if previous is not None and delta <= 0:
                raise SketchFormatError(
                    f"unsorted or duplicate group row at address {address}"
                )
            previous = address
            executions, pos = _get_uvarint(body, pos)
            gap_attempts, pos = _get_uvarint(body, pos)
            gap_correct, pos = _get_uvarint(body, pos)
            attempts = executions - gap_attempts
            correct = attempts - gap_correct
            if correct < 0:
                raise SketchFormatError(
                    f"inconsistent group counts for address {address}"
                )
            members[address] = [executions, attempts, correct]
        image.group_detail[key] = members

    if pos != len(body):
        raise SketchFormatError(
            f"{len(body) - pos} trailing bytes after sketch body"
        )
    telemetry = get_registry()
    if telemetry.enabled:
        telemetry.timer("fusion.decode").add(time.perf_counter() - started)
    return ProfileSketch(image=image, quantize=quantize)


def dump_sketch(sketch: ProfileSketch, stream: BinaryIO) -> None:
    """Write ``sketch`` to a binary ``stream``."""
    stream.write(dumps_sketch(sketch))


def load_sketch(stream: BinaryIO) -> ProfileSketch:
    """Read a sketch from a binary ``stream``."""
    return loads_sketch(stream.read())


def save_sketch(sketch: ProfileSketch, path: Union[str, Path]) -> None:
    """Write ``sketch`` to ``path`` atomically (temp file + rename)."""
    _publish_atomic(Path(path), dumps_sketch(sketch))


def read_sketch(path: Union[str, Path]) -> ProfileSketch:
    """Load a sketch from ``path``."""
    with open(path, "rb") as stream:
        return load_sketch(stream)


# --------------------------------------------------------------------------
# service payload transport


def encode_profile_payload(data: bytes) -> str:
    """Encode raw profile/sketch file bytes as a JSON-safe string.

    Text v1 images pass through verbatim; binary sketches are base64.
    """
    if data.startswith(b"# repro-profile-image"):
        return data.decode("utf-8")
    return base64.b64encode(data).decode("ascii")


def decode_profile_payload(payload: str) -> ProfileImage:
    """Decode a fuse-job payload entry into a profile image.

    Accepts either a v1 text profile image or a base64-encoded binary
    sketch (sniffed by magic).  Raises :class:`ProfileFormatError` when
    the payload is neither.
    """
    if payload.startswith("# repro-profile-image"):
        return loads_profile(payload)
    try:
        raw = base64.b64decode(payload.strip().encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError, ValueError) as exc:
        raise ProfileFormatError(
            f"payload is neither a v1 profile image nor a base64 sketch: {exc}"
        ) from None
    if not raw.startswith(SKETCH_MAGIC):
        raise ProfileFormatError(
            "base64 payload does not decode to a profile sketch"
        )
    return loads_sketch(raw).to_image()


# --------------------------------------------------------------------------
# size / fidelity report


def fidelity_report(
    images: Iterable[ProfileImage],
    levels: Sequence[int] = DEFAULT_FIDELITY_LEVELS,
    accuracy_threshold: float = 90.0,
) -> Dict[str, object]:
    """Measure sketch size and classification fidelity over a corpus.

    Streams over ``images`` one at a time (O(1) image-resident memory).
    For each quantization level, reports total sketch bytes, the
    compression ratio against the v1 text dump, the mean absolute
    per-counter error, and the fraction of instructions whose
    predictable/unpredictable classification at ``accuracy_threshold``
    (the paper's phase-3 admission test) is unchanged by quantization.

    The mean absolute error is provably monotone non-decreasing in the
    level — flooring to a coarser power-of-two grid never moves a count
    closer to its true value — which the test suite asserts.
    """
    level_list = list(levels)
    totals = {
        level: {"sketch_bytes": 0, "abs_error": 0, "agreements": 0}
        for level in level_list
    }
    image_count = 0
    row_count = 0
    text_bytes = 0
    for image in images:
        image_count += 1
        row_count += len(image.instructions)
        text_bytes += len(dumps_profile(image).encode("utf-8"))
        for level in level_list:
            sketch = ProfileSketch.from_image(image, quantize=level)
            bucket = totals[level]
            bucket["sketch_bytes"] += len(dumps_sketch(sketch))
            approx = sketch.to_image()
            for address, profile in image.instructions.items():
                coarse = approx.instructions[address]
                bucket["abs_error"] += (
                    (profile.executions - coarse.executions)
                    + (profile.attempts - coarse.attempts)
                    + (profile.correct - coarse.correct)
                    + (
                        profile.nonzero_stride_correct
                        - coarse.nonzero_stride_correct
                    )
                )
                if (profile.accuracy >= accuracy_threshold) == (
                    coarse.accuracy >= accuracy_threshold
                ):
                    bucket["agreements"] += 1
    report_levels = []
    for level in level_list:
        bucket = totals[level]
        sketch_bytes = bucket["sketch_bytes"]
        report_levels.append(
            {
                "quantize": level,
                "sketch_bytes": sketch_bytes,
                "bytes_per_image": (
                    sketch_bytes / image_count if image_count else 0.0
                ),
                "compression_ratio": (
                    text_bytes / sketch_bytes if sketch_bytes else 0.0
                ),
                "mean_abs_count_error": (
                    bucket["abs_error"] / (4 * row_count) if row_count else 0.0
                ),
                "classification_agreement": (
                    bucket["agreements"] / row_count if row_count else 1.0
                ),
            }
        )
    return {
        "images": image_count,
        "instructions": row_count,
        "text_bytes": text_bytes,
        "accuracy_threshold": accuracy_threshold,
        "levels": report_levels,
    }


__all__ = [
    "DEFAULT_FIDELITY_LEVELS",
    "ProfileSketch",
    "SKETCH_MAGIC",
    "SketchFormatError",
    "decode_profile_payload",
    "dump_sketch",
    "dumps_sketch",
    "encode_profile_payload",
    "fidelity_report",
    "load_sketch",
    "loads_sketch",
    "read_sketch",
    "save_sketch",
]
