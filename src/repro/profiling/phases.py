"""Phase-split profiling.

Figure 2.2 of the paper shows each floating-point benchmark twice —
initialization phase (#1) and computation phase (#2) — because the two
phases have very different value behaviour (input-dependent loads vs
regular compute).  :func:`collect_phase_profiles` produces one
:class:`~repro.profiling.collector.ProfileImage` per execution phase from
a single run, with predictor state carried *across* phase boundaries
(the hardware doesn't reset at a phase mark; only the accounting splits).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..isa import Number, Program
from ..machine import trace_program
from ..predictors import StridePredictor, ValuePredictor
from .collector import ProfileImage


def collect_phase_profiles(
    program: Program,
    inputs: Iterable[Number] = (),
    predictor: Optional[ValuePredictor] = None,
    run_label: str = "",
    max_instructions: Optional[int] = None,
    sample_every: int = 1,
) -> Dict[int, ProfileImage]:
    """Profile one run, splitting the accounting by execution phase.

    Returns phase -> image.  Programs that never execute a ``phase``
    instruction yield a single image under phase 0.

    ``sample_every=k`` keeps only every ``k``-th record of the dynamic
    stream, under the same global-position rule as
    :func:`~repro.profiling.collector.collect_profiles`.
    """
    if (
        isinstance(sample_every, bool)
        or not isinstance(sample_every, int)
        or sample_every < 1
    ):
        raise ValueError(f"sample_every must be an int >= 1, got {sample_every!r}")
    predictor = predictor or StridePredictor()
    images: Dict[int, ProfileImage] = {}
    is_candidate = [
        instruction.is_prediction_candidate for instruction in program.instructions
    ]
    categories = [instruction.category for instruction in program.instructions]

    kwargs = {}
    if max_instructions is not None:
        kwargs["max_instructions"] = max_instructions
    for position, record in enumerate(trace_program(program, inputs, **kwargs)):
        if sample_every > 1 and position % sample_every:
            continue
        address = record.address
        if not is_candidate[address]:
            continue
        phase = record.phase
        image = images.get(phase)
        if image is None:
            image = ProfileImage(program.name, run_label=f"{run_label}#{phase}")
            images[phase] = image
        result = predictor.access(address, record.value)
        profile = image.profile_for(address)
        profile.executions += 1
        group = image.group_slot(categories[address], phase, address)
        group[0] += 1
        if result.hit:
            profile.attempts += 1
            group[1] += 1
            if result.correct:
                profile.correct += 1
                group[2] += 1
                if result.nonzero_stride:
                    profile.nonzero_stride_correct += 1
    return images
