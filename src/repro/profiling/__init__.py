"""Program profiling for value prediction (paper Sections 3-4).

* :func:`collect_profile` / :func:`collect_profiles` — phase 2: trace a
  run under an emulated predictor and build a :class:`ProfileImage`.
* :mod:`~repro.profiling.image_io` — the profile-image file format
  (stream-level :func:`dump_profile`/:func:`load_profile`, path-level
  :func:`save_profile`/:func:`read_profile` with atomic publishes).
* :func:`merge_profiles` — batch-combine multiple training runs
  (accepts images or open text streams).
* :mod:`~repro.profiling.fusion` — :class:`MergeAccumulator`, the
  streaming merge that folds images/sketches one at a time in bounded
  memory (fleet-scale fusion; ``repro fuse``).
* :mod:`~repro.profiling.sketch` — :class:`ProfileSketch`, the compact
  varint+delta wire format with optional count quantization and a
  size/fidelity report.
* :mod:`~repro.profiling.metrics` — M(V)max / M(V)average / M(S)average
  similarity metrics and the interval histograms of Figures 4.1-4.3.
"""

from .collector import (
    GroupStats,
    InstructionProfile,
    ProfileImage,
    collect_profile,
    collect_profiles,
)
from .image_io import (
    ProfileFormatError,
    dump_profile,
    dumps_profile,
    load_profile,
    loads_profile,
    read_profile,
    save_profile,
)
from .merge import common_addresses, merge_profiles
from .fusion import (
    FusionSource,
    MergeAccumulator,
    fuse_images,
    read_any_profile,
)
from .sketch import (
    DEFAULT_FIDELITY_LEVELS,
    ProfileSketch,
    SketchFormatError,
    decode_profile_payload,
    dump_sketch,
    dumps_sketch,
    encode_profile_payload,
    fidelity_report,
    load_sketch,
    loads_sketch,
    read_sketch,
    save_sketch,
)
from .phases import collect_phase_profiles
from .metrics import (
    HISTOGRAM_EDGES,
    HISTOGRAM_LABELS,
    accuracy_vectors,
    average_distance_metric,
    interval_histogram,
    interval_percentages,
    max_distance_metric,
    stride_efficiency_vectors,
)

__all__ = [
    "DEFAULT_FIDELITY_LEVELS",
    "FusionSource",
    "GroupStats",
    "HISTOGRAM_EDGES",
    "HISTOGRAM_LABELS",
    "InstructionProfile",
    "MergeAccumulator",
    "ProfileFormatError",
    "ProfileImage",
    "ProfileSketch",
    "SketchFormatError",
    "accuracy_vectors",
    "average_distance_metric",
    "collect_phase_profiles",
    "collect_profile",
    "collect_profiles",
    "common_addresses",
    "decode_profile_payload",
    "dump_profile",
    "dump_sketch",
    "dumps_profile",
    "dumps_sketch",
    "encode_profile_payload",
    "fidelity_report",
    "fuse_images",
    "interval_histogram",
    "interval_percentages",
    "load_profile",
    "load_sketch",
    "loads_profile",
    "loads_sketch",
    "max_distance_metric",
    "merge_profiles",
    "read_any_profile",
    "read_profile",
    "read_sketch",
    "save_profile",
    "save_sketch",
    "stride_efficiency_vectors",
]
