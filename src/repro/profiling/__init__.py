"""Program profiling for value prediction (paper Sections 3-4).

* :func:`collect_profile` / :func:`collect_profiles` — phase 2: trace a
  run under an emulated predictor and build a :class:`ProfileImage`.
* :mod:`~repro.profiling.image_io` — the profile-image file format.
* :func:`merge_profiles` — combine multiple training runs.
* :mod:`~repro.profiling.metrics` — M(V)max / M(V)average / M(S)average
  similarity metrics and the interval histograms of Figures 4.1-4.3.
"""

from .collector import (
    GroupStats,
    InstructionProfile,
    ProfileImage,
    collect_profile,
    collect_profiles,
)
from .image_io import (
    ProfileFormatError,
    dump_profile,
    dumps_profile,
    load_profile,
    loads_profile,
    read_profile,
    save_profile,
)
from .merge import common_addresses, merge_profiles
from .phases import collect_phase_profiles
from .metrics import (
    HISTOGRAM_EDGES,
    HISTOGRAM_LABELS,
    accuracy_vectors,
    average_distance_metric,
    interval_histogram,
    interval_percentages,
    max_distance_metric,
    stride_efficiency_vectors,
)

__all__ = [
    "GroupStats",
    "HISTOGRAM_EDGES",
    "HISTOGRAM_LABELS",
    "InstructionProfile",
    "ProfileFormatError",
    "ProfileImage",
    "accuracy_vectors",
    "average_distance_metric",
    "collect_phase_profiles",
    "collect_profile",
    "collect_profiles",
    "common_addresses",
    "dump_profile",
    "dumps_profile",
    "interval_histogram",
    "interval_percentages",
    "load_profile",
    "loads_profile",
    "max_distance_metric",
    "merge_profiles",
    "read_profile",
    "save_profile",
    "stride_efficiency_vectors",
]
