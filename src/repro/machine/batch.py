"""Columnar trace batches.

A :class:`TraceBatch` holds a fixed-size chunk of the dynamic trace as
parallel columns instead of one :class:`~repro.machine.trace.TraceRecord`
object per retired instruction:

``addresses``
    an ``array('q')`` of static instruction addresses, one per record;
``values``
    a plain list of produced values (``None`` for non-writers) — kept as
    Python objects so arbitrary-precision integers and exact float
    identity survive;
``phase_runs``
    run-length encoded phases: ``(start_offset, phase)`` pairs, the
    first always at offset 0;
``mems``
    effective addresses of the loads/stores in the batch, in trace
    order.  Which records own a memory address is static per program
    (``mem_flags`` indexed by static address), so the column stores no
    per-record slot for the ~85% of records without one.

Consumers that care about throughput walk the columns directly;
:meth:`TraceBatch.records` is the compatibility adapter that rebuilds
the per-record view.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Sequence, Tuple

from .trace import TraceRecord

#: Default number of records per batch emitted by ``Executor.run_batches``.
DEFAULT_CHUNK = 16_384


class TraceBatch:
    """One columnar chunk of a dynamic trace."""

    __slots__ = ("addresses", "values", "phase_runs", "mems", "mem_flags")

    def __init__(
        self,
        addresses: array,
        values: List,
        phase_runs: List[Tuple[int, int]],
        mems: List[int],
        mem_flags: Sequence[bool],
    ) -> None:
        self.addresses = addresses
        self.values = values
        self.phase_runs = phase_runs
        self.mems = mems
        self.mem_flags = mem_flags

    def __len__(self) -> int:
        return len(self.values)

    def phase_segments(self) -> Iterator[Tuple[int, int, int]]:
        """``(start, end, phase)`` half-open segments covering the batch."""
        runs = self.phase_runs
        n = len(self.values)
        for index, (start, phase) in enumerate(runs):
            end = runs[index + 1][0] if index + 1 < len(runs) else n
            if start < end:
                yield start, end, phase

    def records(self) -> Iterator[TraceRecord]:
        """Per-record adapter: rebuild one ``TraceRecord`` per entry."""
        addresses = self.addresses
        values = self.values
        mems = self.mems
        flags = self.mem_flags
        cursor = 0
        for start, end, phase in self.phase_segments():
            for index in range(start, end):
                address = addresses[index]
                if flags[address]:
                    mem_address = mems[cursor]
                    cursor += 1
                else:
                    mem_address = None
                yield TraceRecord(address, values[index], phase, mem_address)
