"""Columnar trace batches.

A :class:`TraceBatch` holds a fixed-size chunk of the dynamic trace as
parallel columns instead of one :class:`~repro.machine.trace.TraceRecord`
object per retired instruction:

``addresses``
    an ``array('q')`` of static instruction addresses, one per record;
``values``
    a :class:`~repro.machine.columns.ValueColumn` of *produced* values —
    a packed ``array('q')`` plus an escape map for floats/bigints.
    Which records produce a value is static per program
    (``value_flags`` indexed by static address), so the column stores
    no per-record ``None`` slot for non-writers, exactly as ``mems``
    never stored per-record ``None`` memory addresses;
``phase_runs``
    run-length encoded phases: ``(start_offset, phase)`` pairs, the
    first always at offset 0;
``mems``
    effective addresses of the loads/stores in the batch, in trace
    order, against the static ``mem_flags`` bitmap.

Consumers that care about throughput walk the columns directly;
:meth:`TraceBatch.records` is the compatibility adapter that rebuilds
the per-record view, and :meth:`TraceBatch.record_values` rebuilds the
legacy one-slot-per-record value list (``None`` for non-writers).
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Sequence, Tuple

from ..isa import Number
from .columns import ValueColumn
from .trace import TraceRecord

#: Default number of records per batch emitted by ``Executor.run_batches``.
DEFAULT_CHUNK = 16_384


class TraceBatch:
    """One columnar chunk of a dynamic trace."""

    __slots__ = (
        "addresses",
        "values",
        "value_flags",
        "phase_runs",
        "mems",
        "mem_flags",
    )

    def __init__(
        self,
        addresses: array,
        values: ValueColumn,
        value_flags: Sequence[bool],
        phase_runs: List[Tuple[int, int]],
        mems: List[int],
        mem_flags: Sequence[bool],
    ) -> None:
        self.addresses = addresses
        self.values = values
        self.value_flags = value_flags
        self.phase_runs = phase_runs
        self.mems = mems
        self.mem_flags = mem_flags

    def __len__(self) -> int:
        return len(self.addresses)

    def phase_segments(self) -> Iterator[Tuple[int, int, int]]:
        """``(start, end, phase)`` half-open segments covering the batch."""
        runs = self.phase_runs
        n = len(self.addresses)
        for index, (start, phase) in enumerate(runs):
            end = runs[index + 1][0] if index + 1 < len(runs) else n
            if start < end:
                yield start, end, phase

    def record_values(self) -> List[Optional[Number]]:
        """The legacy aligned value list: one slot per record, ``None``
        for non-writers — rebuilt from the packed column and the static
        writer flags."""
        flags = self.value_flags
        produced = iter(self.values)
        advance = produced.__next__
        return [
            advance() if flags[address] else None for address in self.addresses
        ]

    def records(self) -> Iterator[TraceRecord]:
        """Per-record adapter: rebuild one ``TraceRecord`` per entry."""
        addresses = self.addresses
        values = self.values
        vflags = self.value_flags
        mems = self.mems
        flags = self.mem_flags
        cursor = 0
        vcursor = 0
        for start, end, phase in self.phase_segments():
            for index in range(start, end):
                address = addresses[index]
                if flags[address]:
                    mem_address = mems[cursor]
                    cursor += 1
                else:
                    mem_address = None
                if vflags[address]:
                    value = values[vcursor]
                    vcursor += 1
                else:
                    value = None
                yield TraceRecord(address, value, phase, mem_address)
