"""The trace-generating functional simulator (the paper's SHADE stand-in).

:class:`Executor` interprets a :class:`~repro.isa.program.Program` and
yields one :class:`~repro.machine.trace.TraceRecord` per retired
instruction.  The interpreter pre-decodes the program into operand tuples
and dispatches on opcode identity inside a single loop; this keeps
multi-hundred-thousand-instruction traces cheap enough for the full
experiment sweeps.
"""

from __future__ import annotations

import collections
import time
from typing import Iterable, Iterator, List, Optional, Tuple

from ..isa import Instruction, Number, Opcode, Program, RA
from ..telemetry import get_registry
from .errors import (
    DivisionByZero,
    ExecutionError,
    InputExhausted,
    InstructionBudgetExceeded,
    InvalidMemoryAccess,
)
from .state import MachineState
from .trace import RunResult, TraceRecord

#: Default cap on dynamic instructions per run.
DEFAULT_BUDGET = 50_000_000

_Decoded = Tuple[Opcode, int, int, int, Optional[Number], int]


def _decode(instruction: Instruction) -> _Decoded:
    """Flatten an instruction into a fixed-shape tuple for the hot loop."""
    srcs = instruction.srcs
    src1 = srcs[0] if len(srcs) > 0 else 0
    src2 = srcs[1] if len(srcs) > 1 else 0
    dest = instruction.dest if instruction.dest is not None else 0
    target = instruction.target if instruction.target is not None else 0
    return (instruction.opcode, dest, src1, src2, instruction.imm, target)


def _int_div(a: int, b: int) -> int:
    """C-style truncating division."""
    if b == 0:
        raise DivisionByZero("integer division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _int_mod(a: int, b: int) -> int:
    """C-style remainder (sign follows the dividend)."""
    return a - _int_div(a, b) * b


class Executor:
    """Runs a program and produces its dynamic trace.

    Args:
        program: the binary to execute.
        inputs: the run's input stream, consumed by ``in``/``fin``.
        max_instructions: dynamic-instruction budget; exceeding it raises
            :class:`InstructionBudgetExceeded`.  ``None`` means unbounded.
    """

    def __init__(
        self,
        program: Program,
        inputs: Iterable[Number] = (),
        max_instructions: Optional[int] = DEFAULT_BUDGET,
    ) -> None:
        self.program = program
        self.state = MachineState(program, inputs=inputs)
        self.max_instructions = max_instructions
        self.instruction_count = 0
        self._decoded: List[_Decoded] = [_decode(i) for i in program.instructions]

    def run(self) -> Iterator[TraceRecord]:
        """Execute to completion, yielding a record per retired instruction.

        Raises:
            ExecutionError: on division by zero, bad memory access, input
                exhaustion, budget overrun or control flow falling off the
                end of the code segment.
        """
        # Hot-loop local bindings.
        decoded = self._decoded
        state = self.state
        regs = state.registers
        memory = state.memory
        code_size = len(decoded)
        budget = (
            self.max_instructions
            if self.max_instructions is not None
            else float("inf")
        )
        count = self.instruction_count
        pc = state.pc
        phase = state.phase
        op_names = Opcode  # noqa: F841 - keeps the enum import obviously used

        telemetry = get_registry()
        initial_count = count
        started = time.perf_counter()
        O = Opcode
        try:
            while True:
                if pc >= code_size or pc < 0:
                    raise ExecutionError(f"control flow left the code segment (pc={pc})")
                op, dest, src1, src2, imm, target = decoded[pc]
                count += 1
                if count > budget:
                    raise InstructionBudgetExceeded(
                        f"exceeded budget of {budget} dynamic instructions"
                    )
                address = pc
                pc += 1
                value: Optional[Number] = None
                mem_address: Optional[int] = None

                if op is O.ADDI:
                    value = regs[src1] + imm
                elif op is O.ADD:
                    value = regs[src1] + regs[src2]
                elif op is O.LD or op is O.FLD:
                    mem_address = regs[src1] + imm
                    if mem_address < 0:
                        raise InvalidMemoryAccess(f"@{address}: load from {mem_address}")
                    value = memory.get(mem_address, 0)
                elif op is O.ST or op is O.FST:
                    mem_address = regs[src2] + imm
                    if mem_address < 0:
                        raise InvalidMemoryAccess(f"@{address}: store to {mem_address}")
                    memory[mem_address] = regs[src1]
                elif op is O.LI or op is O.FLI:
                    value = imm
                elif op is O.MOV or op is O.FMOV:
                    value = regs[src1]
                elif op is O.SUB:
                    value = regs[src1] - regs[src2]
                elif op is O.SUBI:
                    value = regs[src1] - imm
                elif op is O.MUL:
                    value = regs[src1] * regs[src2]
                elif op is O.MULI:
                    value = regs[src1] * imm
                elif op is O.SLT:
                    value = 1 if regs[src1] < regs[src2] else 0
                elif op is O.SLTI:
                    value = 1 if regs[src1] < imm else 0
                elif op is O.SLE:
                    value = 1 if regs[src1] <= regs[src2] else 0
                elif op is O.SLEI:
                    value = 1 if regs[src1] <= imm else 0
                elif op is O.SEQ:
                    value = 1 if regs[src1] == regs[src2] else 0
                elif op is O.SEQI:
                    value = 1 if regs[src1] == imm else 0
                elif op is O.SNE:
                    value = 1 if regs[src1] != regs[src2] else 0
                elif op is O.SNEI:
                    value = 1 if regs[src1] != imm else 0
                elif op is O.BEQZ:
                    if regs[src1] == 0:
                        pc = target
                elif op is O.BNEZ:
                    if regs[src1] != 0:
                        pc = target
                elif op is O.JMP:
                    pc = target
                elif op is O.CALL:
                    value = pc  # return address (pc already advanced)
                    regs[RA] = value
                    pc = target
                elif op is O.JR:
                    pc = regs[src1]
                elif op is O.DIV:
                    value = _int_div(regs[src1], regs[src2])
                elif op is O.DIVI:
                    value = _int_div(regs[src1], imm)
                elif op is O.MOD:
                    value = _int_mod(regs[src1], regs[src2])
                elif op is O.MODI:
                    value = _int_mod(regs[src1], imm)
                elif op is O.AND:
                    value = regs[src1] & regs[src2]
                elif op is O.ANDI:
                    value = regs[src1] & imm
                elif op is O.OR:
                    value = regs[src1] | regs[src2]
                elif op is O.ORI:
                    value = regs[src1] | imm
                elif op is O.XOR:
                    value = regs[src1] ^ regs[src2]
                elif op is O.XORI:
                    value = regs[src1] ^ imm
                elif op is O.SHL:
                    value = regs[src1] << (regs[src2] & 63)
                elif op is O.SHLI:
                    value = regs[src1] << (imm & 63)
                elif op is O.SHR:
                    value = regs[src1] >> (regs[src2] & 63)
                elif op is O.SHRI:
                    value = regs[src1] >> (imm & 63)
                elif op is O.NEG:
                    value = -regs[src1]
                elif op is O.NOT:
                    value = 1 if regs[src1] == 0 else 0
                elif op is O.FADD:
                    value = regs[src1] + regs[src2]
                elif op is O.FSUB:
                    value = regs[src1] - regs[src2]
                elif op is O.FMUL:
                    value = regs[src1] * regs[src2]
                elif op is O.FDIV:
                    divisor = regs[src2]
                    if divisor == 0:
                        raise DivisionByZero(f"@{address}: FP division by zero")
                    value = regs[src1] / divisor
                elif op is O.FNEG:
                    value = -regs[src1]
                elif op is O.FSLT:
                    value = 1 if regs[src1] < regs[src2] else 0
                elif op is O.FSLE:
                    value = 1 if regs[src1] <= regs[src2] else 0
                elif op is O.FSEQ:
                    value = 1 if regs[src1] == regs[src2] else 0
                elif op is O.FSNE:
                    value = 1 if regs[src1] != regs[src2] else 0
                elif op is O.CVTIF:
                    value = float(regs[src1])
                elif op is O.CVTFI:
                    value = int(regs[src1])
                elif op is O.IN:
                    raw = state.next_input()
                    if raw is None:
                        raise InputExhausted(f"@{address}: input stream exhausted")
                    value = int(raw)
                elif op is O.FIN:
                    raw = state.next_input()
                    if raw is None:
                        raise InputExhausted(f"@{address}: input stream exhausted")
                    value = float(raw)
                elif op is O.OUT:
                    state.outputs.append(regs[src1])
                elif op is O.PHASE:
                    phase = int(imm)
                elif op is O.NOP:
                    pass
                elif op is O.HALT:
                    state.halted = True
                    state.pc = pc
                    state.phase = phase
                    self.instruction_count = count
                    yield TraceRecord(address, None, phase, None)
                    return
                else:  # pragma: no cover - the opcode set is closed
                    raise ExecutionError(f"unimplemented opcode {op!r}")

                if value is not None and dest != 0:
                    regs[dest] = value

                yield TraceRecord(address, value, phase, mem_address)
        finally:
            # Bulk-publish however far the run got — a clean halt, a budget
            # overrun, or an abandoned trace generator alike.  One counter
            # add and one timer add per run keeps the loop itself clean.
            telemetry.counter("machine.instructions").add(count - initial_count)
            telemetry.timer("machine.run").add(time.perf_counter() - started)

    def run_to_completion(self) -> RunResult:
        """Execute without retaining the trace; return the run summary."""
        collections.deque(self.run(), maxlen=0)
        return RunResult(
            instruction_count=self.instruction_count,
            outputs=list(self.state.outputs),
            halted=self.state.halted,
        )


def run_program(
    program: Program,
    inputs: Iterable[Number] = (),
    max_instructions: Optional[int] = DEFAULT_BUDGET,
) -> RunResult:
    """Execute ``program`` and return its :class:`RunResult`."""
    return Executor(
        program, inputs=inputs, max_instructions=max_instructions
    ).run_to_completion()


def trace_program(
    program: Program,
    inputs: Iterable[Number] = (),
    max_instructions: Optional[int] = DEFAULT_BUDGET,
) -> Iterator[TraceRecord]:
    """Execute ``program``, yielding its dynamic trace."""
    return Executor(program, inputs=inputs, max_instructions=max_instructions).run()
