"""The trace-generating functional simulator (the paper's SHADE stand-in).

:class:`Executor` interprets a :class:`~repro.isa.program.Program`.  The
native emission path is :meth:`Executor.run_batches`, which retires
instructions in fixed-size chunks and fills the parallel columns of a
:class:`~repro.machine.batch.TraceBatch` — an ``array('q')`` of static
addresses, a value column, run-length-encoded phases and a dense
effective-address column.  Dispatch is a tuple index into the per-opcode
handler table (:data:`~repro.machine.handlers.HANDLERS`); the program is
pre-decoded into fixed-shape operand tuples keyed by opcode ordinal.

The classic per-record iterator, :meth:`Executor.run`, survives as a
thin adapter that re-materialises one
:class:`~repro.machine.trace.TraceRecord` per column entry.  Both views
observe the identical trace: same records, same exceptions at the same
points, same machine end-state.

Error timing across a batch boundary: when an instruction faults
mid-chunk, the partial batch of successfully retired instructions is
yielded first and the :class:`ExecutionError` is raised when the
consumer requests the *next* batch — so record-level consumers (via the
adapter) see exactly the prefix the old per-record generator produced
before the same exception.

Instruction accounting: ``machine.instructions`` counts instructions the
interpreter *executed*.  The batched path executes up to one chunk ahead
of what a record-level consumer has pulled, so a generator abandoned
mid-batch reports the executed count (a clean halt, a budget overrun or
a fully drained trace report identical numbers on both paths).
"""

from __future__ import annotations

import time
from array import array
from typing import Iterable, Iterator, List, Optional, Tuple

from ..isa import Instruction, Number, Opcode, Program
from ..telemetry import get_registry
from .batch import DEFAULT_CHUNK, TraceBatch
from .columns import ValueColumn
from .errors import ExecutionError, InstructionBudgetExceeded
from .handlers import HANDLERS, ORDINALS, BatchContext, int_div, int_mod
from .state import MachineState
from .trace import RunResult, TraceRecord

#: Default cap on dynamic instructions per run.
DEFAULT_BUDGET = 50_000_000

#: Decoded shape: (handler, dest, src1, src2, imm, target).  The handler
#: is resolved through :data:`~repro.machine.handlers.HANDLERS` at decode
#: time, so the hot loop dispatches with one tuple unpack and one call.
_Decoded = Tuple[object, int, int, int, Optional[Number], int]

# Backwards-compatible aliases for the arithmetic helpers that used to
# live here; the canonical definitions moved next to the handler table.
_int_div = int_div
_int_mod = int_mod

_MEM_OPCODES = frozenset((Opcode.LD, Opcode.ST, Opcode.FLD, Opcode.FST))

#: Opcodes whose trace records carry ``value=None`` — everything else
#: writes a produced value into its record.
_SILENT_OPCODES = frozenset(
    (
        Opcode.ST,
        Opcode.FST,
        Opcode.BEQZ,
        Opcode.BNEZ,
        Opcode.JMP,
        Opcode.JR,
        Opcode.OUT,
        Opcode.PHASE,
        Opcode.NOP,
        Opcode.HALT,
    )
)


def _decode(instruction: Instruction) -> _Decoded:
    """Flatten an instruction into a fixed-shape tuple for the hot loop."""
    srcs = instruction.srcs
    src1 = srcs[0] if len(srcs) > 0 else 0
    src2 = srcs[1] if len(srcs) > 1 else 0
    dest = instruction.dest if instruction.dest is not None else 0
    target = instruction.target if instruction.target is not None else 0
    handler = HANDLERS[ORDINALS[instruction.opcode]]
    return (handler, dest, src1, src2, instruction.imm, target)


def mem_flags(program: Program) -> bytes:
    """Static per-address flag: does the instruction touch memory?

    Loads and stores are the only producers of effective addresses, and
    which static instructions they are is a property of the program, not
    the run — so batches carry a dense ``mems`` column and this bitmap
    instead of a per-record ``mem_address`` slot.
    """
    return bytes(
        1 if instruction.opcode in _MEM_OPCODES else 0
        for instruction in program.instructions
    )


def value_flags(program: Program) -> bytes:
    """Static per-address flag: does the instruction produce a value?

    Like :func:`mem_flags`, value-None-ness is an opcode property, so the
    packed trace format stores only produced values and reconstitutes the
    ``None`` slots from this bitmap.
    """
    return bytes(
        0 if instruction.opcode in _SILENT_OPCODES else 1
        for instruction in program.instructions
    )


class Executor:
    """Runs a program and produces its dynamic trace.

    Args:
        program: the binary to execute.
        inputs: the run's input stream, consumed by ``in``/``fin``.
        max_instructions: dynamic-instruction budget; exceeding it raises
            :class:`InstructionBudgetExceeded`.  ``None`` means unbounded.
    """

    def __init__(
        self,
        program: Program,
        inputs: Iterable[Number] = (),
        max_instructions: Optional[int] = DEFAULT_BUDGET,
    ) -> None:
        self.program = program
        self.state = MachineState(program, inputs=inputs)
        self.max_instructions = max_instructions
        self.instruction_count = 0
        self._decoded: List[_Decoded] = [_decode(i) for i in program.instructions]
        self.mem_flags = mem_flags(program)
        self.value_flags = value_flags(program)

    def run_batches(self, chunk_size: int = DEFAULT_CHUNK) -> Iterator[TraceBatch]:
        """Execute to completion, yielding columnar chunks of the trace.

        Raises:
            ExecutionError: on division by zero, bad memory access, input
                exhaustion, budget overrun or control flow falling off the
                end of the code segment.  A fault mid-chunk first yields
                the partial batch of retired instructions, then raises on
                the next request.
        """
        # Hot-loop local bindings.
        decoded = self._decoded
        state = self.state
        code_size = len(decoded)
        budget = (
            self.max_instructions
            if self.max_instructions is not None
            else float("inf")
        )
        count = self.instruction_count
        flags = self.mem_flags
        vflags = self.value_flags

        ctx = BatchContext()
        ctx.pc = state.pc
        ctx.phase = state.phase
        ctx.regs = state.registers
        ctx.memory = state.memory
        ctx.state = state

        telemetry = get_registry()
        initial_count = count
        produced_total = 0
        escaped_total = 0
        started = time.perf_counter()
        try:
            halted = False
            while not halted:
                addresses: List[int] = []
                values: List[Optional[Number]] = []
                mems: List[int] = []
                phase_runs: List[Tuple[int, int]] = [(0, ctx.phase)]
                ctx.addresses = addresses
                ctx.values = values
                ctx.mems = mems
                ctx.phase_runs = phase_runs
                error: Optional[ExecutionError] = None
                # ``count`` advances by exactly one per loop iteration, so
                # the chunk boundary folds into a single compare against a
                # precomputed stop mark instead of a len() call per record.
                stop = count + chunk_size
                try:
                    while count < stop:
                        pc = ctx.pc
                        if pc >= code_size or pc < 0:
                            raise ExecutionError(
                                f"control flow left the code segment (pc={pc})"
                            )
                        count += 1
                        if count > budget:
                            raise InstructionBudgetExceeded(
                                f"exceeded budget of {budget} dynamic instructions"
                            )
                        handler, dest, src1, src2, imm, target = decoded[pc]
                        ctx.pc = pc + 1
                        if handler(ctx, pc, dest, src1, src2, imm, target):
                            halted = True
                            self.instruction_count = count
                            break
                except ExecutionError as exc:
                    error = exc
                if addresses:
                    column = ValueColumn.from_values(values)
                    produced_total += len(column.ints)
                    escaped_total += len(column.escapes)
                    yield TraceBatch(
                        array("q", addresses),
                        column,
                        vflags,
                        phase_runs,
                        mems,
                        flags,
                    )
                if error is not None:
                    raise error
        finally:
            # Bulk-publish however far the run got — a clean halt, a budget
            # overrun, or an abandoned trace generator alike.  One counter
            # add and one timer add per run keeps the loop itself clean.
            telemetry.counter("machine.instructions").add(count - initial_count)
            telemetry.counter("machine.columns.values").add(produced_total)
            telemetry.counter("machine.columns.escapes").add(escaped_total)
            telemetry.timer("machine.run").add(time.perf_counter() - started)

    def run(self) -> Iterator[TraceRecord]:
        """Execute to completion, yielding a record per retired instruction.

        This is the compatibility adapter over :meth:`run_batches`; see
        the module docstring for the (identical) error semantics.

        Raises:
            ExecutionError: on division by zero, bad memory access, input
                exhaustion, budget overrun or control flow falling off the
                end of the code segment.
        """
        for batch in self.run_batches():
            yield from batch.records()

    def run_to_completion(self) -> RunResult:
        """Execute without retaining the trace; return the run summary."""
        for _batch in self.run_batches():
            pass
        return RunResult(
            instruction_count=self.instruction_count,
            outputs=list(self.state.outputs),
            halted=self.state.halted,
        )


def run_program(
    program: Program,
    inputs: Iterable[Number] = (),
    max_instructions: Optional[int] = DEFAULT_BUDGET,
) -> RunResult:
    """Execute ``program`` and return its :class:`RunResult`."""
    return Executor(
        program, inputs=inputs, max_instructions=max_instructions
    ).run_to_completion()


def trace_program(
    program: Program,
    inputs: Iterable[Number] = (),
    max_instructions: Optional[int] = DEFAULT_BUDGET,
) -> Iterator[TraceRecord]:
    """Execute ``program``, yielding its dynamic trace."""
    return Executor(program, inputs=inputs, max_instructions=max_instructions).run()


def trace_batches(
    program: Program,
    inputs: Iterable[Number] = (),
    max_instructions: Optional[int] = DEFAULT_BUDGET,
    chunk_size: int = DEFAULT_CHUNK,
) -> Iterator[TraceBatch]:
    """Execute ``program``, yielding its dynamic trace in columnar batches."""
    return Executor(
        program, inputs=inputs, max_instructions=max_instructions
    ).run_batches(chunk_size=chunk_size)
