"""Dynamic run statistics: instruction mix, branch and memory behaviour.

Characterization support (the reproduction's analogue of the paper's
Table 4.1 workload descriptions): one pass over a trace produces the
dynamic instruction mix, taken-branch ratio, candidate density and
working-set sizes that the experiment harness reports per workload.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Set

from ..isa import Category, Number, Opcode, Program
from .executor import trace_program
from .trace import TraceRecord


@dataclasses.dataclass
class RunStatistics:
    """Aggregated dynamic statistics of one execution."""

    instructions: int = 0
    by_category: Dict[Category, int] = dataclasses.field(default_factory=dict)
    candidate_instructions: int = 0
    branches: int = 0
    taken_branches: int = 0
    static_addresses: Set[int] = dataclasses.field(default_factory=set)
    static_candidates: Set[int] = dataclasses.field(default_factory=set)
    memory_addresses: Set[int] = dataclasses.field(default_factory=set)

    def category_fraction(self, category: Category) -> float:
        """Dynamic share of ``category`` in percent."""
        if self.instructions == 0:
            return 0.0
        return 100.0 * self.by_category.get(category, 0) / self.instructions

    @property
    def candidate_fraction(self) -> float:
        """Dynamic share of value-prediction candidates in percent."""
        if self.instructions == 0:
            return 0.0
        return 100.0 * self.candidate_instructions / self.instructions

    @property
    def taken_branch_fraction(self) -> float:
        if self.branches == 0:
            return 0.0
        return 100.0 * self.taken_branches / self.branches

    @property
    def static_footprint(self) -> int:
        """Distinct static instructions executed."""
        return len(self.static_addresses)

    @property
    def candidate_footprint(self) -> int:
        """Distinct candidate instructions executed — the prediction-table
        working set the paper's pressure argument is about."""
        return len(self.static_candidates)

    @property
    def data_footprint(self) -> int:
        """Distinct data words touched."""
        return len(self.memory_addresses)


def collect_statistics(
    program: Program,
    inputs: Iterable[Number] = (),
    max_instructions: Optional[int] = None,
) -> RunStatistics:
    """Execute ``program`` once and aggregate its dynamic statistics."""
    stats = RunStatistics()
    categories = [instruction.category for instruction in program.instructions]
    candidates = [
        instruction.is_prediction_candidate for instruction in program.instructions
    ]
    branch_targets = [
        instruction.target if instruction.opcode in (Opcode.BEQZ, Opcode.BNEZ) else None
        for instruction in program.instructions
    ]
    kwargs = {}
    if max_instructions is not None:
        kwargs["max_instructions"] = max_instructions

    previous_branch: Optional[TraceRecord] = None
    previous_target: Optional[int] = None
    for record in trace_program(program, inputs, **kwargs):
        address = record.address
        stats.instructions += 1
        category = categories[address]
        stats.by_category[category] = stats.by_category.get(category, 0) + 1
        stats.static_addresses.add(address)
        if candidates[address]:
            stats.candidate_instructions += 1
            stats.static_candidates.add(address)
        if record.mem_address is not None:
            stats.memory_addresses.add(record.mem_address)
        # A branch is taken iff the next retired address is its target.
        if previous_branch is not None:
            stats.branches += 1
            if address == previous_target:
                stats.taken_branches += 1
            previous_branch = None
        if branch_targets[address] is not None:
            previous_branch = record
            previous_target = branch_targets[address]
    return stats
