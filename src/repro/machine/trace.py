"""Dynamic-trace records emitted by the functional simulator.

A trace is the reproduction's equivalent of a SHADE instruction trace: one
record per retired instruction, in program order.  Records carry only the
*dynamic* facts (value produced, effective address, phase); static facts
(opcode, category, sources, directive) are looked up in the
:class:`~repro.isa.program.Program` by the record's address.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Optional

from ..isa import Number, Program


@dataclasses.dataclass(slots=True)
class TraceRecord:
    """One retired dynamic instruction.

    Attributes:
        address: static instruction address.
        value: destination value produced, or ``None`` if the instruction
            writes no register.
        phase: execution phase at retirement (0 until the program executes
            a ``phase`` instruction; the FP workloads use 1=initialization,
            2=computation, following the paper's split).
        mem_address: effective data address for loads/stores, else ``None``.
    """

    address: int
    value: Optional[Number]
    phase: int
    mem_address: Optional[int]


@dataclasses.dataclass(slots=True)
class RunResult:
    """Summary of one complete program execution."""

    instruction_count: int
    outputs: List[Number]
    halted: bool


def candidate_records(
    program: Program, trace: Iterable[TraceRecord]
) -> Iterator[TraceRecord]:
    """Filter ``trace`` down to value-prediction candidate instructions.

    These are the records the predictors and the profiler consume: dynamic
    instances of instructions that write a computed value to a destination
    register.
    """
    is_candidate = [
        instruction.is_prediction_candidate for instruction in program.instructions
    ]
    for record in trace:
        if is_candidate[record.address]:
            yield record


def trace_to_list(trace: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Materialize a trace generator (test convenience)."""
    return list(trace)
