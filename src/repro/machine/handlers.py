"""Opcode handler table for the functional simulator.

The interpreter's old ~45-way ``if/elif`` chain is replaced by
:data:`HANDLERS`, a tuple of per-opcode functions indexed by the
opcode's *ordinal* (its position in the :class:`~repro.isa.opcodes.Opcode`
definition order).  Pre-decoding stores the ordinal, so dispatch in the
record-at-a-time path is a single tuple index instead of a linear scan.

Each handler executes exactly one decoded instruction against a
:class:`BatchContext`, appends that instruction's trace columns, and
returns ``True`` only for ``halt``.  Control-flow handlers overwrite
``ctx.pc`` (the caller has already advanced it to the fall-through).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa import Number, Opcode, RA
from .errors import DivisionByZero, InputExhausted, InvalidMemoryAccess

#: Opcode → position in definition order; decoded tuples store this index.
ORDINALS: Dict[Opcode, int] = {opcode: index for index, opcode in enumerate(Opcode)}


class BatchContext:
    """Mutable run state shared by the slow stepper and the fast path."""

    __slots__ = (
        "pc",
        "phase",
        "count",
        "pause",
        "regs",
        "memory",
        "state",
        "addresses",
        "values",
        "mems",
        "phase_runs",
    )


def int_div(a: Number, b: Number) -> int:
    """C-style truncating division."""
    if b == 0:
        raise DivisionByZero("integer division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def int_mod(a: Number, b: Number) -> int:
    """C-style remainder (sign follows the dividend)."""
    return a - int_div(a, b) * b


# The ALU handlers are compiled from expression templates so the
# operation is inlined into the handler body — a closure over a lambda
# would cost a second Python call per retired instruction, which at
# trace scale is the difference between ~1.9 and ~2.5 simulated MIPS.
_ALU_TEMPLATE = """\
def handler(ctx, pc, dest, src1, src2, imm, target):
    regs = ctx.regs
    {bind}
    value = {expr}
    if dest:
        regs[dest] = value
    ctx.addresses.append(pc)
    ctx.values.append(value)
"""


def _compile_alu(bind: str, expr: str):
    namespace = {"int_div": int_div, "int_mod": int_mod}
    exec(_ALU_TEMPLATE.format(bind=bind, expr=expr), namespace)
    return namespace["handler"]


def _binary(expr: str):
    """Handler for ``dest = a <op> b`` with both operands in registers."""
    return _compile_alu("a = regs[src1]; b = regs[src2]", expr)


def _immediate(expr: str):
    """Handler for ``dest = a <op> b`` with an immediate second operand."""
    return _compile_alu("a = regs[src1]; b = imm", expr)


def _unary(expr: str):
    """Handler for single-source operations ``dest = f(a)``."""
    return _compile_alu("a = regs[src1]", expr)


def _op_li(ctx, pc, dest, src1, src2, imm, target):
    if dest:
        ctx.regs[dest] = imm
    ctx.addresses.append(pc)
    ctx.values.append(imm)


def _op_fdiv(ctx, pc, dest, src1, src2, imm, target):
    regs = ctx.regs
    divisor = regs[src2]
    if divisor == 0:
        raise DivisionByZero(f"@{pc}: FP division by zero")
    value = regs[src1] / divisor
    if dest:
        regs[dest] = value
    ctx.addresses.append(pc)
    ctx.values.append(value)


def _op_load(ctx, pc, dest, src1, src2, imm, target):
    mem_address = ctx.regs[src1] + imm
    if mem_address < 0:
        raise InvalidMemoryAccess(f"@{pc}: load from {mem_address}")
    value = ctx.memory.get(mem_address, 0)
    if dest:
        ctx.regs[dest] = value
    ctx.mems.append(mem_address)
    ctx.addresses.append(pc)
    ctx.values.append(value)


def _op_store(ctx, pc, dest, src1, src2, imm, target):
    regs = ctx.regs
    mem_address = regs[src2] + imm
    if mem_address < 0:
        raise InvalidMemoryAccess(f"@{pc}: store to {mem_address}")
    ctx.memory[mem_address] = regs[src1]
    ctx.mems.append(mem_address)
    ctx.addresses.append(pc)


def _op_beqz(ctx, pc, dest, src1, src2, imm, target):
    if ctx.regs[src1] == 0:
        ctx.pc = target
    ctx.addresses.append(pc)


def _op_bnez(ctx, pc, dest, src1, src2, imm, target):
    if ctx.regs[src1] != 0:
        ctx.pc = target
    ctx.addresses.append(pc)


def _op_jmp(ctx, pc, dest, src1, src2, imm, target):
    ctx.pc = target
    ctx.addresses.append(pc)


def _op_call(ctx, pc, dest, src1, src2, imm, target):
    value = pc + 1  # return address (fall-through)
    regs = ctx.regs
    regs[RA] = value
    if dest:
        regs[dest] = value
    ctx.pc = target
    ctx.addresses.append(pc)
    ctx.values.append(value)


def _op_jr(ctx, pc, dest, src1, src2, imm, target):
    ctx.pc = ctx.regs[src1]
    ctx.addresses.append(pc)


def _op_in(ctx, pc, dest, src1, src2, imm, target):
    raw = ctx.state.next_input()
    if raw is None:
        raise InputExhausted(f"@{pc}: input stream exhausted")
    value = int(raw)
    if dest:
        ctx.regs[dest] = value
    ctx.addresses.append(pc)
    ctx.values.append(value)


def _op_fin(ctx, pc, dest, src1, src2, imm, target):
    raw = ctx.state.next_input()
    if raw is None:
        raise InputExhausted(f"@{pc}: input stream exhausted")
    value = float(raw)
    if dest:
        ctx.regs[dest] = value
    ctx.addresses.append(pc)
    ctx.values.append(value)


def _op_out(ctx, pc, dest, src1, src2, imm, target):
    ctx.state.outputs.append(ctx.regs[src1])
    ctx.addresses.append(pc)


def _op_phase(ctx, pc, dest, src1, src2, imm, target):
    phase = int(imm)
    ctx.phase = phase
    # Phase-run offsets are *record* indices; addresses is the only
    # per-record column, and this record's address is appended below.
    ctx.phase_runs.append((len(ctx.addresses), phase))
    ctx.addresses.append(pc)


def _op_nop(ctx, pc, dest, src1, src2, imm, target):
    ctx.addresses.append(pc)


def _op_halt(ctx, pc, dest, src1, src2, imm, target):
    state = ctx.state
    state.halted = True
    state.pc = pc + 1
    state.phase = ctx.phase
    ctx.addresses.append(pc)
    return True


def _build_table():
    O = Opcode
    by_opcode = {
        O.ADD: _binary("a + b"),
        O.SUB: _binary("a - b"),
        O.MUL: _binary("a * b"),
        O.DIV: _binary("int_div(a, b)"),
        O.MOD: _binary("int_mod(a, b)"),
        O.AND: _binary("a & b"),
        O.OR: _binary("a | b"),
        O.XOR: _binary("a ^ b"),
        O.SHL: _binary("a << (b & 63)"),
        O.SHR: _binary("a >> (b & 63)"),
        O.SLT: _binary("1 if a < b else 0"),
        O.SLE: _binary("1 if a <= b else 0"),
        O.SEQ: _binary("1 if a == b else 0"),
        O.SNE: _binary("1 if a != b else 0"),
        O.ADDI: _immediate("a + b"),
        O.SUBI: _immediate("a - b"),
        O.MULI: _immediate("a * b"),
        O.DIVI: _immediate("int_div(a, b)"),
        O.MODI: _immediate("int_mod(a, b)"),
        O.ANDI: _immediate("a & b"),
        O.ORI: _immediate("a | b"),
        O.XORI: _immediate("a ^ b"),
        O.SHLI: _immediate("a << (b & 63)"),
        O.SHRI: _immediate("a >> (b & 63)"),
        O.SLTI: _immediate("1 if a < b else 0"),
        O.SLEI: _immediate("1 if a <= b else 0"),
        O.SEQI: _immediate("1 if a == b else 0"),
        O.SNEI: _immediate("1 if a != b else 0"),
        O.LI: _op_li,
        O.MOV: _unary("a"),
        O.NEG: _unary("-a"),
        O.NOT: _unary("1 if a == 0 else 0"),
        O.FADD: _binary("a + b"),
        O.FSUB: _binary("a - b"),
        O.FMUL: _binary("a * b"),
        O.FDIV: _op_fdiv,
        O.FNEG: _unary("-a"),
        O.FLI: _op_li,
        O.FMOV: _unary("a"),
        O.FSLT: _binary("1 if a < b else 0"),
        O.FSLE: _binary("1 if a <= b else 0"),
        O.FSEQ: _binary("1 if a == b else 0"),
        O.FSNE: _binary("1 if a != b else 0"),
        O.CVTIF: _unary("float(a)"),
        O.CVTFI: _unary("int(a)"),
        O.LD: _op_load,
        O.ST: _op_store,
        O.FLD: _op_load,
        O.FST: _op_store,
        O.BEQZ: _op_beqz,
        O.BNEZ: _op_bnez,
        O.JMP: _op_jmp,
        O.CALL: _op_call,
        O.JR: _op_jr,
        O.IN: _op_in,
        O.FIN: _op_fin,
        O.OUT: _op_out,
        O.PHASE: _op_phase,
        O.NOP: _op_nop,
        O.HALT: _op_halt,
    }
    table = [None] * len(ORDINALS)
    for opcode, handler in by_opcode.items():
        table[ORDINALS[opcode]] = handler
    missing = [opcode for opcode in Opcode if table[ORDINALS[opcode]] is None]
    if missing:  # pragma: no cover - the opcode set is closed
        raise AssertionError(f"opcodes without handlers: {missing}")
    return tuple(table)


#: Per-opcode handlers, indexed by opcode ordinal.
HANDLERS = _build_table()
