"""Exceptions raised by the functional simulator."""

from __future__ import annotations


class ExecutionError(RuntimeError):
    """Base class for runtime failures inside the simulator."""


class DivisionByZero(ExecutionError):
    """An integer or FP division/modulo had a zero divisor."""


class InputExhausted(ExecutionError):
    """An ``in``/``fin`` instruction ran with an empty input stream."""


class InstructionBudgetExceeded(ExecutionError):
    """The program executed more instructions than the configured budget.

    Guards against runaway programs (a workload bug, or a directive pass
    gone wrong); the simulator is not allowed to loop forever.
    """


class InvalidMemoryAccess(ExecutionError):
    """A load or store used a negative effective address."""
