"""Content-addressed trace store: capture a trace once, replay it many times.

The paper's methodology (and SHADE, its tracing tool) separates trace
*generation* from trace *consumption*: a (program, inputs) pair is
interpreted once and every analysis pass replays the recorded trace.
:class:`TraceStore` gives the reproduction the same split at batch
granularity:

- the key is ``(program digest, inputs digest, instruction budget)``.
  The program digest covers only execution-relevant state — opcodes,
  operands and the initial data image — and deliberately *excludes*
  classification directives, which are metadata the machine never reads;
  an annotated binary therefore replays its base program's trace.
- a miss executes the program through
  :meth:`~repro.machine.executor.Executor.run_batches`, streams the live
  batches to the consumer, and packs them in flight; the packed trace is
  committed to an in-memory LRU and (optionally) to disk only when the
  run finishes — a consumer that abandons the trace mid-stream commits
  nothing.
- a hit replays the packed batches without touching the interpreter.
  A stored trace that ended in an :class:`ExecutionError` (a budget
  overrun, say) re-raises the same error type and message after its last
  batch, so replay is observationally identical to fresh execution.

The packed format is the columnar sibling of the textual
``# repro-trace v1`` format in :mod:`repro.machine.tracefile`: addresses
and effective addresses are stored as raw ``array('q')`` bytes, produced
values as an ``array('q')``/``array('d')`` when the batch is uniformly
int64/float (the overwhelmingly common case), and as a tagged
int64/float/bigint section otherwise, so arbitrary-precision integers
and exact float identity survive the round trip.  Batches carry no
per-record ``None`` value slots or memory addresses at all — both are
static program properties (see
:func:`~repro.machine.executor.value_flags` and
:func:`~repro.machine.executor.mem_flags`), and the all-int64 kind
replays by wrapping the stored ``array('q')`` into a
:class:`~repro.machine.columns.ValueColumn` without creating a single
per-record Python object.

Telemetry: capture publishes the ``machine.trace.capture`` timer and
``machine.trace.captures``/``machine.trace.captured_records`` counters;
replay the ``machine.trace.replay`` timer and matching ``replays``/
``replayed_records`` counters.  Like ``machine.run``, the timers span
the generator's lifetime and therefore include consumer time between
batches.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import threading
import time
from array import array
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..isa import Number, Program
from ..telemetry import get_registry
from .batch import DEFAULT_CHUNK, TraceBatch
from .columns import ValueColumn
from .errors import (
    DivisionByZero,
    ExecutionError,
    InputExhausted,
    InstructionBudgetExceeded,
    InvalidMemoryAccess,
)
from .executor import DEFAULT_BUDGET, Executor, mem_flags, value_flags

_MAGIC = b"# repro-trace-pack v1\n"

_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        ExecutionError,
        DivisionByZero,
        InputExhausted,
        InstructionBudgetExceeded,
        InvalidMemoryAccess,
    )
}

#: One packed batch: (addresses, packed values, phase_runs, mems).
_PackedBatch = Tuple[array, tuple, List[Tuple[int, int]], array]


def program_digest(program: Program) -> str:
    """SHA-256 over the program's execution-relevant state.

    Covers opcodes, operands, immediates, branch targets and the initial
    data image; excludes directives (metadata the machine never reads),
    labels, symbols and the program name.  Memoized on the program
    object — ``Program`` is frozen but not slotted, so the digest rides
    along with the instance.
    """
    cached = getattr(program, "_trace_digest", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    for instruction in program.instructions:
        hasher.update(
            (
                f"{instruction.opcode.value}|{instruction.dest}|"
                f"{instruction.srcs}|{instruction.imm!r}|{instruction.target}\n"
            ).encode()
        )
    hasher.update(b"--data--\n")
    for address in sorted(program.data):
        hasher.update(f"{address}:{program.data[address]!r}\n".encode())
    digest = hasher.hexdigest()
    try:
        object.__setattr__(program, "_trace_digest", digest)
    except AttributeError:  # pragma: no cover - Program is not slotted
        pass
    return digest


def inputs_digest(inputs: Sequence[Number]) -> str:
    """SHA-256 over an input stream; ``repr`` keeps floats/ints exact."""
    hasher = hashlib.sha256()
    for value in inputs:
        hasher.update(repr(value).encode())
        hasher.update(b"\x1e")
    return hasher.hexdigest()


def trace_key(
    program: Program,
    inputs: Sequence[Number],
    max_instructions: Optional[int],
) -> str:
    """The store key for one (program, inputs, budget) execution."""
    budget = "none" if max_instructions is None else str(max_instructions)
    hasher = hashlib.sha256()
    hasher.update(program_digest(program).encode())
    hasher.update(b"\x1e")
    hasher.update(inputs_digest(inputs).encode())
    hasher.update(b"\x1e")
    hasher.update(budget.encode())
    return hasher.hexdigest()


def _pack_values(column: ValueColumn) -> tuple:
    """Pack a batch's produced-value column into a typed tuple."""
    if not len(column):
        return ("0", 0)
    if column.is_pure_int:
        # The capture-time column *is* the packed representation.
        return ("q", column.ints)
    produced = column.tolist()
    if all(type(value) is float for value in produced):
        return ("d", array("d", produced))
    tags = bytearray()
    ints = array("q")
    floats = array("d")
    bigints: List[int] = []
    for value in produced:
        if type(value) is float:
            tags.append(1)
            floats.append(value)
        else:
            try:
                ints.append(value)
                tags.append(0)
            except OverflowError:
                tags.append(2)
                bigints.append(value)
    return ("x", bytes(tags), ints, floats, bigints)


def _unpack_values(packed: tuple) -> ValueColumn:
    """Rebuild the produced-value column from its packed form.

    The hot all-int64 kind wraps the stored ``array('q')`` directly —
    replay touches no per-record Python objects; only float/bigint
    batches pay an escape-map rebuild.
    """
    kind = packed[0]
    if kind == "0":
        return ValueColumn(array("q"), {})
    if kind == "q":
        return ValueColumn(packed[1], {})
    if kind == "d":
        floats = packed[1]
        return ValueColumn(
            array("q", bytes(8 * len(floats))),
            dict(enumerate(floats)),
        )
    _, tags, ints, floats, bigints = packed
    column = array("q", bytes(8 * len(tags)))
    escapes: "dict[int, Number]" = {}
    int_iter = iter(ints)
    float_iter = iter(floats)
    big_iter = iter(bigints)
    for position, tag in enumerate(tags):
        if tag == 0:
            column[position] = next(int_iter)
        elif tag == 1:
            escapes[position] = next(float_iter)
        else:
            escapes[position] = next(big_iter)
    return ValueColumn(column, escapes)


class PackedTrace:
    """One fully captured trace in packed columnar form."""

    __slots__ = (
        "batches",
        "records",
        "instruction_count",
        "outputs",
        "halted",
        "error",
    )

    def __init__(
        self,
        batches: List[_PackedBatch],
        records: int,
        instruction_count: int,
        outputs: List[Number],
        halted: bool,
        error: Optional[Tuple[str, str]],
    ) -> None:
        self.batches = batches
        self.records = records
        self.instruction_count = instruction_count
        self.outputs = outputs
        self.halted = halted
        self.error = error

    def raise_stored_error(self) -> None:
        """Re-raise the capture's terminal error, if it had one."""
        if self.error is not None:
            kind, message = self.error
            raise _ERROR_TYPES.get(kind, ExecutionError)(message)

    def replay(self, program: Program) -> Iterator[TraceBatch]:
        """Decode the packed batches back into :class:`TraceBatch` chunks.

        ``program`` must be (execution-equivalent to) the captured
        program: its static flag bitmaps drive the reconstruction of the
        ``None`` value slots and per-record memory addresses.
        """
        vflags = value_flags(program)
        mflags = mem_flags(program)
        for addresses, packed_values, phase_runs, mems in self.batches:
            values = _unpack_values(packed_values)
            yield TraceBatch(
                addresses, values, vflags, list(phase_runs), mems, mflags
            )
        self.raise_stored_error()

    def to_bytes(self) -> bytes:
        """Serialize to the on-disk packed format."""
        meta_batches = []
        payload: List[bytes] = []
        for addresses, packed_values, phase_runs, mems in self.batches:
            kind = packed_values[0]
            descriptor = {
                "n": len(addresses),
                "phases": [list(run) for run in phase_runs],
                "vk": kind,
                "nm": len(mems),
            }
            payload.append(addresses.tobytes())
            if kind == "q" or kind == "d":
                descriptor["pv"] = len(packed_values[1])
                payload.append(packed_values[1].tobytes())
            elif kind == "x":
                _, tags, ints, floats, bigints = packed_values
                blob = ",".join(map(repr, bigints)).encode()
                descriptor["pv"] = len(tags)
                descriptor["ni"] = len(ints)
                descriptor["nf"] = len(floats)
                descriptor["bb"] = len(blob)
                payload.append(tags)
                payload.append(ints.tobytes())
                payload.append(floats.tobytes())
                payload.append(blob)
            payload.append(mems.tobytes())
            meta_batches.append(descriptor)
        meta = {
            "byteorder": sys.byteorder,
            "records": self.records,
            "instruction_count": self.instruction_count,
            "outputs": self.outputs,
            "halted": self.halted,
            "error": list(self.error) if self.error else None,
            "batches": meta_batches,
        }
        return b"".join(
            [_MAGIC, json.dumps(meta, separators=(",", ":")).encode(), b"\n"]
            + payload
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PackedTrace":
        """Deserialize; raises ``ValueError`` on a malformed payload."""
        if not blob.startswith(_MAGIC):
            raise ValueError("not a packed trace")
        header_end = blob.index(b"\n", len(_MAGIC))
        meta = json.loads(blob[len(_MAGIC) : header_end])
        if meta.get("byteorder") != sys.byteorder:
            raise ValueError("packed trace has foreign byte order")
        offset = header_end + 1

        def take(size: int) -> bytes:
            nonlocal offset
            chunk = blob[offset : offset + size]
            if len(chunk) != size:
                raise ValueError("truncated packed trace")
            offset += size
            return chunk

        batches: List[_PackedBatch] = []
        for descriptor in meta["batches"]:
            n = descriptor["n"]
            addresses = array("q")
            addresses.frombytes(take(n * 8))
            kind = descriptor["vk"]
            if kind == "q" or kind == "d":
                produced = array(kind)
                produced.frombytes(take(descriptor["pv"] * 8))
                packed_values: tuple = (kind, produced)
            elif kind == "x":
                tags = take(descriptor["pv"])
                ints = array("q")
                ints.frombytes(take(descriptor["ni"] * 8))
                floats = array("d")
                floats.frombytes(take(descriptor["nf"] * 8))
                blob_bytes = take(descriptor["bb"])
                bigints = (
                    [int(part) for part in blob_bytes.decode().split(",")]
                    if blob_bytes
                    else []
                )
                packed_values = ("x", tags, ints, floats, bigints)
            else:
                packed_values = ("0", 0)
            mems = array("q")
            mems.frombytes(take(descriptor["nm"] * 8))
            phase_runs = [tuple(run) for run in descriptor["phases"]]
            batches.append((addresses, packed_values, phase_runs, mems))
        error = tuple(meta["error"]) if meta["error"] else None
        return cls(
            batches=batches,
            records=meta["records"],
            instruction_count=meta["instruction_count"],
            outputs=meta["outputs"],
            halted=meta["halted"],
            error=error,
        )


class TraceStore:
    """LRU of packed traces, optionally backed by an on-disk directory.

    Safe for concurrent writers: the in-memory LRU is guarded by a lock
    (the service daemon shares one store across worker threads), and
    disk publishes are content-keyed write-to-temp + atomic rename —
    two processes capturing the same (program, inputs, budget) race to
    an identical file, and a publish that finds its key already
    committed is an idempotent no-op.  A reader never observes a torn
    entry: either the rename happened (complete bytes) or it didn't
    (miss), and an entry corrupted by other means fails decoding and is
    dropped as a miss.

    Args:
        directory: where packed traces persist (shared by parallel
            workers); ``None`` keeps the store memory-only.
        max_entries: in-memory LRU capacity, in traces.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        max_entries: int = 64,
    ) -> None:
        self.directory = Path(directory).expanduser() if directory else None
        self.max_entries = max_entries
        self._cache: "OrderedDict[str, PackedTrace]" = OrderedDict()
        self._lock = threading.Lock()

    # -- lookup ------------------------------------------------------

    def fetch(
        self,
        program: Program,
        inputs: Sequence[Number] = (),
        max_instructions: Optional[int] = DEFAULT_BUDGET,
    ) -> Optional[PackedTrace]:
        """The stored trace for this execution, or ``None`` on a miss."""
        return self._lookup(trace_key(program, list(inputs), max_instructions))

    def batches(
        self,
        program: Program,
        inputs: Iterable[Number] = (),
        max_instructions: Optional[int] = DEFAULT_BUDGET,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> Iterator[TraceBatch]:
        """The trace of one execution, replayed if stored, captured if not.

        Raises exactly what fresh execution raises, at the same point in
        the record stream — including on replay of a stored errored
        trace.
        """
        inputs = list(inputs)
        key = trace_key(program, inputs, max_instructions)
        packed = self._lookup(key)
        if packed is not None:
            return self._replay_batches(packed, program)
        return self._capture_batches(key, program, inputs, max_instructions, chunk_size)

    # -- internals ---------------------------------------------------

    def _replay_batches(
        self, packed: PackedTrace, program: Program
    ) -> Iterator[TraceBatch]:
        telemetry = get_registry()
        started = time.perf_counter()
        try:
            yield from packed.replay(program)
        finally:
            telemetry.counter("machine.trace.replays").add(1)
            telemetry.counter("machine.trace.replayed_records").add(packed.records)
            telemetry.timer("machine.trace.replay").add(time.perf_counter() - started)

    def _capture_batches(
        self,
        key: str,
        program: Program,
        inputs: List[Number],
        max_instructions: Optional[int],
        chunk_size: int,
    ) -> Iterator[TraceBatch]:
        telemetry = get_registry()
        executor = Executor(program, inputs=inputs, max_instructions=max_instructions)
        packed_batches: List[_PackedBatch] = []
        records = 0
        error: Optional[Tuple[str, str]] = None
        started = time.perf_counter()
        try:
            try:
                for batch in executor.run_batches(chunk_size):
                    packed_batches.append(
                        (
                            batch.addresses,
                            _pack_values(batch.values),
                            batch.phase_runs,
                            array("q", batch.mems),
                        )
                    )
                    records += len(batch)
                    yield batch
            except ExecutionError as exc:
                error = (type(exc).__name__, str(exc))
                raise
            finally:
                # Commit only finished captures: a clean halt, or a run the
                # machine itself terminated with an ExecutionError.  A
                # consumer that abandons the generator mid-trace (closing
                # it raises GeneratorExit here) stores nothing.
                finished = executor.state.halted or error is not None
                if finished:
                    state = executor.state
                    packed = PackedTrace(
                        batches=packed_batches,
                        records=records,
                        instruction_count=(
                            executor.instruction_count
                            if state.halted
                            else records
                        ),
                        outputs=list(state.outputs),
                        halted=state.halted,
                        error=error,
                    )
                    self._commit(key, packed)
        finally:
            telemetry.counter("machine.trace.captures").add(1)
            telemetry.counter("machine.trace.captured_records").add(records)
            telemetry.timer("machine.trace.capture").add(time.perf_counter() - started)

    def _lookup(self, key: str) -> Optional[PackedTrace]:
        with self._lock:
            packed = self._cache.get(key)
            if packed is not None:
                self._cache.move_to_end(key)
                return packed
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            packed = PackedTrace.from_bytes(blob)
        except (ValueError, KeyError):
            # Corrupt entry (truncated write, version skew): treat as a
            # miss and drop the file so the next capture rewrites it.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._insert(key, packed)
        return packed

    def _commit(self, key: str, packed: PackedTrace) -> None:
        self._insert(key, packed)
        if self.directory is None:
            return
        path = self._path(key)
        if path.exists():
            # Content-addressed: an existing entry for this key holds the
            # same bytes, so a duplicate publish is an idempotent no-op.
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = packed.to_bytes()
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".trace-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(blob)
            os.replace(tmp_name, path)
        except OSError:  # pragma: no cover - disk trouble degrades to memory-only
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    def _insert(self, key: str, packed: PackedTrace) -> None:
        with self._lock:
            self._cache[key] = packed
            self._cache.move_to_end(key)
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.trace"
