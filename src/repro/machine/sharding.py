"""Sharded multi-process trace capture into one shared TraceStore.

Capturing a workload's training and test runs is embarrassingly
parallel — each (program, input set) pair is an independent execution —
and the directory-backed :class:`~repro.machine.TraceStore` is already
concurrent-writer safe (content-addressed keys, write-temp + atomic
rename, idempotent duplicate publishes).  :func:`capture_sharded`
exploits both: it splits the input sets across worker processes, each
writing into the same store directory, and the resulting directory tree
is byte-identical to a serial capture of the same sets (the
``capture-shard-vs-serial`` oracle pair holds the two against each
other).

Pool discipline mirrors the PR 3 experiment runner: a broken pool
(worker OOM-killed, interpreter crash) is not fatal — the affected
shards degrade to in-process capture, which is always correct, just
serial.  An :class:`~repro.machine.errors.ExecutionError` inside a run
is *data*, not a failure: the store commits errored traces (they replay
their fault exactly), and the shard result records the error string.

:func:`parallel_runs` is the same pool applied to bare verification
runs (no store) — the ``repro corpus --jobs N`` passthrough.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..isa import Number, Program
from ..telemetry import get_registry
from .batch import DEFAULT_CHUNK
from .errors import ExecutionError
from .executor import DEFAULT_BUDGET, Executor
from .tracestore import TraceStore, trace_key

try:  # pragma: no cover - BrokenProcessPool location is version-dependent
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = OSError  # type: ignore[assignment,misc]


@dataclasses.dataclass(frozen=True)
class ShardResult:
    """Outcome of capturing one (program, input set) shard."""

    index: int
    key: str
    records: int
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclasses.dataclass
class ShardReport:
    """Everything one sharded capture produced, in input-set order."""

    results: List[ShardResult]
    jobs: int
    elapsed: float = 0.0

    @property
    def records(self) -> int:
        return sum(result.records for result in self.results)

    @property
    def failures(self) -> List[ShardResult]:
        return [result for result in self.results if not result.ok]


def _capture_shard(
    index: int,
    program: Program,
    inputs: List[Number],
    directory: Optional[str],
    max_instructions: Optional[int],
    chunk_size: int,
) -> ShardResult:
    """Capture one input set into the (shared) store; runs in a worker.

    Draining ``store.batches`` either replays an existing entry or
    executes and commits a fresh one; either way the store ends up
    holding this run's trace.  Without a directory the capture is a bare
    verification run (nothing persists beyond the process).
    """
    store = TraceStore(directory=directory)
    key = trace_key(program, inputs, max_instructions)
    records = 0
    error: Optional[str] = None
    try:
        for batch in store.batches(
            program, inputs, max_instructions=max_instructions,
            chunk_size=chunk_size,
        ):
            records += len(batch)
    except ExecutionError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return ShardResult(index=index, key=key, records=records, error=error)


def _capture_shard_star(payload: Tuple) -> ShardResult:
    """Top-level unpacking adapter (bound methods don't pickle)."""
    return _capture_shard(*payload)


def capture_sharded(
    program: Program,
    input_sets: Iterable[Sequence[Number]],
    directory: Optional[Union[str, "object"]] = None,
    jobs: int = 1,
    max_instructions: Optional[int] = DEFAULT_BUDGET,
    chunk_size: int = DEFAULT_CHUNK,
) -> ShardReport:
    """Capture every input set of ``program`` into one TraceStore.

    Args:
        program: the binary to trace.
        input_sets: one input stream per run; each becomes a shard.
        directory: the shared store directory (``None`` captures without
            persisting — useful only for verification).
        jobs: worker processes; ``1`` captures serially in-process.
        max_instructions: per-run dynamic-instruction budget.
        chunk_size: trace batch size (affects packing granularity only).

    Returns a :class:`ShardReport` whose results are in input-set order
    regardless of worker scheduling.
    """
    sets = [list(inputs) for inputs in input_sets]
    directory_str = str(directory) if directory is not None else None
    payloads = [
        (index, program, inputs, directory_str, max_instructions, chunk_size)
        for index, inputs in enumerate(sets)
    ]
    started = time.perf_counter()
    workers = max(1, min(jobs, len(sets)))
    results: List[Optional[ShardResult]] = [None] * len(sets)
    if workers <= 1 or len(sets) <= 1:
        for payload in payloads:
            results[payload[0]] = _capture_shard_star(payload)
    else:
        pending = list(payloads)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for result in pool.map(_capture_shard_star, payloads):
                    results[result.index] = result
            pending = []
        except BrokenProcessPool:
            pending = [p for p in payloads if results[p[0]] is None]
        # Degrade: any shard the pool lost is captured in-process (the
        # store's idempotent commits make re-capturing a completed shard
        # harmless, so erring on the side of redoing work is safe).
        for payload in pending:
            results[payload[0]] = _capture_shard_star(payload)
    report = ShardReport(
        results=[result for result in results if result is not None],
        jobs=workers,
        elapsed=time.perf_counter() - started,
    )
    telemetry = get_registry()
    if telemetry.enabled:
        telemetry.counter("capture.shard.runs").add(1)
        telemetry.counter("capture.shard.jobs").add(workers)
        telemetry.counter("capture.shard.shards").add(len(report.results))
        telemetry.counter("capture.shard.records").add(report.records)
        telemetry.timer("capture.shard.capture").add(report.elapsed)
    return report


def _run_shard(
    index: int,
    program: Program,
    inputs: List[Number],
    max_instructions: Optional[int],
) -> Tuple[int, int, Optional[str]]:
    """One bare verification run; returns (index, instructions, error)."""
    try:
        result = Executor(
            program, inputs=inputs, max_instructions=max_instructions
        ).run_to_completion()
        return (index, result.instruction_count, None)
    except ExecutionError as exc:
        return (index, 0, f"{type(exc).__name__}: {exc}")


def _run_shard_star(payload: Tuple) -> Tuple[int, int, Optional[str]]:
    return _run_shard(*payload)


def parallel_runs(
    cases: Sequence[Tuple[Program, Sequence[Number]]],
    jobs: int = 1,
    max_instructions: Optional[int] = DEFAULT_BUDGET,
) -> List[Tuple[int, Optional[str]]]:
    """Execute ``(program, inputs)`` cases across worker processes.

    Returns, in case order, ``(instruction_count, error)`` per case —
    ``error`` is ``None`` for a clean halt.  Used by ``repro corpus
    --jobs N`` to verify workloads in parallel; falls back to in-process
    execution if the pool breaks.
    """
    payloads = [
        (index, program, list(inputs), max_instructions)
        for index, (program, inputs) in enumerate(cases)
    ]
    workers = max(1, min(jobs, len(payloads)))
    results: List[Optional[Tuple[int, Optional[str]]]] = [None] * len(payloads)
    if workers <= 1 or len(payloads) <= 1:
        for payload in payloads:
            index, count, error = _run_shard_star(payload)
            results[index] = (count, error)
    else:
        pending = list(payloads)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for index, count, error in pool.map(_run_shard_star, payloads):
                    results[index] = (count, error)
            pending = []
        except BrokenProcessPool:
            pending = [p for p in payloads if results[p[0]] is None]
        for payload in pending:
            index, count, error = _run_shard_star(payload)
            results[index] = (count, error)
    return [result for result in results if result is not None]
