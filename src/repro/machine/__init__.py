"""Functional architectural simulator (the paper's SHADE stand-in).

Executes :class:`~repro.isa.program.Program` binaries and produces dynamic
instruction traces that the value predictors, the profiler and the ILP
model consume.  Traces are emitted natively as columnar
:class:`TraceBatch` chunks (with a per-record adapter on top) and can be
captured once and replayed many times through :class:`TraceStore`.
"""

from .batch import DEFAULT_CHUNK, TraceBatch
from .columns import ValueColumn
from .errors import (
    DivisionByZero,
    ExecutionError,
    InputExhausted,
    InstructionBudgetExceeded,
    InvalidMemoryAccess,
)
from .executor import (
    DEFAULT_BUDGET,
    Executor,
    mem_flags,
    run_program,
    trace_batches,
    trace_program,
    value_flags,
)
from .sharding import ShardReport, ShardResult, capture_sharded, parallel_runs
from .state import MachineState
from .stats import RunStatistics, collect_statistics
from .tracefile import TraceFormatError, read_trace, save_trace, write_trace
from .tracestore import (
    PackedTrace,
    TraceStore,
    inputs_digest,
    program_digest,
    trace_key,
)
from .trace import RunResult, TraceRecord, candidate_records, trace_to_list

__all__ = [
    "DEFAULT_BUDGET",
    "DEFAULT_CHUNK",
    "DivisionByZero",
    "ExecutionError",
    "Executor",
    "InputExhausted",
    "InstructionBudgetExceeded",
    "InvalidMemoryAccess",
    "MachineState",
    "PackedTrace",
    "RunResult",
    "RunStatistics",
    "ShardReport",
    "ShardResult",
    "TraceBatch",
    "TraceFormatError",
    "TraceRecord",
    "TraceStore",
    "ValueColumn",
    "candidate_records",
    "capture_sharded",
    "collect_statistics",
    "inputs_digest",
    "mem_flags",
    "parallel_runs",
    "program_digest",
    "read_trace",
    "run_program",
    "save_trace",
    "trace_batches",
    "trace_key",
    "trace_program",
    "trace_to_list",
    "value_flags",
    "write_trace",
]
