"""Functional architectural simulator (the paper's SHADE stand-in).

Executes :class:`~repro.isa.program.Program` binaries and produces dynamic
instruction traces that the value predictors, the profiler and the ILP
model consume.
"""

from .errors import (
    DivisionByZero,
    ExecutionError,
    InputExhausted,
    InstructionBudgetExceeded,
    InvalidMemoryAccess,
)
from .executor import DEFAULT_BUDGET, Executor, run_program, trace_program
from .state import MachineState
from .stats import RunStatistics, collect_statistics
from .tracefile import TraceFormatError, read_trace, save_trace, write_trace
from .trace import RunResult, TraceRecord, candidate_records, trace_to_list

__all__ = [
    "DEFAULT_BUDGET",
    "DivisionByZero",
    "ExecutionError",
    "Executor",
    "InputExhausted",
    "InstructionBudgetExceeded",
    "InvalidMemoryAccess",
    "MachineState",
    "RunResult",
    "RunStatistics",
    "TraceFormatError",
    "TraceRecord",
    "candidate_records",
    "collect_statistics",
    "read_trace",
    "run_program",
    "save_trace",
    "trace_program",
    "trace_to_list",
    "write_trace",
]
