"""Architectural state for the functional simulator."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..isa import NUM_REGISTERS, Number, Program


class MachineState:
    """Registers, data memory and environment state of one execution.

    Data memory is a sparse word-addressed store; uninitialized words read
    as integer zero (like .bss).  The stack grows downward from
    ``stack_top``; the global pointer ``gp`` starts at 0, the base of the
    data segment.
    """

    #: Default first address above the downward-growing stack.
    DEFAULT_STACK_TOP = 1 << 20

    def __init__(
        self,
        program: Program,
        inputs: Iterable[Number] = (),
        stack_top: int = DEFAULT_STACK_TOP,
    ) -> None:
        from ..isa import GP, SP, FP  # local import to avoid cycle at module load

        self.program = program
        self.registers: List[Number] = [0] * NUM_REGISTERS
        self.memory: Dict[int, Number] = dict(program.data)
        self.pc: int = 0
        self.phase: int = 0
        self.halted: bool = False
        self.inputs: List[Number] = list(inputs)
        self.input_cursor: int = 0
        self.outputs: List[Number] = []
        self.registers[GP] = 0
        self.registers[SP] = stack_top
        self.registers[FP] = stack_top

    def read_memory(self, address: int) -> Number:
        return self.memory.get(address, 0)

    def next_input(self) -> Optional[Number]:
        """Pop the next input value, or ``None`` when exhausted."""
        if self.input_cursor >= len(self.inputs):
            return None
        value = self.inputs[self.input_cursor]
        self.input_cursor += 1
        return value
