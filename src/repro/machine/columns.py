"""Packed value columns for :class:`~repro.machine.batch.TraceBatch`.

The value column of a trace batch used to be a plain Python list with
one slot per retired instruction — ``None`` for the ~40% of records
whose opcode produces no destination value.  :class:`ValueColumn`
replaces that with the layout the ISSUE calls the *packed int-values
sidecar*:

``ints``
    an ``array('q')`` with one slot per *produced* value.  In the hot
    all-small-int case this is the entire column: capture appends C
    int64s, replay wraps the stored buffer without creating a single
    Python object, and the numpy backend lifts it into an ndarray with
    ``np.frombuffer``.
``escapes``
    a position → value mapping for the rare values ``array('q')`` cannot
    hold — floats (kept as the exact float object, so ``3.0`` never
    collapses into ``3``) and integers beyond int64.  Escaped positions
    hold ``0`` in ``ints``.

Which records produce a value at all is a static property of the
program (:func:`~repro.machine.executor.value_flags`), mirroring how the
``mems`` column has always worked — batches carry no per-record ``None``
slot.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Sequence

from ..isa import Number

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Shared zero-length int column for batches with no produced values.
_EMPTY_INTS = array("q")


class ValueColumn:
    """The produced values of one trace batch, packed."""

    __slots__ = ("ints", "escapes")

    def __init__(self, ints: array, escapes: Dict[int, Number]) -> None:
        self.ints = ints
        self.escapes = escapes

    @classmethod
    def from_values(cls, produced: Sequence[Number]) -> "ValueColumn":
        """Pack a dense sequence of produced values (capture time).

        The fast path is a single C-level ``array('q', produced)``
        construction; only a batch containing a float or a bigint pays
        the per-value scan that builds the escape map.
        """
        if not produced:
            return cls(_EMPTY_INTS, {})
        try:
            return cls(array("q", produced), {})
        except (OverflowError, TypeError):
            pass
        ints = array("q", bytes(8 * len(produced)))
        escapes: Dict[int, Number] = {}
        for position, value in enumerate(produced):
            if type(value) is int and _INT64_MIN <= value <= _INT64_MAX:
                ints[position] = value
            else:
                escapes[position] = value
        return cls(ints, escapes)

    @property
    def is_pure_int(self) -> bool:
        """No escapes: the whole column lives in the int64 array."""
        return not self.escapes

    def __len__(self) -> int:
        return len(self.ints)

    def __getitem__(self, position: int) -> Number:
        if position < 0:
            position += len(self.ints)
        escaped = self.escapes.get(position)
        if escaped is not None:
            return escaped
        return self.ints[position]

    def __iter__(self) -> Iterator[Number]:
        escapes = self.escapes
        if not escapes:
            return iter(self.ints)
        get = escapes.get
        return (
            value if (value := get(position)) is not None else raw
            for position, raw in enumerate(self.ints)
        )

    def tolist(self) -> List[Number]:
        """The produced values as a plain list (escapes substituted)."""
        if not self.escapes:
            return self.ints.tolist()
        values = self.ints.tolist()
        for position, value in self.escapes.items():
            values[position] = value
        return values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ValueColumn({len(self.ints)} values, "
            f"{len(self.escapes)} escapes)"
        )


__all__ = ["ValueColumn"]
