"""Trace files: persist and replay dynamic instruction traces.

SHADE-style workflows separate *tracing* (run once, expensive) from
*analysis* (replay many times, cheap).  This module gives the
reproduction the same split: :func:`save_trace` executes a program and
streams its trace to disk (optionally gzip-compressed), and
:func:`read_trace` replays it as :class:`TraceRecord` objects that any
consumer — the profiler, the ILP scheduler — accepts in place of a live
execution.

Format (text, one record per line)::

    # repro-trace v1
    # program: 126.gcc
    <address> <value|-> <phase> <mem_address|->

Values serialize via ``repr`` so integers and floats replay exactly.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Union

from ..isa import Number, Program
from .executor import trace_program
from .trace import TraceRecord

_MAGIC = "# repro-trace v1"


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


def _open_text(path: Union[str, Path], mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _render_value(value: Optional[Number]) -> str:
    return "-" if value is None else repr(value)


def _parse_value(text: str) -> Optional[Number]:
    if text == "-":
        return None
    try:
        return int(text)
    except ValueError:
        return float(text)


def write_trace(
    records: Iterable[TraceRecord],
    stream: IO[str],
    program_name: str = "",
) -> int:
    """Write ``records`` to ``stream``; returns the record count."""
    stream.write(f"{_MAGIC}\n")
    stream.write(f"# program: {program_name}\n")
    count = 0
    for record in records:
        stream.write(
            f"{record.address} {_render_value(record.value)} "
            f"{record.phase} {_render_value(record.mem_address)}\n"
        )
        count += 1
    return count


def save_trace(
    program: Program,
    path: Union[str, Path],
    inputs: Iterable[Number] = (),
    max_instructions: Optional[int] = None,
) -> int:
    """Execute ``program`` once, streaming its trace to ``path``.

    A ``.gz`` suffix selects gzip compression.  Returns the number of
    records written.
    """
    kwargs = {}
    if max_instructions is not None:
        kwargs["max_instructions"] = max_instructions
    with _open_text(path, "w") as stream:
        return write_trace(
            trace_program(program, inputs, **kwargs), stream, program.name
        )


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Replay a stored trace as :class:`TraceRecord` objects.

    Raises:
        TraceFormatError: on a bad header or malformed record line.
    """
    with _open_text(path, "r") as stream:
        header = stream.readline().rstrip("\n")
        if header != _MAGIC:
            raise TraceFormatError(f"not a trace file (header {header!r})")
        for line_number, line in enumerate(stream, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 4:
                raise TraceFormatError(
                    f"line {line_number}: expected 4 fields, got {len(fields)}"
                )
            try:
                yield TraceRecord(
                    address=int(fields[0]),
                    value=_parse_value(fields[1]),
                    phase=int(fields[2]),
                    mem_address=_parse_value(fields[3]),  # type: ignore[arg-type]
                )
            except ValueError:
                raise TraceFormatError(
                    f"line {line_number}: malformed record {line!r}"
                ) from None
