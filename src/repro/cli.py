"""The ``repro`` toolchain CLI.

Mirrors the paper's three-phase workflow as shell commands::

    python -m repro compile  program.mc -o program.asm
    python -m repro run      program.asm --inputs 3,4,5
    python -m repro profile  program.asm --inputs in0.txt -o program.profile
    python -m repro annotate program.asm program.profile --threshold 90 -o tagged.asm
    python -m repro disasm   tagged.asm
    python -m repro fuse     "profiles/*.profile" -o merged.profile

and exposes the whole experiment suite through the same entry point::

    python -m repro experiments all --jobs 4
    python -m repro experiments fig-2.2 table-5.2 --scale 0.3
    python -m repro experiments all --jobs 4 --retries 2 --job-timeout 600 \\
        --report-json run-report.json

plus the pinned performance suite::

    python -m repro bench --output BENCH.json
    python -m repro bench --smoke

and the correctness tooling (differential oracle + invariant lint)::

    python -m repro check
    python -m repro check --smoke

plus the learned predictability classifier (profile-free phase 3)::

    python -m repro classify train -o model.json
    python -m repro classify predict model.json program.asm -o tagged.asm
    python -m repro classify eval model.json

plus the profiling service (one shared trace store, many tenants)::

    python -m repro serve --port 8750
    python -m repro client compile demo.mc -o demo.asm
    python -m repro client profile demo.asm --inputs 1,2,3 -o demo.profile
    python -m repro client shutdown

Programs on disk are stored in the textual assembly format
(:mod:`repro.isa.assembler`); ``compile`` turns mini-C into it, and every
other command consumes it.  Inputs may be given inline (``--inputs 1,2,3``)
or as a whitespace-separated file (``--inputs @file``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .annotate import AnnotationPolicy, annotate_program, annotation_report
from .isa import Program, assemble, disassemble
from .lang import compile_source
from .machine import run_program, save_trace, read_trace
from .profiling import collect_profile, merge_profiles, read_profile, save_profile

Number = Union[int, float]


def _load_program(path: str) -> Program:
    text = Path(path).read_text(encoding="utf-8")
    return assemble(text, name=Path(path).stem)


def _write_output(text: str, output: Optional[str]) -> None:
    if output is None or output == "-":
        sys.stdout.write(text)
    else:
        Path(output).write_text(text, encoding="utf-8")


def _parse_number(token: str) -> Number:
    try:
        return int(token)
    except ValueError:
        return float(token)


def parse_inputs_spec(spec: Optional[str]) -> List[Number]:
    """One ``--inputs`` value: ``1,2,3.5`` inline or ``@file`` on disk.

    The single parser behind every subcommand's ``--inputs`` flag —
    ``run``/``trace``/``profile`` here and the ``repro client`` mirror
    commands (:mod:`repro.service.cli`) all route through it, so the
    spec syntax cannot drift between commands.
    """
    if not spec:
        return []
    if spec.startswith("@"):
        text = Path(spec[1:]).read_text(encoding="utf-8")
        return [_parse_number(token) for token in text.split()]
    return [_parse_number(token) for token in spec.split(",") if token]


def parse_input_stream(specs: Sequence[Optional[str]]) -> List[Number]:
    """Repeated ``--inputs`` flags as *one* stream (``run``/``trace``).

    These commands execute the program once, so repeated flags
    concatenate in order; a single flag behaves exactly as before.
    """
    stream: List[Number] = []
    for spec in specs:
        stream.extend(parse_inputs_spec(spec))
    return stream


def parse_input_sets(specs: Sequence[Optional[str]]) -> List[List[Number]]:
    """Repeated ``--inputs`` flags as one stream *each* (``profile``).

    Profiling runs the program once per training stream, so every flag
    stays its own input set.
    """
    return [parse_inputs_spec(spec) for spec in specs]


def _command_compile(arguments: argparse.Namespace) -> int:
    source = Path(arguments.source).read_text(encoding="utf-8")
    program = compile_source(
        source, name=Path(arguments.source).stem, optimize=not arguments.no_optimize
    )
    _write_output(disassemble(program), arguments.output)
    print(
        f"compiled {arguments.source}: {len(program)} instructions, "
        f"{len(program.candidate_addresses)} prediction candidates",
        file=sys.stderr,
    )
    return 0


def _command_run(arguments: argparse.Namespace) -> int:
    program = _load_program(arguments.program)
    result = run_program(
        program,
        inputs=parse_input_stream(arguments.inputs or []),
        max_instructions=arguments.max_instructions,
    )
    for value in result.outputs:
        print(value)
    print(
        f"retired {result.instruction_count} instructions",
        file=sys.stderr,
    )
    return 0


def _command_profile(arguments: argparse.Namespace) -> int:
    import contextlib
    import tempfile

    program = _load_program(arguments.program)
    sample_every = getattr(arguments, "sample_every", 1)
    jobs = getattr(arguments, "jobs", 1)
    store_dir = getattr(arguments, "store", None)
    images = []
    for index, path in enumerate(arguments.trace or []):
        images.append(
            collect_profile(
                program,
                records=read_trace(path),
                run_label=f"trace-{index}",
                sample_every=sample_every,
            )
        )
    input_specs = arguments.inputs or ([] if images else [""])
    input_sets = parse_input_sets(input_specs)
    with contextlib.ExitStack() as stack:
        store = None
        if input_sets and (jobs > 1 or store_dir):
            # Capture the training runs across worker processes into one
            # shared TraceStore, then profile by (in-process) replay.  A
            # --store directory persists the traces; otherwise they live
            # in a temporary directory for the duration of the command.
            from .machine import TraceStore, capture_sharded

            if store_dir is None:
                store_dir = stack.enter_context(tempfile.TemporaryDirectory())
            report = capture_sharded(
                program, input_sets, directory=store_dir, jobs=jobs
            )
            if report.failures:
                # The replay below re-raises each fault at the exact same
                # record a serial run would — surface them early instead.
                for failure in report.failures:
                    print(
                        f"profile: input set {failure.index} faulted: "
                        f"{failure.error}",
                        file=sys.stderr,
                    )
                return 1
            store = TraceStore(directory=store_dir)
        images.extend(
            collect_profile(
                program,
                inputs,
                run_label=f"run-{index}",
                sample_every=sample_every,
                store=store,
            )
            for index, inputs in enumerate(input_sets)
        )
    image = images[0] if len(images) == 1 else merge_profiles(images)
    if arguments.output:
        save_profile(image, arguments.output)
        print(
            f"profiled {len(image)} instructions over {len(images)} run(s) "
            f"-> {arguments.output}",
            file=sys.stderr,
        )
    else:
        from .profiling import dumps_profile

        sys.stdout.write(dumps_profile(image))
    return 0


def _command_fuse(arguments: argparse.Namespace) -> int:
    """Merge many profile images/sketches into one, streaming."""
    import glob as glob_module
    import json

    from .profiling import (
        MergeAccumulator,
        ProfileSketch,
        dumps_profile,
        fidelity_report,
        read_any_profile,
        save_sketch,
    )

    paths: List[str] = []
    for pattern in arguments.patterns:
        matches = sorted(glob_module.glob(pattern))
        if not matches:
            print(f"fuse: no profiles match {pattern!r}", file=sys.stderr)
            return 2
        paths.extend(match for match in matches if match not in paths)

    make_sketch = arguments.sketch or arguments.quantize > 0
    if make_sketch and (not arguments.output or arguments.output == "-"):
        print("fuse: --sketch output is binary; -o PATH is required",
              file=sys.stderr)
        return 2

    if arguments.batch:
        image = merge_profiles(
            (read_any_profile(path) for path in paths),
            require_common=arguments.require_common,
        )
    else:
        accumulator = MergeAccumulator(require_common=arguments.require_common)
        for path in paths:
            accumulator.fold(read_any_profile(path))
        image = accumulator.result()

    if arguments.report:
        report = fidelity_report(read_any_profile(path) for path in paths)
        Path(arguments.report).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )

    if make_sketch:
        save_sketch(
            ProfileSketch.from_image(image, arguments.quantize), arguments.output
        )
        destination = arguments.output
    elif arguments.output and arguments.output != "-":
        save_profile(image, arguments.output)
        destination = arguments.output
    else:
        sys.stdout.write(dumps_profile(image))
        destination = "stdout"
    engine = "batch" if arguments.batch else "streaming"
    print(
        f"fused {len(paths)} profile(s) into {len(image)} instructions "
        f"({engine}) -> {destination}",
        file=sys.stderr,
    )
    return 0


def _command_corpus(arguments: argparse.Namespace) -> int:
    """Generate a seeded mini-C workload corpus; compile and verify it."""
    import json

    from .machine import ExecutionError
    from .workloads import TEST_INDEX
    from .workloads.corpus import DEFAULT_MIX, generate_corpus, parse_mix

    try:
        mix = parse_mix(arguments.mix) if arguments.mix else DEFAULT_MIX
        workloads = generate_corpus(
            arguments.seed, arguments.count, mix, name_prefix=arguments.prefix
        )
    except ValueError as error:
        print(f"corpus: {error}", file=sys.stderr)
        return 2
    out_dir = Path(arguments.out_dir) if arguments.out_dir else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    compiled = [
        (
            workload,
            workload.compile(),
            [workload.input_set(index) for index in range(TEST_INDEX + 1)],
        )
        for workload in workloads
    ]
    verification: dict = {}
    if not arguments.no_verify and getattr(arguments, "jobs", 1) > 1:
        # Flatten every (workload, input set) run into one case list and
        # verify across worker processes; results come back in case order.
        from .machine import parallel_runs

        cases = [
            (program, inputs)
            for _workload, program, input_sets in compiled
            for inputs in input_sets
        ]
        outcomes = parallel_runs(
            cases, jobs=arguments.jobs,
            max_instructions=arguments.max_instructions,
        )
        cursor = 0
        for workload, _program, input_sets in compiled:
            verification[workload.name] = outcomes[
                cursor : cursor + len(input_sets)
            ]
            cursor += len(input_sets)
    manifest = []
    for workload, program, input_sets in compiled:
        entry = {
            "name": workload.name,
            "suite": workload.suite,
            "seed": arguments.seed,
            "static_instructions": len(program),
            "candidates": len(program.candidate_addresses),
        }
        if not arguments.no_verify:
            dynamic = 0
            outcomes = verification.get(workload.name)
            for index, inputs in enumerate(input_sets):
                if outcomes is not None:
                    count, error_text = outcomes[index]
                else:
                    try:
                        result = run_program(
                            program,
                            inputs=inputs,
                            max_instructions=arguments.max_instructions,
                        )
                        count, error_text = result.instruction_count, None
                    except ExecutionError as error:
                        count, error_text = 0, str(error)
                if error_text is not None:
                    print(
                        f"corpus: {workload.name} failed on input set "
                        f"{index}: {error_text}",
                        file=sys.stderr,
                    )
                    return 1
                dynamic += count
            entry["dynamic_instructions"] = dynamic
        if out_dir is not None:
            # Workload names contain dots, so build filenames by plain
            # concatenation — Path.with_suffix would clobber the last part.
            (out_dir / f"{workload.name}.mc").write_text(
                workload.source, encoding="utf-8"
            )
            (out_dir / f"{workload.name}.asm").write_text(
                disassemble(program), encoding="utf-8"
            )
            for index, inputs in enumerate(input_sets):
                (out_dir / f"{workload.name}.inputs-{index}.txt").write_text(
                    " ".join(str(value) for value in inputs) + "\n",
                    encoding="utf-8",
                )
        manifest.append(entry)
    if arguments.manifest:
        Path(arguments.manifest).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
    verified = "verified" if not arguments.no_verify else "unverified"
    suites = {entry["suite"] for entry in manifest}
    print(
        f"generated {len(manifest)} workloads (seed {arguments.seed}, "
        f"suites {'+'.join(sorted(suites))}, {verified})"
        + (f" -> {out_dir}" if out_dir is not None else ""),
        file=sys.stderr,
    )
    return 0


def _command_annotate(arguments: argparse.Namespace) -> int:
    program = _load_program(arguments.program)
    image = read_profile(arguments.profile)
    policy = AnnotationPolicy(
        accuracy_threshold=arguments.threshold,
        stride_threshold=arguments.stride_threshold,
    )
    annotated = annotate_program(program, image, policy)
    report = annotation_report(program, image, policy)
    _write_output(disassemble(annotated), arguments.output)
    print(
        f"tagged {report.stride_tagged} stride + {report.last_value_tagged} "
        f"last-value of {report.candidates} candidates "
        f"(threshold {arguments.threshold:g}%)",
        file=sys.stderr,
    )
    return 0


def _command_trace(arguments: argparse.Namespace) -> int:
    program = _load_program(arguments.program)
    if arguments.store:
        # Sharded capture: each --inputs flag is its own run, captured
        # into one content-addressed TraceStore across --jobs workers.
        from .machine import capture_sharded

        if arguments.output:
            print(
                "trace: choose one of -o (single trace file) or "
                "--store (sharded capture directory)",
                file=sys.stderr,
            )
            return 2
        input_sets = parse_input_sets(arguments.inputs or [""])
        report = capture_sharded(
            program,
            input_sets,
            directory=arguments.store,
            jobs=arguments.jobs,
            max_instructions=arguments.max_instructions,
        )
        for failure in report.failures:
            print(
                f"trace: input set {failure.index} faulted: {failure.error} "
                "(partial trace stored; it replays the same fault)",
                file=sys.stderr,
            )
        print(
            f"captured {len(report.results)} run(s), {report.records} records "
            f"({report.jobs} job(s), {report.elapsed:.2f}s) "
            f"-> {arguments.store}",
            file=sys.stderr,
        )
        return 0
    if not arguments.output:
        print("trace: -o is required without --store", file=sys.stderr)
        return 2
    if arguments.jobs != 1:
        print(
            "trace: --jobs needs --store (a single trace file is one run)",
            file=sys.stderr,
        )
        return 2
    count = save_trace(
        program,
        arguments.output,
        inputs=parse_input_stream(arguments.inputs or []),
        max_instructions=arguments.max_instructions,
    )
    print(f"wrote {count} records to {arguments.output}", file=sys.stderr)
    return 0


def _command_disasm(arguments: argparse.Namespace) -> int:
    program = _load_program(arguments.program)
    _write_output(disassemble(program), arguments.output)
    return 0


def _command_report(arguments: argparse.Namespace) -> int:
    """Rank instructions by profiled value predictability."""
    program = _load_program(arguments.program)
    image = read_profile(arguments.profile)
    rows = []
    for address, profile in image.instructions.items():
        if profile.attempts < arguments.min_attempts:
            continue
        rows.append((profile.accuracy, profile.stride_efficiency, profile, address))
    rows.sort(key=lambda row: (row[0], row[1], row[3]), reverse=True)
    limit = arguments.top

    def print_section(title: str, section) -> None:
        print(title)
        print(f"  {'addr':>6s} {'exec':>8s} {'acc%':>7s} {'stride%':>8s}  instruction")
        for accuracy, stride_ratio, profile, address in section:
            print(
                f"  {address:6d} {profile.executions:8d} {accuracy:7.1f} "
                f"{stride_ratio:8.1f}  {program[address].render()}"
            )

    print_section(f"most predictable ({limit}):", rows[:limit])
    print()
    print_section(f"least predictable ({limit}):", rows[-limit:][::-1])
    executed = sum(profile.executions for _, _, profile, _ in rows)
    correct = sum(profile.correct for _, _, profile, _ in rows)
    attempts = sum(profile.attempts for _, _, profile, _ in rows)
    overall = 100.0 * correct / attempts if attempts else 0.0
    print(
        f"\n{len(rows)} instructions, {executed} dynamic executions, "
        f"overall accuracy {overall:.1f}%"
    )
    return 0


def _classify_corpus(arguments: argparse.Namespace):
    """The seeded corpus shared by ``classify train`` and ``classify eval``.

    Returns ``(training slice, held-out slice)``; the split point is
    ``--train-count``, so the two subcommands agree on which programs the
    model has never seen.
    """
    from .workloads.corpus import DEFAULT_MIX, generate_corpus

    workloads = generate_corpus(
        arguments.corpus_seed, arguments.corpus_count, DEFAULT_MIX
    )
    cut = max(1, min(arguments.train_count, len(workloads) - 1))
    return workloads[:cut], workloads[cut:]


def _classify_policy(arguments: argparse.Namespace) -> AnnotationPolicy:
    return AnnotationPolicy(
        accuracy_threshold=arguments.threshold,
        stride_threshold=arguments.stride_threshold,
    )


def _command_classify_train(arguments: argparse.Namespace) -> int:
    """Train the predictability model on the corpus training slice."""
    from .classify import (
        build_dataset,
        dataset_rows,
        dumps_model,
        model_digest,
        train_model,
    )

    training, _held_out = _classify_corpus(arguments)
    labeled = build_dataset(
        training,
        training_runs=arguments.training_runs,
        scale=arguments.scale,
        policy=_classify_policy(arguments),
    )
    rows = dataset_rows(labeled)
    model = train_model(
        rows,
        seed=arguments.seed,
        max_depth=arguments.max_depth,
        min_leaf=arguments.min_leaf,
    )
    _write_output(dumps_model(model), arguments.output)
    print(
        f"trained on {len(labeled)} programs ({model.training_rows} rows): "
        f"{model.node_count} nodes, depth {model.depth}, "
        f"digest {model_digest(model)[:16]}",
        file=sys.stderr,
    )
    return 0


def _command_classify_predict(arguments: argparse.Namespace) -> int:
    """Re-tag a program with model-predicted directives (no profile)."""
    from .classify import (
        ModelFormatError,
        annotate_with_model,
        loads_model,
        model_digest,
    )

    try:
        model = loads_model(Path(arguments.model).read_text(encoding="utf-8"))
    except ModelFormatError as error:
        print(f"classify: bad model: {error}", file=sys.stderr)
        return 2
    program = _load_program(arguments.program)
    annotated = annotate_with_model(model, program)
    _write_output(disassemble(annotated), arguments.output)
    print(
        f"tagged {len(annotated.directives())} of "
        f"{len(program.candidate_addresses)} candidates "
        f"(model digest {model_digest(model)[:16]})",
        file=sys.stderr,
    )
    return 0


def _command_classify_eval(arguments: argparse.Namespace) -> int:
    """Held-out per-instruction label accuracy vs the majority baseline."""
    from .classify import (
        LABEL_NAMES,
        ModelFormatError,
        build_dataset,
        dataset_rows,
        loads_model,
        majority_label,
    )

    try:
        model = loads_model(Path(arguments.model).read_text(encoding="utf-8"))
    except ModelFormatError as error:
        print(f"classify: bad model: {error}", file=sys.stderr)
        return 2
    _training, held_out = _classify_corpus(arguments)
    labeled = build_dataset(
        held_out,
        training_runs=arguments.training_runs,
        scale=arguments.scale,
        policy=_classify_policy(arguments),
    )
    rows = dataset_rows(labeled)
    if not rows:
        print("classify: held-out slice has no candidates", file=sys.stderr)
        return 1
    baseline = majority_label(rows)
    learned = sum(1 for features, label in rows if model.predict(features) == label)
    majority = sum(1 for _, label in rows if label == baseline)
    print(
        f"held-out: {len(held_out)} programs, {len(rows)} candidate "
        f"instructions"
    )
    print(f"learned accuracy:  {100.0 * learned / len(rows):.1f}%")
    print(
        f"majority baseline: {100.0 * majority / len(rows):.1f}% "
        f"(always {LABEL_NAMES[baseline]!r})"
    )
    return 0 if learned > majority else 1


def _command_experiments(arguments: argparse.Namespace) -> int:
    from .experiments.runner import run_from_arguments

    return run_from_arguments(arguments)


def _command_bench(arguments: argparse.Namespace) -> int:
    from .telemetry.bench import run_from_arguments

    return run_from_arguments(arguments)


def _command_check(arguments: argparse.Namespace) -> int:
    from .check.cli import run_from_arguments

    return run_from_arguments(arguments)


def _command_serve(arguments: argparse.Namespace) -> int:
    from .service.cli import run_serve

    return run_serve(arguments)


def _command_client(arguments: argparse.Namespace) -> int:
    from .service.cli import run_client

    return run_client(arguments)


def build_parser() -> argparse.ArgumentParser:
    # Imported here so `import repro.cli` stays light and the
    # cli -> experiments dependency exists only at parser-build time.
    from .check.cli import add_arguments as add_check_arguments
    from .experiments.runner import add_arguments as add_experiment_arguments
    from .service.cli import (
        add_client_arguments,
        add_serve_arguments,
    )
    from .telemetry.bench import add_arguments as add_bench_arguments

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Toolchain for the MICRO-30 1997 profiling/value-prediction "
        "reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiments_parser = commands.add_parser(
        "experiments",
        help="reproduce the paper's tables and figures (parallel engine, "
        "content-addressed cache)",
    )
    add_experiment_arguments(experiments_parser)
    experiments_parser.set_defaults(handler=_command_experiments)

    bench_parser = commands.add_parser(
        "bench",
        help="run the pinned performance suite and write a BENCH_<rev>.json "
        "report (schema repro-bench/4)",
    )
    add_bench_arguments(bench_parser)
    bench_parser.set_defaults(handler=_command_bench)

    check_parser = commands.add_parser(
        "check",
        help="run the differential oracle (fast vs reference paths) and "
        "the static invariant lint",
    )
    add_check_arguments(check_parser)
    check_parser.set_defaults(handler=_command_check)

    classify_parser = commands.add_parser(
        "classify",
        help="learned predictability classifier: train on profiled corpus "
        "programs, re-tag binaries with no profile at all",
    )
    classify_commands = classify_parser.add_subparsers(
        dest="classify_command", required=True
    )

    def add_classify_corpus_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--corpus-seed", type=int, default=1997,
            help="seed of the generated corpus (default 1997)",
        )
        subparser.add_argument(
            "--corpus-count", type=int, default=24,
            help="corpus size (default 24)",
        )
        subparser.add_argument(
            "--train-count", type=int, default=16,
            help="corpus prefix used for training; the rest is the "
            "held-out slice (default 16)",
        )
        subparser.add_argument(
            "--training-runs", type=int, default=5,
            help="profiling runs per program for labels (default 5)",
        )
        subparser.add_argument(
            "--scale", type=float, default=1.0,
            help="workload input scale (default 1.0)",
        )
        subparser.add_argument(
            "--threshold", type=float, default=90.0,
            help="label accuracy threshold [%%] (default 90)",
        )
        subparser.add_argument(
            "--stride-threshold", type=float, default=50.0,
            help="label stride-efficiency split [%%] (default 50)",
        )

    classify_train_parser = classify_commands.add_parser(
        "train",
        help="profile the corpus training slice and train the model",
    )
    add_classify_corpus_arguments(classify_train_parser)
    classify_train_parser.add_argument(
        "--seed", type=int, default=1997,
        help="training seed for subsampling (default 1997)",
    )
    classify_train_parser.add_argument(
        "--max-depth", type=int, default=8,
        help="decision-tree depth limit (default 8)",
    )
    classify_train_parser.add_argument(
        "--min-leaf", type=int, default=2,
        help="minimum rows per leaf (default 2)",
    )
    classify_train_parser.add_argument(
        "-o", "--output", help="model file (default stdout)"
    )
    classify_train_parser.set_defaults(handler=_command_classify_train)

    classify_predict_parser = classify_commands.add_parser(
        "predict",
        help="insert model-predicted directives into a program (phase 3 "
        "with no profile)",
    )
    classify_predict_parser.add_argument("model", help="trained model file")
    classify_predict_parser.add_argument("program", help="assembly file")
    classify_predict_parser.add_argument(
        "-o", "--output", help="annotated assembly output (default stdout)"
    )
    classify_predict_parser.set_defaults(handler=_command_classify_predict)

    classify_eval_parser = classify_commands.add_parser(
        "eval",
        help="held-out label accuracy vs the majority-class baseline "
        "(non-zero exit when the model does not beat it)",
    )
    classify_eval_parser.add_argument("model", help="trained model file")
    add_classify_corpus_arguments(classify_eval_parser)
    classify_eval_parser.set_defaults(handler=_command_classify_eval)

    serve_parser = commands.add_parser(
        "serve",
        help="run the profiling-as-a-service daemon (schema repro-serve/1, "
        "shared trace store, per-tenant quotas)",
    )
    add_serve_arguments(serve_parser)
    serve_parser.set_defaults(handler=_command_serve)

    client_parser = commands.add_parser(
        "client",
        help="submit compile/trace/profile/annotate/experiment jobs to a "
        "running daemon",
    )
    add_client_arguments(client_parser)
    client_parser.set_defaults(handler=_command_client)

    compile_parser = commands.add_parser(
        "compile", help="compile mini-C to textual assembly (phase 1)"
    )
    compile_parser.add_argument("source", help="mini-C source file")
    compile_parser.add_argument("-o", "--output", help="assembly output (default stdout)")
    compile_parser.add_argument(
        "--no-optimize", action="store_true", help="disable -O2 stand-in passes"
    )
    compile_parser.set_defaults(handler=_command_compile)

    run_parser = commands.add_parser("run", help="execute a program")
    run_parser.add_argument("program", help="assembly file")
    run_parser.add_argument(
        "--inputs", action="append",
        help="input stream: '1,2,3' inline or '@file' (repeatable; "
        "streams concatenate)",
    )
    run_parser.add_argument(
        "--max-instructions", type=int, default=None, help="dynamic budget"
    )
    run_parser.set_defaults(handler=_command_run)

    profile_parser = commands.add_parser(
        "profile", help="collect a profile image (phase 2)"
    )
    profile_parser.add_argument("program", help="assembly file")
    profile_parser.add_argument(
        "--inputs",
        action="append",
        help="one training input stream per flag (repeatable)",
    )
    profile_parser.add_argument(
        "--trace",
        action="append",
        help="profile a stored trace file instead of executing (repeatable)",
    )
    profile_parser.add_argument(
        "--sample-every",
        type=int,
        default=1,
        metavar="K",
        help="keep every K-th dynamic record (1 = full profile, the default)",
    )
    profile_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="capture the training runs across N worker processes, then "
        "profile by replay (default 1: in-process)",
    )
    profile_parser.add_argument(
        "--store",
        metavar="DIR",
        help="TraceStore directory shared between the capture workers "
        "(default: a temporary directory; traces persist when given)",
    )
    profile_parser.add_argument("-o", "--output", help="profile image file")
    profile_parser.set_defaults(handler=_command_profile)

    corpus_parser = commands.add_parser(
        "corpus",
        help="generate a seeded mini-C workload corpus (compile + verify "
        "termination by default)",
    )
    corpus_parser.add_argument(
        "--seed", type=int, default=1997, help="corpus seed (default 1997)"
    )
    corpus_parser.add_argument(
        "--count", type=int, default=24, help="number of workloads (default 24)"
    )
    corpus_parser.add_argument(
        "--mix",
        help="idiom mix weights, e.g. 'stride=2,table=1,chain=1,mixed=1'",
    )
    corpus_parser.add_argument(
        "--prefix", default="gen", help="workload name prefix (default 'gen')"
    )
    corpus_parser.add_argument(
        "--out-dir",
        metavar="DIR",
        help="write <name>.mc, <name>.asm and per-run input files here",
    )
    corpus_parser.add_argument(
        "--manifest",
        metavar="PATH",
        help="write a JSON manifest of the generated corpus",
    )
    corpus_parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip executing each workload on all of its input sets",
    )
    corpus_parser.add_argument(
        "--max-instructions",
        type=int,
        default=200_000,
        help="per-run dynamic budget during verification (default 200000)",
    )
    corpus_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="verify workloads across N worker processes (default 1)",
    )
    corpus_parser.set_defaults(handler=_command_corpus)

    fuse_parser = commands.add_parser(
        "fuse",
        help="merge many profile images/sketches into one (streaming, "
        "bounded memory)",
    )
    fuse_parser.add_argument(
        "patterns",
        nargs="+",
        help="profile/sketch files or glob patterns (formats auto-detected)",
    )
    fuse_parser.add_argument(
        "-o", "--output",
        help="merged output (default stdout; required with --sketch)",
    )
    fuse_parser.add_argument(
        "--require-common",
        action="store_true",
        help="keep only instructions present in every input (Section 4)",
    )
    fuse_parser.add_argument(
        "--sketch",
        action="store_true",
        help="write the merged image as a compact binary sketch",
    )
    fuse_parser.add_argument(
        "--quantize",
        type=int,
        default=0,
        metavar="LEVEL",
        help="sketch count-quantization level (implies --sketch; 0 = lossless)",
    )
    fuse_parser.add_argument(
        "--batch",
        action="store_true",
        help="use the batch merge engine instead of streaming "
        "(byte-identity checks)",
    )
    fuse_parser.add_argument(
        "--report",
        metavar="PATH",
        help="write a JSON size/fidelity report over the inputs",
    )
    fuse_parser.set_defaults(handler=_command_fuse)

    annotate_parser = commands.add_parser(
        "annotate", help="insert value-prediction directives (phase 3)"
    )
    annotate_parser.add_argument("program", help="assembly file")
    annotate_parser.add_argument("profile", help="profile image file")
    annotate_parser.add_argument(
        "--threshold", type=float, default=90.0, help="accuracy threshold [%%]"
    )
    annotate_parser.add_argument(
        "--stride-threshold",
        type=float,
        default=50.0,
        help="stride-efficiency split [%%]",
    )
    annotate_parser.add_argument("-o", "--output", help="annotated assembly output")
    annotate_parser.set_defaults(handler=_command_annotate)

    disasm_parser = commands.add_parser(
        "disasm", help="canonicalize/inspect an assembly file"
    )
    disasm_parser.add_argument("program", help="assembly file")
    disasm_parser.add_argument("-o", "--output", help="output (default stdout)")
    disasm_parser.set_defaults(handler=_command_disasm)

    trace_parser = commands.add_parser(
        "trace", help="execute and store the dynamic trace(s)"
    )
    trace_parser.add_argument("program", help="assembly file")
    trace_parser.add_argument(
        "--inputs", action="append",
        help="input stream: '1,2,3' inline or '@file' (repeatable; "
        "streams concatenate with -o, one run each with --store)",
    )
    trace_parser.add_argument(
        "--max-instructions", type=int, default=None, help="dynamic budget"
    )
    trace_parser.add_argument(
        "-o", "--output",
        help="trace file (.gz suffix compresses); required without --store",
    )
    trace_parser.add_argument(
        "--store",
        metavar="DIR",
        help="capture each input set into this TraceStore directory "
        "instead of writing one trace file",
    )
    trace_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for --store capture (default 1)",
    )
    trace_parser.set_defaults(handler=_command_trace)

    report_parser = commands.add_parser(
        "report", help="rank instructions by profiled value predictability"
    )
    report_parser.add_argument("program", help="assembly file")
    report_parser.add_argument("profile", help="profile image file")
    report_parser.add_argument(
        "--top", type=int, default=10, help="rows per section (default 10)"
    )
    report_parser.add_argument(
        "--min-attempts",
        type=int,
        default=5,
        help="ignore instructions profiled fewer times than this",
    )
    report_parser.set_defaults(handler=_command_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
