"""Figure 4.3 — the spread of the coordinates of M(S)average.

Paper: the average-distance metric applied to the *stride efficiency
ratio* vectors of the n=5 runs — does the set of stride-patterned
instructions stay the same across inputs?

Expected shape: most coordinates in the lowest intervals, confirming that
profiling can steer the stride/last-value directive choice.
"""

from __future__ import annotations

from ..profiling import (
    HISTOGRAM_LABELS,
    average_distance_metric,
    interval_percentages,
    stride_efficiency_vectors,
)
from ..workloads import TABLE_4_1_NAMES
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "fig-4.3"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("profile",)


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="% of M(S)average coordinates per distance interval (n=5)",
        headers=["benchmark"] + HISTOGRAM_LABELS,
    )
    for name in TABLE_4_1_NAMES:
        vectors = stride_efficiency_vectors(context.training_profiles(name))
        metric = average_distance_metric(vectors)
        table.add_row(name, *interval_percentages(metric))
    table.notes.append("instructions common to all 5 runs only (paper Section 4)")
    return table
