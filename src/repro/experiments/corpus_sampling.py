"""Extension — profile fidelity under record sampling, on a generated corpus.

The paper's phase 2 profiles every retired instruction.  Real profilers
rarely can: they sample.  This study measures what classification
fidelity survives when the profiler keeps only every k-th dynamic record
(:func:`~repro.profiling.collector.collect_profile` ``sample_every``),
sweeping k over a seeded slice of the generated mini-C corpus
(:mod:`repro.workloads.corpus`) rather than the 13 paper workloads — the
corpus gives a controlled idiom mix and as many programs as the sweep
needs.

Per sampling rate k, aggregated over the corpus slice:

* **records kept** — dynamic records surviving the sampler, relative to
  the full profile;
* **classifier agreement** — candidate instructions assigned the *same*
  directive (stride / last-value / none) by the sampled profile as by
  the full profile, under the paper's 90% threshold policy;
* **M(V)max / M(S)max** — the Section 4 max-distance metrics between
  the full and sampled images' accuracy and stride-efficiency vectors
  (0 = the sampled profile tells the same story);
* **end ILP** — the abstract machine's ILP increase over no value
  prediction when phase 3 is driven by the sampled profile.

Expected shape: k=1 matches the full profile exactly (the byte-identity
the ``profile-sampled`` oracle pair enforces), and fidelity degrades
gracefully — agreement stays high well past k=10 because the corpus
idioms are stationary, while M(V)max grows as rarely executed
instructions lose their samples.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..annotate import AnnotationPolicy, plan_directives
from ..annotate.annotator import annotate_program
from ..core import PredictionEngine, ProfileClassification
from ..ilp import ilp_increase, measure_ilp_many
from ..predictors import StridePredictor
from ..profiling import collect_profile, merge_profiles
from ..profiling.metrics import (
    accuracy_vectors,
    max_distance_metric,
    stride_efficiency_vectors,
)
from ..workloads.corpus import generate_corpus
from .context import TABLE_ENTRIES, TABLE_WAYS, ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "corpus-sampling"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).  This
#: study is self-contained: its corpus programs are not registry
#: workloads, so no shared cells apply.
CELLS = ()

#: Sampling rates swept (k=1 is the full-profile control).
SAMPLE_RATES = (1, 2, 5, 10, 25, 50)

#: The corpus slice: seed pins the programs, count sizes the study.
CORPUS_SEED = 1997
CORPUS_COUNT = 8

_POLICY_THRESHOLD = 90.0


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _metric_mean(metric_of, images) -> float:
    """Mean coordinate of a Section 4 distance metric, 0 if no overlap."""
    vectors = metric_of(images)
    if not vectors[0]:
        return 0.0
    return _mean(max_distance_metric(vectors))


def run(context: ExperimentContext) -> ExperimentTable:
    policy = AnnotationPolicy(
        accuracy_threshold=_POLICY_THRESHOLD,
        stride_threshold=context.stride_threshold,
    )
    workloads = generate_corpus(CORPUS_SEED, CORPUS_COUNT)
    per_rate: Dict[int, Dict[str, List[float]]] = {
        rate: {"kept": [], "agree": [], "mv": [], "ms": [], "ilp": []}
        for rate in SAMPLE_RATES
    }
    for workload in workloads:
        program = workload.compile()
        training_sets = workload.training_inputs(
            count=context.training_runs, scale=context.scale
        )
        merged: Dict[int, object] = {}
        for rate in SAMPLE_RATES:
            merged[rate] = merge_profiles(
                [
                    collect_profile(
                        program,
                        inputs,
                        run_label=f"train-{index}",
                        sample_every=rate,
                        store=context.traces,
                    )
                    for index, inputs in enumerate(training_sets)
                ]
            )
        full = merged[1]
        full_records = sum(
            profile.executions for profile in full.instructions.values()
        )
        full_plan = plan_directives(program, full, policy)
        engines: Dict[str, Optional[PredictionEngine]] = {"novp": None}
        for rate in SAMPLE_RATES:
            image = merged[rate]
            kept = sum(
                profile.executions for profile in image.instructions.values()
            )
            slots = per_rate[rate]
            slots["kept"].append(
                100.0 * kept / full_records if full_records else 0.0
            )
            plan = plan_directives(program, image, policy)
            if full_plan:
                agree = sum(
                    1
                    for address, directive in full_plan.items()
                    if plan.get(address) == directive
                )
                slots["agree"].append(100.0 * agree / len(full_plan))
            slots["mv"].append(_metric_mean(accuracy_vectors, [full, image]))
            slots["ms"].append(
                _metric_mean(stride_efficiency_vectors, [full, image])
            )
            annotated = annotate_program(program, image, policy)
            engines[f"k{rate}"] = PredictionEngine(
                annotated,
                predictor=StridePredictor(TABLE_ENTRIES, TABLE_WAYS),
                scheme=ProfileClassification(annotated),
            )
        results = measure_ilp_many(
            program, workload.test_inputs(scale=context.scale), engines
        )
        baseline = results["novp"]
        for rate in SAMPLE_RATES:
            per_rate[rate]["ilp"].append(
                ilp_increase(results[f"k{rate}"], baseline)
            )
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="Classification fidelity vs profile sampling rate "
        f"(corpus seed {CORPUS_SEED}, {CORPUS_COUNT} programs)",
        headers=[
            "sample every",
            "records%",
            "agreement%",
            "M(V)max",
            "M(S)max",
            "ILP gain%",
        ],
    )
    for rate in SAMPLE_RATES:
        slots = per_rate[rate]
        table.add_row(
            f"k={rate}",
            _mean(slots["kept"]),
            _mean(slots["agree"]),
            _mean(slots["mv"]),
            _mean(slots["ms"]),
            _mean(slots["ilp"]),
        )
    table.notes.append(
        f"threshold {_POLICY_THRESHOLD:g}%; metrics vs the k=1 profile over "
        "common instructions; ILP on the abstract machine "
        f"({TABLE_ENTRIES}-entry {TABLE_WAYS}-way stride table)"
    )
    return table
