"""Figure 2.3 — the spread of instructions by stride efficiency ratio.

Paper: per benchmark (the integer suite plus 107.mgrid), the percentage
of prediction-table instructions whose stride efficiency ratio — the
share of their correct predictions that used a non-zero stride — falls in
each ten-point interval.

Expected shape: strongly bimodal — a large subset of instructions that
always reuse their last value (ratio near 0) and a small subset with
near-100% stride efficiency.  This is the observation motivating the
hybrid two-table predictor.
"""

from __future__ import annotations

from ..profiling import HISTOGRAM_LABELS, interval_percentages
from ..workloads import TABLE_4_1_NAMES
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "fig-2.3"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("profile",)


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="% of instructions per stride-efficiency-ratio interval",
        headers=["benchmark"] + HISTOGRAM_LABELS,
    )
    for name in TABLE_4_1_NAMES:
        image = context.merged_profile(name)
        ratios = [
            profile.stride_efficiency
            for profile in image.instructions.values()
            if profile.correct > 0
        ]
        table.add_row(name, *interval_percentages(ratios))
    table.notes.append(
        "instructions with at least one correct prediction, merged "
        "training profile"
    )
    return table
