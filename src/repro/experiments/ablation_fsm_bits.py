"""Ablation — saturating-counter width of the hardware classifier.

The paper fixes "a set of saturated counters" without exploring widths.
This ablation sweeps 1/2/3-bit counters (take threshold at the counter
midpoint) and measures both classification accuracies of Figures 5.1/5.2
for the hardware scheme, averaged over the Table 4.1 benchmarks.

Expected shape: *narrow* counters suppress more mispredictions — they
drop to don't-take after a single miss — while wider counters' hysteresis
protects the kept-correct side of the trade-off.
"""

from __future__ import annotations

from typing import Dict

from ..core import HardwareClassification, PredictionEngine, ProbeScheme, simulate_prediction_many
from ..predictors import StridePredictor
from ..workloads import TABLE_4_1_NAMES
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "ablation-fsm-bits"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ()

#: (bits, initial state, take threshold).
VARIANTS = ((1, 0, 1), (2, 1, 2), (3, 3, 4))


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="FSM classifier width: classification accuracy "
        "(avg over Table 4.1 benchmarks)",
        headers=["counter", "mispredictions classified [%]",
                 "correct classified [%]"],
    )
    sums = {bits: [0.0, 0.0] for bits, _, _ in VARIANTS}
    for name in TABLE_4_1_NAMES:
        program = context.program(name)
        engines: Dict[str, PredictionEngine] = {
            f"fsm{bits}": PredictionEngine(
                program,
                predictor=StridePredictor(),
                scheme=ProbeScheme(
                    HardwareClassification(
                        bits=bits, initial=initial, take_threshold=threshold
                    )
                ),
            )
            for bits, initial, threshold in VARIANTS
        }
        stats = simulate_prediction_many(
            program, context.test_inputs(name), engines, store=context.traces
        )
        for bits, _, _ in VARIANTS:
            sums[bits][0] += stats[f"fsm{bits}"].misprediction_classification_accuracy
            sums[bits][1] += stats[f"fsm{bits}"].correct_classification_accuracy
    count = len(TABLE_4_1_NAMES)
    for bits, _, _ in VARIANTS:
        table.add_row(f"{bits}-bit", sums[bits][0] / count, sums[bits][1] / count)
    return table
