"""Ablation — predictor families beyond the paper's two schemes.

The paper evaluates last-value and stride predictors.  The surrounding
literature (the authors' TRs and Sazeides & Smith, 1997) adds two more
families; this ablation places them on the same unbounded-table footing:

* ``last-value`` — repeat the previous value;
* ``stride`` — last value + most recent delta (the paper's scheme);
* ``two-delta`` — stride committed only after two equal deltas;
* ``fcm`` — order-2 finite context method over value history.

Reported: overall prediction accuracy (correct / attempts) per benchmark.

Expected shape: stride ≥ last-value everywhere; two-delta trades a little
coverage on fast-changing strides for resilience to noise (close to
stride); FCM wins where values repeat in non-arithmetic patterns and
loses early (cold contexts) elsewhere.
"""

from __future__ import annotations

from ..core import PredictionEngine, simulate_prediction_many
from ..predictors import (
    FcmPredictor,
    LastValuePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
)
from ..workloads import TABLE_4_1_NAMES
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "ablation-predictors"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ()

_FAMILIES = ("last-value", "stride", "two-delta", "fcm")


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="Prediction accuracy [%] by predictor family (unbounded tables)",
        headers=["benchmark"] + list(_FAMILIES),
    )
    for name in TABLE_4_1_NAMES:
        program = context.program(name)
        engines = {
            "last-value": PredictionEngine(program, LastValuePredictor()),
            "stride": PredictionEngine(program, StridePredictor()),
            "two-delta": PredictionEngine(program, TwoDeltaStridePredictor()),
            "fcm": PredictionEngine(program, FcmPredictor(order=2)),
        }
        stats = simulate_prediction_many(
            program, context.test_inputs(name), engines, store=context.traces
        )
        table.add_row(
            name,
            *[
                (
                    100.0 * stats[family].would_correct / stats[family].executions
                    if stats[family].executions
                    else 0.0
                )
                for family in _FAMILIES
            ],
        )
    table.notes.append(
        "accuracy normalized by candidate executions so FCM's slower warm-up "
        "counts against it, as in limit studies"
    )
    return table
