"""Command-line experiment runner.

Usage::

    repro-experiments all                 # every table and figure
    repro-experiments table-5.2 fig-5.3   # a subset
    repro-experiments all --scale 0.3     # quicker, smaller runs
    repro-experiments list                # what exists

Each experiment prints a plain-text table mirroring the paper's table or
figure, with a note on provenance.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

from . import (
    ablation_fsm_bits,
    ablation_hybrid,
    ablation_ilp_machine,
    ablation_predictors,
    ablation_stride_threshold,
    ablation_table_geometry,
    fig_2_2,
    fig_2_3,
    fig_4_1,
    fig_4_2,
    fig_4_3,
    fig_5_1,
    fig_5_2,
    characterization,
    extension_critical_path,
    fig_5_3,
    fig_5_4,
    table_2_1,
    table_5_1,
    table_5_2,
)
from .context import ExperimentContext
from .tables import ExperimentTable

_MODULES = (
    table_2_1,
    fig_2_2,
    fig_2_3,
    fig_4_1,
    fig_4_2,
    fig_4_3,
    fig_5_1,
    fig_5_2,
    table_5_1,
    fig_5_3,
    fig_5_4,
    table_5_2,
    ablation_hybrid,
    ablation_table_geometry,
    ablation_fsm_bits,
    ablation_stride_threshold,
    ablation_predictors,
    ablation_ilp_machine,
    extension_critical_path,
    characterization,
)

EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentTable]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}


def run_experiments(
    names: List[str],
    context: ExperimentContext,
    stream=None,
    output_dir=None,
    chart: bool = False,
) -> List[ExperimentTable]:
    """Run the named experiments, printing each table as it completes.

    With ``output_dir``, each table is also written there as
    ``<id>.txt`` (formatted) and ``<id>.tsv`` (machine-readable, see
    :meth:`ExperimentTable.to_tsv`).  With ``chart=True``, an ASCII chart
    of the table follows it on the stream.
    """
    stream = stream or sys.stdout
    if output_dir is not None:
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
    results = []
    for name in names:
        if name not in EXPERIMENTS:
            known = ", ".join(EXPERIMENTS)
            raise SystemExit(f"unknown experiment {name!r}; known: {known}")
        started = time.time()
        table = EXPERIMENTS[name](context)
        elapsed = time.time() - started
        print(table.format(), file=stream)
        if chart:
            from ..viz import chart_table

            try:
                print(chart_table(table), file=stream)
            except ValueError:
                pass
        print(f"[{name} finished in {elapsed:.1f}s]\n", file=stream)
        if output_dir is not None:
            stem = name.replace(".", "_")
            (output_dir / f"{stem}.txt").write_text(
                table.format() + "\n", encoding="utf-8"
            )
            (output_dir / f"{stem}.tsv").write_text(
                table.to_tsv(), encoding="utf-8"
            )
        results.append(table)
    return results


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Gabbay & Mendelson, "
        "MICRO-30 1997.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (e.g. table-5.2), 'all', 'list', or 'report' "
        "(render saved --output-dir results as markdown)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload input scale (default 1.0; smaller = faster)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for persisted profile images (default: no disk cache)",
    )
    parser.add_argument(
        "--training-runs",
        type=int,
        default=5,
        help="number of training input sets to profile (default 5)",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also write each result as <id>.txt and <id>.tsv here",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="follow each table with an ASCII chart",
    )
    arguments = parser.parse_args(argv)

    names = list(arguments.experiments)
    if names == ["list"]:
        for identifier in EXPERIMENTS:
            print(identifier)
        return 0
    if names == ["report"]:
        from .report import build_markdown_report

        if arguments.output_dir is None:
            raise SystemExit("report requires --output-dir with saved .tsv results")
        print(build_markdown_report(arguments.output_dir))
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)

    context = ExperimentContext(
        scale=arguments.scale,
        training_runs=arguments.training_runs,
        cache_dir=arguments.cache_dir,
    )
    run_experiments(
        names, context, output_dir=arguments.output_dir, chart=arguments.chart
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
