"""Command-line experiment runner.

Usage (both spellings share this implementation)::

    python -m repro experiments all               # every table and figure
    python -m repro experiments table-5.2 fig-5.3 --jobs 4
    python -m repro experiments all --scale 0.3   # quicker, smaller runs
    python -m repro experiments list              # what exists
    repro-experiments all                         # back-compat alias

Each experiment prints a plain-text table mirroring the paper's table or
figure, with a note on provenance.

The suite runs on the parallel experiment engine (:mod:`repro.runner`):
``--jobs N`` fans independent cells — compile, per-run profiling,
annotation, per-benchmark simulation grids, whole experiments — across a
process pool, and every expensive artifact is persisted in a
content-addressed cache (``--cache-dir``, default ``~/.cache/repro``) so
a repeated run is nearly free.  ``--no-cache`` opts out.
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..telemetry import get_registry

from . import (
    ablation_fsm_bits,
    ablation_hybrid,
    ablation_ilp_machine,
    ablation_predictors,
    ablation_stride_threshold,
    ablation_table_geometry,
    fig_2_2,
    fig_2_3,
    fig_4_1,
    fig_4_2,
    fig_4_3,
    fig_5_1,
    fig_5_2,
    characterization,
    extension_critical_path,
    fig_5_3,
    fig_5_4,
    table_2_1,
    table_5_1,
    table_5_2,
)
from ..runner import build_experiment_graph, default_cache_dir
from ..runner.executor import execute_graph
from .context import ExperimentContext
from .tables import ExperimentTable

_MODULES = (
    table_2_1,
    fig_2_2,
    fig_2_3,
    fig_4_1,
    fig_4_2,
    fig_4_3,
    fig_5_1,
    fig_5_2,
    table_5_1,
    fig_5_3,
    fig_5_4,
    table_5_2,
    ablation_hybrid,
    ablation_table_geometry,
    ablation_fsm_bits,
    ablation_stride_threshold,
    ablation_predictors,
    ablation_ilp_machine,
    extension_critical_path,
    characterization,
)

#: Experiment id -> module (the engine reads ``CELLS`` declarations here).
MODULES = {module.EXPERIMENT_ID: module for module in _MODULES}

EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentTable]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}


def run_experiments(
    names: List[str],
    context: ExperimentContext,
    stream=None,
    output_dir=None,
    chart: bool = False,
    jobs: int = 1,
    progress=None,
) -> List[ExperimentTable]:
    """Run the named experiments, printing each table as it completes.

    With ``jobs > 1`` the underlying cells run on a process pool; the
    tables are still emitted in the requested order and are byte-for-byte
    identical to a serial run.  With ``output_dir``, each table is also
    written there as ``<id>.txt`` (formatted) and ``<id>.tsv``
    (machine-readable, see :meth:`ExperimentTable.to_tsv`).  With
    ``chart=True``, an ASCII chart of the table follows it on the stream.
    ``progress`` may be a stream for per-job progress/timing lines.
    """
    stream = stream or sys.stdout
    if output_dir is not None:
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
    started = time.time()
    telemetry = get_registry()
    with telemetry.span("suite"):
        with telemetry.span("build"):
            graph = build_experiment_graph(names, context)
        with telemetry.span("execute"):
            outcome = execute_graph(graph, context, jobs=jobs, progress=progress)
        results = []
        with telemetry.span("emit"):
            for name in names:
                table = outcome.tables[name]
                record = outcome.record_for(f"experiment:{name}")
                print(table.format(), file=stream)
                if chart:
                    from ..viz import chart_table

                    try:
                        print(chart_table(table), file=stream)
                    except ValueError:
                        pass
                suffix = " (cached)" if record is not None and record.cached else ""
                seconds = record.seconds if record is not None else 0.0
                print(f"[{name} finished in {seconds:.1f}s{suffix}]\n", file=stream)
                if output_dir is not None:
                    stem = name.replace(".", "_")
                    (output_dir / f"{stem}.txt").write_text(
                        table.format() + "\n", encoding="utf-8"
                    )
                    (output_dir / f"{stem}.tsv").write_text(
                        table.to_tsv(), encoding="utf-8"
                    )
                results.append(table)
    if telemetry.enabled:
        telemetry.counter("experiments.tables").add(len(results))
        telemetry.gauge("experiments.wall_seconds").set(time.time() - started)
    if progress is not None:
        print(
            f"[suite: {len(graph)} jobs, {outcome.cached_jobs} cached, "
            f"{outcome.computed_seconds:.1f}s job time, "
            f"{time.time() - started:.1f}s wall]",
            file=progress,
        )
    return results


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the experiment-runner options on ``parser``.

    Shared by the ``repro-experiments`` alias and the ``python -m repro
    experiments`` subcommand so both spellings stay in lockstep.
    """
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (e.g. table-5.2), 'all', 'list', or 'report' "
        "(render saved --output-dir results as markdown)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload input scale (default 1.0; smaller = faster)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for independent cells (default 1 = serial; "
        "0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=str(default_cache_dir()),
        help="content-addressed artifact cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk artifact cache for this run",
    )
    parser.add_argument(
        "--training-runs",
        type=int,
        default=5,
        help="number of training input sets to profile (default 5)",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also write each result as <id>.txt and <id>.tsv here",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="follow each table with an ASCII chart",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job progress and timing lines",
    )


def run_from_arguments(arguments: argparse.Namespace) -> int:
    """Dispatch a parsed namespace (see :func:`add_arguments`)."""
    names = list(arguments.experiments)
    if names == ["list"]:
        for identifier in EXPERIMENTS:
            print(identifier)
        return 0
    if names == ["report"]:
        from .report import build_markdown_report

        if arguments.output_dir is None:
            raise SystemExit("report requires --output-dir with saved .tsv results")
        print(build_markdown_report(arguments.output_dir))
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)

    context = ExperimentContext(
        scale=arguments.scale,
        training_runs=arguments.training_runs,
        cache_dir=None if arguments.no_cache else arguments.cache_dir,
    )
    run_experiments(
        names,
        context,
        output_dir=arguments.output_dir,
        chart=arguments.chart,
        jobs=arguments.jobs,
        progress=None if arguments.quiet else sys.stderr,
    )
    return 0


def build_parser(prog: str = "repro-experiments") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Reproduce the tables and figures of Gabbay & Mendelson, "
        "MICRO-30 1997.",
    )
    add_arguments(parser)
    return parser


_DEPRECATION_WARNED = False


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the deprecated ``repro-experiments`` console script.

    Warns exactly once per process; ``python -m repro experiments`` is the
    supported spelling and dispatches straight to
    :func:`run_from_arguments` without passing through here.
    """
    global _DEPRECATION_WARNED
    if not _DEPRECATION_WARNED:
        _DEPRECATION_WARNED = True
        warnings.warn(
            "the `repro-experiments` console script is deprecated and will be "
            "removed two PRs after the telemetry release; use "
            "`python -m repro experiments` instead",
            DeprecationWarning,
            stacklevel=2,
        )
    return run_from_arguments(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
