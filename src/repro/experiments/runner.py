"""Command-line experiment runner.

Usage::

    python -m repro experiments all               # every table and figure
    python -m repro experiments table-5.2 fig-5.3 --jobs 4
    python -m repro experiments all --scale 0.3   # quicker, smaller runs
    python -m repro experiments list              # what exists

Each experiment prints a plain-text table mirroring the paper's table or
figure, with a note on provenance.

The suite runs on the parallel experiment engine (:mod:`repro.runner`):
``--jobs N`` fans independent cells — compile, per-run profiling,
annotation, per-benchmark simulation grids, whole experiments — across a
process pool, and every expensive artifact is persisted in a
content-addressed cache (``--cache-dir``, default ``~/.cache/repro``) so
a repeated run is nearly free.  ``--no-cache`` opts out.

Long runs are fault tolerant: ``--retries N`` resubmits failed or
timed-out cells with deterministic backoff, ``--job-timeout S`` bounds
each pool attempt (stuck workers are killed and the pool rebuilt), and a
run that still loses cells degrades gracefully — completed tables are
emitted, the rest appear in a structured run report (``--report-json``)
and the exit status is non-zero.  ``--fault-plan`` injects deterministic
faults to exercise exactly these paths (:mod:`repro.runner.faults`).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..telemetry import get_registry

from . import (
    ablation_fsm_bits,
    ablation_hybrid,
    ablation_ilp_machine,
    ablation_predictors,
    ablation_stride_threshold,
    ablation_table_geometry,
    fig_2_2,
    fig_2_3,
    fig_4_1,
    fig_4_2,
    fig_4_3,
    fig_5_1,
    fig_5_2,
    characterization,
    corpus_sampling,
    extension_critical_path,
    fig_5_3,
    fig_5_4,
    learned_classifier,
    table_2_1,
    table_5_1,
    table_5_2,
)
from ..runner import build_experiment_graph, default_cache_dir, faults
from ..runner.executor import execute_graph
from ..runner.retry import RetryPolicy, RunFailure
from .context import ExperimentContext
from .tables import ExperimentTable

_MODULES = (
    table_2_1,
    fig_2_2,
    fig_2_3,
    fig_4_1,
    fig_4_2,
    fig_4_3,
    fig_5_1,
    fig_5_2,
    table_5_1,
    fig_5_3,
    fig_5_4,
    table_5_2,
    ablation_hybrid,
    ablation_table_geometry,
    ablation_fsm_bits,
    ablation_stride_threshold,
    ablation_predictors,
    ablation_ilp_machine,
    extension_critical_path,
    characterization,
    corpus_sampling,
    learned_classifier,
)

#: Experiment id -> module (the engine reads ``CELLS`` declarations here).
MODULES = {module.EXPERIMENT_ID: module for module in _MODULES}

EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentTable]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}


def run_experiments(
    names: List[str],
    context: ExperimentContext,
    stream=None,
    output_dir=None,
    chart: bool = False,
    jobs: int = 1,
    progress=None,
    retry: Optional[RetryPolicy] = None,
    fault_plan=None,
    report_path=None,
) -> List[ExperimentTable]:
    """Run the named experiments, printing each table as it completes.

    With ``jobs > 1`` the underlying cells run on a process pool; the
    tables are still emitted in the requested order and are byte-for-byte
    identical to a serial run.  With ``output_dir``, each table is also
    written there as ``<id>.txt`` (formatted) and ``<id>.tsv``
    (machine-readable, see :meth:`ExperimentTable.to_tsv`).  With
    ``chart=True``, an ASCII chart of the table follows it on the stream.
    ``progress`` may be a stream for per-job progress/timing lines.

    ``retry`` is the :class:`~repro.runner.retry.RetryPolicy` for failed
    or timed-out cells and ``fault_plan`` an optional deterministic
    fault-injection spec (see :func:`repro.runner.faults.resolve_plan`).
    The run's :class:`~repro.runner.retry.RunReport` is written to
    ``report_path`` as JSON when given.  A degraded run — any cell out
    of retries — still emits every table that completed, writes the
    report, prints its summary, and then raises
    :class:`~repro.runner.retry.RunFailure` carrying the report.
    """
    stream = stream or sys.stdout
    if output_dir is not None:
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
    started = time.time()
    telemetry = get_registry()
    with telemetry.span("suite"):
        with telemetry.span("build"):
            graph = build_experiment_graph(names, context)
        with telemetry.span("execute"):
            outcome = execute_graph(
                graph,
                context,
                jobs=jobs,
                progress=progress,
                retry=retry,
                fault_plan=fault_plan,
            )
        report = outcome.report
        results = []
        with telemetry.span("emit"):
            for name in names:
                table = outcome.tables.get(name)
                if table is None:
                    # Failed or skipped — accounted for in the report.
                    continue
                record = outcome.record_for(f"experiment:{name}")
                print(table.format(), file=stream)
                if chart:
                    from ..viz import chart_table

                    try:
                        print(chart_table(table), file=stream)
                    except ValueError:
                        pass
                suffix = " (cached)" if record is not None and record.cached else ""
                seconds = record.seconds if record is not None else 0.0
                print(f"[{name} finished in {seconds:.1f}s{suffix}]\n", file=stream)
                if output_dir is not None:
                    stem = name.replace(".", "_")
                    (output_dir / f"{stem}.txt").write_text(
                        table.format() + "\n", encoding="utf-8"
                    )
                    (output_dir / f"{stem}.tsv").write_text(
                        table.to_tsv(), encoding="utf-8"
                    )
                results.append(table)
    if telemetry.enabled:
        telemetry.counter("experiments.tables").add(len(results))
        telemetry.gauge("experiments.wall_seconds").set(time.time() - started)
    if report_path is not None and report is not None:
        Path(report_path).write_text(report.to_json(), encoding="utf-8")
    if progress is not None:
        recovery = (
            f", {report.retries} retries, {report.timeouts} timeouts, "
            f"{report.pool_rebuilds} pool rebuilds"
            if report is not None
            and (report.retries or report.timeouts or report.pool_rebuilds)
            else ""
        )
        print(
            f"[suite: {len(graph)} jobs, {outcome.cached_jobs} cached, "
            f"{outcome.computed_seconds:.1f}s job time, "
            f"{time.time() - started:.1f}s wall{recovery}]",
            file=progress,
        )
    if report is not None and not report.ok:
        print(report.format(), file=progress if progress is not None else sys.stderr)
        raise RunFailure(report, tables=results)
    return results


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the experiment-runner options on ``parser``.

    Shared with the ``python -m repro experiments`` subcommand, which
    installs the same options on its own subparser.
    """
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (e.g. table-5.2), 'all', 'list', or 'report' "
        "(render saved --output-dir results as markdown)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload input scale (default 1.0; smaller = faster)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for independent cells (default 1 = serial; "
        "0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=str(default_cache_dir()),
        help="content-addressed artifact cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk artifact cache for this run",
    )
    parser.add_argument(
        "--training-runs",
        type=int,
        default=5,
        help="number of training input sets to profile (default 5)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per failed/timed-out cell (default 0; retries "
        "back off exponentially with deterministic per-job jitter)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per pool attempt; a timed-out attempt is "
        "retried and the stuck worker pool rebuilt (default: unbounded)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults for testing recovery: a named plan "
        "(e.g. ci-smoke), inline JSON, or a path/@path to a JSON plan",
    )
    parser.add_argument(
        "--report-json",
        default=None,
        metavar="PATH",
        help="write the structured RunReport (per-job status, attempts, "
        "causes) here as JSON",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also write each result as <id>.txt and <id>.tsv here",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="follow each table with an ASCII chart",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job progress and timing lines",
    )


def run_from_arguments(arguments: argparse.Namespace) -> int:
    """Dispatch a parsed namespace (see :func:`add_arguments`)."""
    names = list(arguments.experiments)
    if names == ["list"]:
        for identifier in EXPERIMENTS:
            print(identifier)
        return 0
    if names == ["report"]:
        from .report import build_markdown_report

        if arguments.output_dir is None:
            raise SystemExit("report requires --output-dir with saved .tsv results")
        print(build_markdown_report(arguments.output_dir))
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)

    fault_plan = arguments.fault_plan
    if fault_plan is not None and fault_plan not in faults.NAMED_PLANS:
        # Named plans are generated against the job graph later; every
        # other spelling can be validated before any work starts.
        try:
            fault_plan = faults.resolve_plan(fault_plan)
        except (TypeError, ValueError, OSError) as error:
            print(f"invalid --fault-plan: {error}", file=sys.stderr)
            return 2

    context = ExperimentContext(
        scale=arguments.scale,
        training_runs=arguments.training_runs,
        cache_dir=None if arguments.no_cache else arguments.cache_dir,
    )
    try:
        run_experiments(
            names,
            context,
            output_dir=arguments.output_dir,
            chart=arguments.chart,
            jobs=arguments.jobs,
            progress=None if arguments.quiet else sys.stderr,
            retry=RetryPolicy.from_cli(
                retries=arguments.retries, job_timeout=arguments.job_timeout
            ),
            fault_plan=fault_plan,
            report_path=arguments.report_json,
        )
    except RunFailure as failure:
        # The report (already printed by run_experiments) is the primary
        # output of a degraded run; no traceback.
        print(f"run failed: {failure}", file=sys.stderr)
        return 1
    return 0


def build_parser(prog: str = "python -m repro experiments") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Reproduce the tables and figures of Gabbay & Mendelson, "
        "MICRO-30 1997.",
    )
    add_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Programmatic entry point (``python -m repro experiments`` dispatches
    straight to :func:`run_from_arguments`; this wrapper parses ``argv``)."""
    return run_from_arguments(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
