"""Figure 5.2 — % of correct predictions classified correctly.

Paper: the other side of the classification trade-off — of the stride
predictor's would-be *correct* predictions, how many does each mechanism
actually take?

Expected shape: the hardware FSM is slightly better at keeping correct
predictions (it only loses a few while counters warm up); the profile
scheme improves as the threshold loosens.
"""

from __future__ import annotations

from ..workloads import TABLE_4_1_NAMES
from .context import THRESHOLDS, ExperimentContext
from .shared import FSM_LABEL, classification_accuracy_stats, threshold_label
from .tables import ExperimentTable

EXPERIMENT_ID = "fig-5.2"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("classify",)

_HEADERS = ["benchmark", "FSM"] + [f"Prof th={t:g}%" for t in THRESHOLDS]


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="% of correct predictions classified correctly",
        headers=_HEADERS,
    )
    sums = [0.0] * (1 + len(THRESHOLDS))
    for name in TABLE_4_1_NAMES:
        stats = classification_accuracy_stats(context, name)
        values = [stats[FSM_LABEL].correct_classification_accuracy]
        values += [
            stats[threshold_label(t)].correct_classification_accuracy
            for t in THRESHOLDS
        ]
        sums = [total + value for total, value in zip(sums, values)]
        table.add_row(name, *values)
    table.add_row("average", *[total / len(TABLE_4_1_NAMES) for total in sums])
    table.notes.append("unbounded stride predictor; take/avoid decisions only")
    return table
