"""Table 5.2 — ILP increase under different classification mechanisms.

Paper: on the abstract machine (40-entry window, unlimited execution
units, perfect branch prediction, 1-cycle value-misprediction penalty),
the percent ILP increase of value prediction with saturating counters
(VP+SC) and with profile classification at thresholds 90..50 (VP+Prof),
all relative to no value prediction.

Expected shape: VP+Prof can be tuned (by threshold) to match or beat
VP+SC in most benchmarks; within the profile columns, ILP mostly grows as
the threshold drops from 90 to 50 (extra correct predictions outweigh the
extra mispredictions); m88ksim shows by far the largest gain.
"""

from __future__ import annotations

from ..ilp import ilp_increase
from ..workloads import TABLE_4_1_NAMES
from .context import THRESHOLDS, ExperimentContext
from .shared import FSM_LABEL, ilp_results, threshold_label
from .tables import ExperimentTable

EXPERIMENT_ID = "table-5.2"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("ilp",)

_HEADERS = ["benchmark", "VP+SC"] + [f"VP+Prof {t:g}%" for t in THRESHOLDS]


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="ILP increase [%] relative to no value prediction",
        headers=_HEADERS,
    )
    for name in TABLE_4_1_NAMES:
        results = ilp_results(context, name)
        baseline = results["novp"]
        row = [ilp_increase(results[FSM_LABEL], baseline)]
        row += [
            ilp_increase(results[threshold_label(t)], baseline) for t in THRESHOLDS
        ]
        table.add_row(name, *row)
    table.notes.append(
        "40-entry window, unlimited FUs, perfect branch prediction, "
        "1-cycle misprediction penalty"
    )
    return table
