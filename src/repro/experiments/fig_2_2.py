"""Figure 2.2 — the spread of instructions by prediction accuracy.

Paper: per benchmark, the percentage of (register-writing) instructions
whose stride-predictor accuracy falls in each of the ten intervals [0,10],
(10,20], ..., (90,100].  Floating-point benchmarks appear twice — the
initialization phase (#1, reading input data) and the computation phase
(#2) — matching the paper's presentation.

Expected shape: bimodal — roughly 30% of instructions above 90% accuracy
and roughly 40% below 10%, with little mass in the middle.  The FP
initialization phases are tiny input-reading loops, so their few static
instructions sit almost entirely in the extreme intervals; the
computation phases show the fuller spread.
"""

from __future__ import annotations

from ..profiling import (
    HISTOGRAM_LABELS,
    collect_phase_profiles,
    interval_percentages,
)
from ..workloads import all_workloads
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "fig-2.2"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("profile",)


def _accuracies(image) -> list:
    return [
        profile.accuracy
        for profile in image.instructions.values()
        if profile.attempts > 0
    ]


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="% of instructions per prediction-accuracy interval",
        headers=["benchmark"] + HISTOGRAM_LABELS,
    )
    for workload in all_workloads():
        if workload.suite == "fp":
            # Phase-split presentation, as in the paper's SPEC-FP panel.
            images = collect_phase_profiles(
                workload.compile(), workload.test_inputs(scale=context.scale)
            )
            for phase in sorted(images):
                if phase == 0:
                    continue
                table.add_row(
                    f"{workload.name}#{phase}",
                    *interval_percentages(_accuracies(images[phase])),
                )
        else:
            image = context.merged_profile(workload.name)
            table.add_row(workload.name, *interval_percentages(_accuracies(image)))
    table.notes.append(
        "int benchmarks: merged training profile; FP benchmarks: test run "
        "split into #1 init / #2 computation phases (unbounded stride "
        "predictor)"
    )
    return table
