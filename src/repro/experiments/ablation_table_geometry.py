"""Ablation — prediction-table geometry vs classification benefit.

The paper claims the profile scheme's advantage is "most observable when
the pressure on the prediction table ... is high".  This ablation sweeps
the stride table size (2-way throughout) and compares taken-correct
predictions under the hardware and the profile (threshold 70) schemes.

Expected shape: at tiny tables the profile scheme's admission control
wins clearly; as capacity grows past the working set the two converge.
"""

from __future__ import annotations

from typing import Dict

from ..core import (
    HardwareClassification,
    PredictionEngine,
    ProfileClassification,
    simulate_prediction_many,
)
from ..predictors import StridePredictor
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "ablation-table-geometry"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("annotate",)

THRESHOLD = 70.0
SIZES = (64, 128, 256, 512, 1024)

#: The large-working-set benchmarks where pressure matters.
BENCHMARKS = ("126.gcc", "147.vortex", "099.go")


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="Taken-correct predictions by table size (2-way): "
        "SC vs Prof th=70",
        headers=["benchmark", "scheme"] + [str(size) for size in SIZES],
    )
    for name in BENCHMARKS:
        program = context.program(name)
        annotated = context.annotated(name, THRESHOLD)
        engines: Dict[str, PredictionEngine] = {}
        for size in SIZES:
            engines[f"sc-{size}"] = PredictionEngine(
                program,
                predictor=StridePredictor(size, 2),
                scheme=HardwareClassification(),
            )
            engines[f"prof-{size}"] = PredictionEngine(
                annotated,
                predictor=StridePredictor(size, 2),
                scheme=ProfileClassification(annotated),
            )
        stats = simulate_prediction_many(
            program, context.test_inputs(name), engines, store=context.traces
        )
        table.add_row(
            name, "SC", *[stats[f"sc-{size}"].taken_correct for size in SIZES]
        )
        table.add_row(
            name, "Prof", *[stats[f"prof-{size}"].taken_correct for size in SIZES]
        )
    return table
