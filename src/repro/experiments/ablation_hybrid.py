"""Ablation — the hybrid (split stride + last-value) predictor.

The paper argues (Section 3.1, point 4) that because only a small subset
of instructions exhibits stride patterns, a *hybrid* organization — a
small stride table plus a larger last-value table, steered by the
directives — utilizes the stride fields more efficiently than spending a
stride field on every entry.

This ablation holds total capacity at 512 entries and compares, under
profile classification (threshold 70):

* ``stride-512`` — one unified stride table (the paper's Section 5 setup);
* ``hybrid-128/384`` — 128-entry stride + 384-entry last-value tables;
* ``lv-512`` — one unified last-value table (no stride fields at all).

Expected shape: the hybrid recovers nearly all of the unified stride
table's correct predictions while giving 3/4 of the entries no stride
field; the pure last-value table loses the stride-patterned instructions.
"""

from __future__ import annotations

from typing import Dict

from ..core import PredictionEngine, ProfileClassification, simulate_prediction_many
from ..predictors import HybridPredictor, LastValuePredictor, StridePredictor
from ..workloads import TABLE_4_1_NAMES
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "ablation-hybrid"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("annotate",)

THRESHOLD = 70.0


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="Hybrid vs unified tables (profile classification, th=70): "
        "taken correct / incorrect",
        headers=[
            "benchmark",
            "stride-512 ok",
            "hybrid-128/384 ok",
            "lv-512 ok",
            "stride-512 bad",
            "hybrid-128/384 bad",
            "lv-512 bad",
        ],
    )
    for name in TABLE_4_1_NAMES:
        annotated = context.annotated(name, THRESHOLD)
        scheme = lambda: ProfileClassification(annotated)  # noqa: E731
        engines: Dict[str, PredictionEngine] = {
            "stride": PredictionEngine(
                annotated, predictor=StridePredictor(512, 2), scheme=scheme()
            ),
            "hybrid": PredictionEngine(
                annotated,
                predictor=HybridPredictor(
                    stride_entries=128, last_value_entries=384, ways=2
                ),
                scheme=scheme(),
            ),
            "lv": PredictionEngine(
                annotated, predictor=LastValuePredictor(512, 2), scheme=scheme()
            ),
        }
        stats = simulate_prediction_many(
            annotated, context.test_inputs(name), engines, store=context.traces
        )
        table.add_row(
            name,
            stats["stride"].taken_correct,
            stats["hybrid"].taken_correct,
            stats["lv"].taken_correct,
            stats["stride"].taken_incorrect,
            stats["hybrid"].taken_incorrect,
            stats["lv"].taken_incorrect,
        )
    return table
