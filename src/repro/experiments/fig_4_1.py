"""Figure 4.1 — the spread of the coordinates of M(V)max.

Paper: run each benchmark n=5 times with different inputs, view each
run's per-instruction prediction accuracies as a vector, and histogram
the coordinates of the maximum-distance metric (Equation 4.1) into
ten-point intervals.

Expected shape: most coordinates in the lowest intervals — the tendency
of instructions to be value-predictable is input-independent, so
profiling transfers across inputs.
"""

from __future__ import annotations

from ..profiling import (
    HISTOGRAM_LABELS,
    accuracy_vectors,
    interval_percentages,
    max_distance_metric,
)
from ..workloads import TABLE_4_1_NAMES
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "fig-4.1"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("profile",)


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="% of M(V)max coordinates per distance interval (n=5)",
        headers=["benchmark"] + HISTOGRAM_LABELS,
    )
    for name in TABLE_4_1_NAMES:
        vectors = accuracy_vectors(context.training_profiles(name))
        metric = max_distance_metric(vectors)
        table.add_row(name, *interval_percentages(metric))
    table.notes.append("instructions common to all 5 runs only (paper Section 4)")
    return table
