"""Ablation — sensitivity of Table 5.2 to the abstract machine parameters.

The paper fixes a 40-entry instruction window and a 1-cycle value-
misprediction penalty.  This ablation sweeps both around those choices
for profile-classified value prediction (threshold 70) on three
representative benchmarks, reporting the percent ILP increase over the
matching no-VP baseline.

Expected shape: the VP gain *grows* with window size — without value
prediction the window fills with stalled dependence chains, while
collapsed dependences keep a large window fed — and raising the penalty
erodes the gain roughly in proportion to the (classification-suppressed)
misprediction rate.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import PredictionEngine, ProfileClassification
from ..ilp import IlpConfig, ilp_increase, measure_ilp_many
from ..predictors import StridePredictor
from .context import TABLE_ENTRIES, TABLE_WAYS, ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "ablation-ilp-machine"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("annotate",)

THRESHOLD = 70.0
WINDOWS = (8, 16, 40, 128)
PENALTIES = (0, 1, 3)
BENCHMARKS = ("126.gcc", "129.compress", "134.perl")


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="ILP increase [%] of VP+Prof(70) by window size and penalty",
        headers=["benchmark", "sweep"]
        + [f"w={w}" for w in WINDOWS]
        + [f"p={p}" for p in PENALTIES],
    )
    for name in BENCHMARKS:
        annotated = context.annotated(name, THRESHOLD)
        engines: Dict[str, Optional[PredictionEngine]] = {}
        configs: Dict[str, IlpConfig] = {}

        def fresh_engine() -> PredictionEngine:
            return PredictionEngine(
                annotated,
                predictor=StridePredictor(TABLE_ENTRIES, TABLE_WAYS),
                scheme=ProfileClassification(annotated),
            )

        for window in WINDOWS:
            configs[f"base-w{window}"] = IlpConfig(window_size=window)
            configs[f"vp-w{window}"] = IlpConfig(window_size=window)
            engines[f"base-w{window}"] = None
            engines[f"vp-w{window}"] = fresh_engine()
        for penalty in PENALTIES:
            configs[f"base-p{penalty}"] = IlpConfig(misprediction_penalty=penalty)
            configs[f"vp-p{penalty}"] = IlpConfig(misprediction_penalty=penalty)
            engines[f"base-p{penalty}"] = None
            engines[f"vp-p{penalty}"] = fresh_engine()

        results = measure_ilp_many(
            annotated, context.test_inputs(name), engines, configs=configs
        )
        window_gains = [
            ilp_increase(results[f"vp-w{w}"], results[f"base-w{w}"]) for w in WINDOWS
        ]
        penalty_gains = [
            ilp_increase(results[f"vp-p{p}"], results[f"base-p{p}"])
            for p in PENALTIES
        ]
        table.add_row(name, "gain", *window_gains, *penalty_gains)
    table.notes.append(
        "window sweep uses penalty=1; penalty sweep uses window=40 "
        "(the paper's machine is w=40, p=1)"
    )
    return table
