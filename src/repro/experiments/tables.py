"""Plain-text result tables for the experiment harness."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


@dataclasses.dataclass
class ExperimentTable:
    """One reproduced table/figure: headers, rows, provenance notes."""

    experiment_id: str           # e.g. "table-2.1", "fig-5.3"
    title: str
    headers: List[str]
    rows: List[List[Cell]] = dataclasses.field(default_factory=list)
    notes: List[str] = dataclasses.field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{self.experiment_id}: row has {len(cells)} cells, "
                f"expected {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def column(self, header: str) -> List[Cell]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_map(self, key_header: str) -> Dict[Cell, List[Cell]]:
        index = self.headers.index(key_header)
        return {row[index]: row for row in self.rows}

    def format(self) -> str:
        """Render as an aligned monospace table."""
        cells = [self.headers] + [
            [_render_cell(cell) for cell in row] for row in self.rows
        ]
        widths = [
            max(len(row[column]) for row in cells)
            for column in range(len(self.headers))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(
            "  ".join(header.ljust(width) for header, width in zip(cells[0], widths))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in cells[1:]:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


    # -- serialization -----------------------------------------------------

    def to_tsv(self) -> str:
        """Serialize as tab-separated values with ``#`` metadata lines."""
        lines = [
            f"# experiment: {self.experiment_id}",
            f"# title: {self.title}",
        ]
        for note in self.notes:
            lines.append(f"# note: {note}")
        lines.append("\t".join(self.headers))
        for row in self.rows:
            lines.append("\t".join(_render_tsv_cell(cell) for cell in row))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_tsv(cls, text: str) -> "ExperimentTable":
        """Parse a table previously produced by :meth:`to_tsv`."""
        experiment_id = ""
        title = ""
        notes: List[str] = []
        headers: List[str] = []
        rows: List[List[Cell]] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("experiment:"):
                    experiment_id = body[len("experiment:"):].strip()
                elif body.startswith("title:"):
                    title = body[len("title:"):].strip()
                elif body.startswith("note:"):
                    notes.append(body[len("note:"):].strip())
                continue
            fields = line.split("\t")
            if not headers:
                headers = fields
            else:
                rows.append([_parse_tsv_cell(field) for field in fields])
        if not headers:
            raise ValueError("TSV table has no header row")
        table = cls(
            experiment_id=experiment_id, title=title, headers=headers, notes=notes
        )
        for row in rows:
            table.add_row(*row)
        return table


def _render_tsv_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return repr(cell)
    return str(cell)


def _parse_tsv_cell(text: str) -> Cell:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _render_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def percent_change(new: float, old: float) -> float:
    """Percent change of ``new`` relative to ``old`` (0 when old == 0)."""
    if old == 0:
        return 0.0
    return 100.0 * (new - old) / old
