"""Table 5.1 — allocation candidates relative to the hardware classifier.

Paper: the fraction (in percent) of potential prediction-table candidates
the profile-guided scheme admits, out of those the saturating-counter
scheme would allocate (i.e. every executed candidate instruction).

Expected shape: monotone growth as the threshold loosens — the paper
reports 24% at threshold 90 rising to 47% at threshold 50.
"""

from __future__ import annotations

from ..workloads import TABLE_4_1_NAMES
from .context import THRESHOLDS, ExperimentContext
from .shared import FSM_LABEL, classification_accuracy_stats
from .tables import ExperimentTable

EXPERIMENT_ID = "table-5.1"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("classify",)


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="% of allocation candidates admitted vs saturating counters",
        headers=["benchmark"] + [f"th={t:g}%" for t in THRESHOLDS],
    )
    sums = [0.0] * len(THRESHOLDS)
    for name in TABLE_4_1_NAMES:
        # Executed candidate addresses on the evaluation input: exactly the
        # instructions the hardware scheme would allocate.
        stats = classification_accuracy_stats(context, name)
        executed = {
            address
            for address, per_address in stats[FSM_LABEL].per_address.items()
            if per_address.executions > 0
        }
        row = []
        for position, threshold in enumerate(THRESHOLDS):
            tagged = set(context.annotated(name, threshold).directives())
            fraction = (
                100.0 * len(tagged & executed) / len(executed) if executed else 0.0
            )
            row.append(fraction)
            sums[position] += fraction
        table.add_row(name, *row)
    table.add_row("average", *[total / len(TABLE_4_1_NAMES) for total in sums])
    table.notes.append("paper average: 24 / 32 / 35 / 39 / 47 (thresholds 90..50)")
    return table
