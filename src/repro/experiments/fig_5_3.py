"""Figure 5.3 — increase in correct predictions over the hardware scheme.

Paper: with a finite 512-entry 2-way stride table, the percent change in
*taken correct* predictions of the profile scheme (thresholds 90..50)
relative to the saturating-counter scheme.

Expected shape: positive gains in the large-working-set benchmarks (go,
gcc, li, perl, vortex) where keeping unpredictable instructions out of
the table prevents useful entries from being evicted; little or negative
change in the small-working-set benchmarks (m88ksim, compress, ijpeg,
mgrid).
"""

from __future__ import annotations

from ..workloads import TABLE_4_1_NAMES
from .context import THRESHOLDS, ExperimentContext
from .shared import FSM_LABEL, finite_table_stats, threshold_label
from .tables import ExperimentTable, percent_change

EXPERIMENT_ID = "fig-5.3"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("finite",)


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="% increase in correct predictions vs saturating counters "
        "(512-entry 2-way stride table)",
        headers=["benchmark"] + [f"th={t:g}%" for t in THRESHOLDS],
    )
    for name in TABLE_4_1_NAMES:
        stats = finite_table_stats(context, name)
        baseline = stats[FSM_LABEL].taken_correct
        table.add_row(
            name,
            *[
                percent_change(stats[threshold_label(t)].taken_correct, baseline)
                for t in THRESHOLDS
            ],
        )
    return table
