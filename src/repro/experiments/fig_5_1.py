"""Figure 5.1 — % of mispredictions classified correctly.

Paper: with unbounded predictor state, how many of the stride predictor's
would-be mispredictions does each classification mechanism suppress?
Compared: the saturating-counter FSM vs. the profile-guided scheme at
thresholds 90/80/70/60/50.

Expected shape: profile@90 eliminates the most mispredictions; accuracy
decreases as the threshold loosens; only below ~60% does the FSM win on
average.
"""

from __future__ import annotations

from ..workloads import TABLE_4_1_NAMES
from .context import THRESHOLDS, ExperimentContext
from .shared import FSM_LABEL, classification_accuracy_stats, threshold_label
from .tables import ExperimentTable

EXPERIMENT_ID = "fig-5.1"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("classify",)

_HEADERS = ["benchmark", "FSM"] + [f"Prof th={t:g}%" for t in THRESHOLDS]


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="% of mispredictions classified correctly",
        headers=_HEADERS,
    )
    sums = [0.0] * (1 + len(THRESHOLDS))
    for name in TABLE_4_1_NAMES:
        stats = classification_accuracy_stats(context, name)
        values = [stats[FSM_LABEL].misprediction_classification_accuracy]
        values += [
            stats[threshold_label(t)].misprediction_classification_accuracy
            for t in THRESHOLDS
        ]
        sums = [total + value for total, value in zip(sums, values)]
        table.add_row(name, *values)
    table.add_row("average", *[total / len(TABLE_4_1_NAMES) for total in sums])
    table.notes.append("unbounded stride predictor; take/avoid decisions only")
    return table
