"""Markdown report generation from saved experiment results.

``python -m repro experiments all --output-dir results/tables`` leaves one
``.tsv`` per experiment; :func:`build_markdown_report` folds them back
into a single document (tables + the provenance notes), which is how
EXPERIMENTS.md's raw numbers are regenerated after a new run.

CLI: ``python -m repro experiments report --output-dir results/tables``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from .tables import ExperimentTable

#: Presentation order: paper results first, then ablations/extensions.
PREFERRED_ORDER = [
    "table-2.1",
    "fig-2.2",
    "fig-2.3",
    "fig-4.1",
    "fig-4.2",
    "fig-4.3",
    "fig-5.1",
    "fig-5.2",
    "table-5.1",
    "fig-5.3",
    "fig-5.4",
    "table-5.2",
    "characterization",
    "ablation-hybrid",
    "ablation-table-geometry",
    "ablation-fsm-bits",
    "ablation-stride-threshold",
    "ablation-predictors",
    "ablation-ilp-machine",
    "extension-critical-path",
]


def load_saved_tables(tables_dir: Union[str, Path]) -> Dict[str, ExperimentTable]:
    """Load every ``.tsv`` result in ``tables_dir``, keyed by experiment id."""
    tables: Dict[str, ExperimentTable] = {}
    for path in sorted(Path(tables_dir).glob("*.tsv")):
        table = ExperimentTable.from_tsv(path.read_text(encoding="utf-8"))
        if table.experiment_id:
            tables[table.experiment_id] = table
    return tables


def _markdown_table(table: ExperimentTable) -> str:
    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    lines = ["| " + " | ".join(table.headers) + " |"]
    lines.append("|" + "|".join("---" for _ in table.headers) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(render(cell) for cell in row) + " |")
    return "\n".join(lines)


def build_markdown_report(
    tables_dir: Union[str, Path],
    title: str = "Experiment results",
) -> str:
    """Render all saved results as one markdown document."""
    tables = load_saved_tables(tables_dir)
    if not tables:
        raise FileNotFoundError(f"no .tsv results under {tables_dir}")
    ordered: List[str] = [key for key in PREFERRED_ORDER if key in tables]
    ordered += sorted(set(tables) - set(ordered))
    sections = [f"# {title}", ""]
    for key in ordered:
        table = tables[key]
        sections.append(f"## {table.experiment_id} — {table.title}")
        sections.append("")
        sections.append(_markdown_table(table))
        for note in table.notes:
            sections.append("")
            sections.append(f"*{note}*")
        sections.append("")
    return "\n".join(sections)
