"""Table 2.1 — value prediction accuracy by predictor and category.

Paper: aggregate prediction accuracy of the last-value (L) and stride (S)
predictors over the integer suite (ALU instructions and loads) and the FP
suite (FP computation instructions and FP loads, separately for the
initialization and computation phases).

Expected shape: a substantial fraction of values is predictable; the
stride predictor matches or beats last-value on integer ALU instructions;
the FP computation phase shows the strongest stride behaviour.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..isa import Category
from ..predictors import LastValuePredictor, StridePredictor
from ..profiling import GroupStats, collect_profiles
from ..workloads import all_workloads
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "table-2.1"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ()


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="Value prediction accuracy [%] (S = stride, L = last-value)",
        headers=["suite", "phase", "category", "S", "L"],
    )
    # (suite, phase, category, predictor) -> aggregated attempts/correct.
    totals: Dict[Tuple[str, int, Category, str], GroupStats] = {}

    for workload in all_workloads():
        program = workload.compile()
        images = collect_profiles(
            program,
            workload.test_inputs(scale=context.scale),
            predictors={"S": StridePredictor(), "L": LastValuePredictor()},
            store=context.traces,
        )
        for predictor_name, image in images.items():
            for (category, phase), group in image.groups.items():
                # Integer benchmarks are single-phase; fold them to phase 0.
                effective_phase = phase if workload.suite == "fp" else 0
                key = (workload.suite, effective_phase, category, predictor_name)
                into = totals.setdefault(key, GroupStats())
                into.executions += group.executions
                into.attempts += group.attempts
                into.correct += group.correct

    def accuracy(suite: str, phase: int, category: Category, predictor: str) -> float:
        group = totals.get((suite, phase, category, predictor))
        return 0.0 if group is None else group.accuracy

    for category, label in (
        (Category.INT_ALU, "ALU instructions"),
        (Category.INT_LOAD, "load instructions"),
    ):
        table.add_row(
            "Spec-int95",
            "-",
            label,
            accuracy("int", 0, category, "S"),
            accuracy("int", 0, category, "L"),
        )
    for phase, phase_label in ((1, "init"), (2, "comp")):
        for category, label in (
            (Category.FP_ALU, "FP computation"),
            (Category.FP_LOAD, "FP loads"),
        ):
            table.add_row(
                "Spec-fp95",
                phase_label,
                label,
                accuracy("fp", phase, category, "S"),
                accuracy("fp", phase, category, "L"),
            )
    table.notes.append(
        "accuracies aggregated over the suite; measured on the held-out "
        "test input with unbounded tables"
    )
    return table
