"""Experiment harness: one module per paper table/figure, plus ablations.

Paper results (see DESIGN.md for the full index):

========================  ==============================================
``table-2.1``             prediction accuracy by predictor and category
``fig-2.2``               per-instruction accuracy distribution
``fig-2.3``               stride-efficiency-ratio distribution
``fig-4.1`` / ``fig-4.2``  M(V)max / M(V)average input-similarity metrics
``fig-4.3``               M(S)average stride-pattern similarity
``fig-5.1`` / ``fig-5.2``  classification accuracy (mispredictions / correct)
``table-5.1``             allocation candidates vs saturating counters
``fig-5.3`` / ``fig-5.4``  finite-table correct/incorrect prediction deltas
``table-5.2``             ILP increase on the abstract machine
========================  ==============================================

Ablations: ``ablation-hybrid``, ``ablation-table-geometry``,
``ablation-fsm-bits``, ``ablation-stride-threshold``.

Run everything with ``python -m repro experiments all`` or
programmatically::

    from repro.experiments import ExperimentContext, run_experiments
    context = ExperimentContext(scale=0.5)
    run_experiments(["table-5.2"], context)
"""

from .context import TABLE_ENTRIES, TABLE_WAYS, THRESHOLDS, ExperimentContext
from .tables import ExperimentTable, percent_change

__all__ = [
    "ExperimentContext",
    "ExperimentTable",
    "TABLE_ENTRIES",
    "TABLE_WAYS",
    "THRESHOLDS",
    "percent_change",
    "run_experiments",
    "EXPERIMENTS",
]


def __getattr__(name: str):
    # runner imports every experiment module; import it lazily so that
    # `import repro.experiments` stays cheap.
    if name in ("run_experiments", "EXPERIMENTS"):
        from . import runner

        return getattr(runner, {"run_experiments": "run_experiments",
                                "EXPERIMENTS": "EXPERIMENTS"}[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
