"""Figure 4.2 — the spread of the coordinates of M(V)average.

Paper: as Figure 4.1, but with the (less strict) average-distance metric
of Equation 4.2 over the prediction-accuracy vectors.

Expected shape: mass concentrated even more tightly in the lowest
intervals than M(V)max.
"""

from __future__ import annotations

from ..profiling import (
    HISTOGRAM_LABELS,
    accuracy_vectors,
    average_distance_metric,
    interval_percentages,
)
from ..workloads import TABLE_4_1_NAMES
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "fig-4.2"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("profile",)


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="% of M(V)average coordinates per distance interval (n=5)",
        headers=["benchmark"] + HISTOGRAM_LABELS,
    )
    for name in TABLE_4_1_NAMES:
        vectors = accuracy_vectors(context.training_profiles(name))
        metric = average_distance_metric(vectors)
        table.add_row(name, *interval_percentages(metric))
    table.notes.append("instructions common to all 5 runs only (paper Section 4)")
    return table
