"""Computations shared between experiment modules.

Figures 5.1/5.2 are two views of one simulation, as are Figures 5.3/5.4
and the columns of Table 5.2 — so the heavy work lives here, memoized on
the :class:`~repro.experiments.context.ExperimentContext`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import (
    HardwareClassification,
    PredictionEngine,
    PredictionStats,
    ProbeScheme,
    ProfileClassification,
    simulate_prediction_many,
)
from ..ilp import IlpConfig, IlpResult, measure_ilp_many
from ..predictors import StridePredictor
from .context import TABLE_ENTRIES, TABLE_WAYS, THRESHOLDS, ExperimentContext

#: Engine label for the saturating-counter baseline.
FSM_LABEL = "fsm"


def threshold_label(threshold: float) -> str:
    return f"prof{threshold:g}"


_MEMO_ATTR = "_shared_memo"


def _memo(context: ExperimentContext) -> Dict:
    memo = getattr(context, _MEMO_ATTR, None)
    if memo is None:
        memo = {}
        setattr(context, _MEMO_ATTR, memo)
    return memo


def classification_accuracy_stats(
    context: ExperimentContext, name: str
) -> Dict[str, PredictionStats]:
    """Infinite-table take/avoid study for one benchmark (Figs 5.1/5.2).

    Every scheme sees the identical, fully allocated unbounded stride
    predictor (via :class:`ProbeScheme`); only the take decision differs.
    """
    memo = _memo(context)
    key = ("classification", name)
    if key in memo:
        return memo[key]
    program = context.program(name)
    engines: Dict[str, PredictionEngine] = {
        FSM_LABEL: PredictionEngine(
            program,
            predictor=StridePredictor(),
            scheme=ProbeScheme(HardwareClassification()),
        )
    }
    for threshold in THRESHOLDS:
        annotated = context.annotated(name, threshold)
        engines[threshold_label(threshold)] = PredictionEngine(
            program,
            predictor=StridePredictor(),
            scheme=ProbeScheme(ProfileClassification(annotated)),
        )
    stats = simulate_prediction_many(program, context.test_inputs(name), engines)
    memo[key] = stats
    return stats


def finite_table_stats(
    context: ExperimentContext,
    name: str,
    entries: int = TABLE_ENTRIES,
    ways: int = TABLE_WAYS,
) -> Dict[str, PredictionStats]:
    """Finite-table pressure study for one benchmark (Figs 5.3/5.4).

    The hardware scheme allocates every candidate; the profile schemes
    allocate only directive-tagged instructions.  Same 512-entry 2-way
    stride table geometry for everyone.
    """
    memo = _memo(context)
    key = ("finite", name, entries, ways)
    if key in memo:
        return memo[key]
    program = context.program(name)
    engines: Dict[str, PredictionEngine] = {
        FSM_LABEL: PredictionEngine(
            program,
            predictor=StridePredictor(entries, ways),
            scheme=HardwareClassification(),
        )
    }
    for threshold in THRESHOLDS:
        annotated = context.annotated(name, threshold)
        engines[threshold_label(threshold)] = PredictionEngine(
            program,
            predictor=StridePredictor(entries, ways),
            scheme=ProfileClassification(annotated),
        )
    stats = simulate_prediction_many(program, context.test_inputs(name), engines)
    memo[key] = stats
    return stats


def ilp_results(
    context: ExperimentContext,
    name: str,
    config: Optional[IlpConfig] = None,
    entries: int = TABLE_ENTRIES,
    ways: int = TABLE_WAYS,
) -> Dict[str, IlpResult]:
    """Abstract-machine ILP for one benchmark (Table 5.2).

    Labels: ``novp`` (baseline), ``fsm`` (VP+SC) and ``profX`` per
    threshold — all scheduled against a single execution.
    """
    memo = _memo(context)
    key = ("ilp", name, config, entries, ways)
    if key in memo:
        return memo[key]
    program = context.program(name)
    engines: Dict[str, Optional[PredictionEngine]] = {
        "novp": None,
        FSM_LABEL: PredictionEngine(
            program,
            predictor=StridePredictor(entries, ways),
            scheme=HardwareClassification(),
        ),
    }
    for threshold in THRESHOLDS:
        annotated = context.annotated(name, threshold)
        engines[threshold_label(threshold)] = PredictionEngine(
            annotated,
            predictor=StridePredictor(entries, ways),
            scheme=ProfileClassification(annotated),
        )
    results = measure_ilp_many(
        program, context.test_inputs(name), engines, config=config
    )
    memo[key] = results
    return results
