"""Computations shared between experiment modules.

Figures 5.1/5.2 are two views of one simulation, as are Figures 5.3/5.4
and the columns of Table 5.2 — so the heavy work lives here, memoized in
the typed ``memo`` mapping on
:class:`~repro.experiments.context.ExperimentContext` and, when the
context has a ``cache_dir``, persisted in the content-addressed artifact
cache so reruns and sibling experiments skip the simulation entirely.

The memo keys (:func:`classification_memo_key` and friends) are part of
the contract with the parallel engine: pool workers compute these grids
remotely and :mod:`repro.runner.worker` primes them into the parent
context under the same keys.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from ..core import (
    HardwareClassification,
    PredictionEngine,
    PredictionStats,
    ProbeScheme,
    ProfileClassification,
    simulate_prediction_many,
)
from ..ilp import IlpConfig, IlpResult, measure_ilp_many
from ..predictors import StridePredictor
from ..runner import keys, serialize
from .context import TABLE_ENTRIES, TABLE_WAYS, THRESHOLDS, ExperimentContext

#: Engine label for the saturating-counter baseline.
FSM_LABEL = "fsm"


def threshold_label(threshold: float) -> str:
    return f"prof{threshold:g}"


# -- memo keys ---------------------------------------------------------------


def classification_memo_key(name: str) -> Tuple:
    return ("classification", name)


def finite_memo_key(name: str, entries: int, ways: int) -> Tuple:
    return ("finite", name, entries, ways)


def ilp_memo_key(
    name: str, config: Optional[IlpConfig], entries: int, ways: int
) -> Tuple:
    """Memo key for an ILP grid.

    ``config`` is normalized so that ``None`` and an explicitly
    constructed default :class:`IlpConfig` — or any two equal custom
    configs — share one entry.
    """
    return ("ilp", name, config or IlpConfig(), entries, ways)


# -- cache plumbing ----------------------------------------------------------


def _cached_grid(
    context: ExperimentContext, kind: str, cache_key: Optional[str]
):
    if context.artifacts is None or cache_key is None:
        return None
    payload = context.artifacts.load(kind, cache_key)
    if payload is None:
        return None
    try:
        return serialize.decode(kind, payload)
    except serialize.PayloadError:
        context.artifacts.discard(kind, cache_key)
        return None


def _store_grid(
    context: ExperimentContext, kind: str, cache_key: Optional[str], grid
) -> None:
    if context.artifacts is not None and cache_key is not None:
        context.artifacts.store(kind, cache_key, serialize.encode(kind, grid))


def _finish(
    context: ExperimentContext,
    memo_key: Hashable,
    kind: str,
    cache_key: Optional[str],
    grid,
):
    _store_grid(context, kind, cache_key, grid)
    context.memo[memo_key] = grid
    return grid


# -- the three shared grids --------------------------------------------------


def classification_accuracy_stats(
    context: ExperimentContext, name: str
) -> Dict[str, PredictionStats]:
    """Infinite-table take/avoid study for one benchmark (Figs 5.1/5.2).

    Every scheme sees the identical, fully allocated unbounded stride
    predictor (via :class:`ProbeScheme`); only the take decision differs.
    """
    memo_key = classification_memo_key(name)
    if memo_key in context.memo:
        return context.memo[memo_key]
    cache_key = None
    if context.artifacts is not None:
        cache_key = keys.classify_key(
            name,
            context.scale,
            context.training_runs,
            THRESHOLDS,
            context.stride_threshold,
        )
    cached = _cached_grid(context, "classify", cache_key)
    if cached is not None:
        context.memo[memo_key] = cached
        return cached
    program = context.program(name)
    engines: Dict[str, PredictionEngine] = {
        FSM_LABEL: PredictionEngine(
            program,
            predictor=StridePredictor(),
            scheme=ProbeScheme(HardwareClassification()),
        )
    }
    for threshold in THRESHOLDS:
        annotated = context.annotated(name, threshold)
        engines[threshold_label(threshold)] = PredictionEngine(
            program,
            predictor=StridePredictor(),
            scheme=ProbeScheme(ProfileClassification(annotated)),
        )
    stats = simulate_prediction_many(
        program, context.test_inputs(name), engines, store=context.traces
    )
    return _finish(context, memo_key, "classify", cache_key, stats)


def finite_table_stats(
    context: ExperimentContext,
    name: str,
    entries: int = TABLE_ENTRIES,
    ways: int = TABLE_WAYS,
) -> Dict[str, PredictionStats]:
    """Finite-table pressure study for one benchmark (Figs 5.3/5.4).

    The hardware scheme allocates every candidate; the profile schemes
    allocate only directive-tagged instructions.  Same 512-entry 2-way
    stride table geometry for everyone.
    """
    memo_key = finite_memo_key(name, entries, ways)
    if memo_key in context.memo:
        return context.memo[memo_key]
    cache_key = None
    if context.artifacts is not None:
        cache_key = keys.finite_key(
            name,
            context.scale,
            context.training_runs,
            THRESHOLDS,
            context.stride_threshold,
            entries,
            ways,
        )
    cached = _cached_grid(context, "finite", cache_key)
    if cached is not None:
        context.memo[memo_key] = cached
        return cached
    program = context.program(name)
    engines: Dict[str, PredictionEngine] = {
        FSM_LABEL: PredictionEngine(
            program,
            predictor=StridePredictor(entries, ways),
            scheme=HardwareClassification(),
        )
    }
    for threshold in THRESHOLDS:
        annotated = context.annotated(name, threshold)
        engines[threshold_label(threshold)] = PredictionEngine(
            program,
            predictor=StridePredictor(entries, ways),
            scheme=ProfileClassification(annotated),
        )
    stats = simulate_prediction_many(
        program, context.test_inputs(name), engines, store=context.traces
    )
    return _finish(context, memo_key, "finite", cache_key, stats)


def ilp_results(
    context: ExperimentContext,
    name: str,
    config: Optional[IlpConfig] = None,
    entries: int = TABLE_ENTRIES,
    ways: int = TABLE_WAYS,
) -> Dict[str, IlpResult]:
    """Abstract-machine ILP for one benchmark (Table 5.2).

    Labels: ``novp`` (baseline), ``fsm`` (VP+SC) and ``profX`` per
    threshold — all scheduled against a single execution.
    """
    memo_key = ilp_memo_key(name, config, entries, ways)
    if memo_key in context.memo:
        return context.memo[memo_key]
    cache_key = None
    if context.artifacts is not None:
        cache_key = keys.ilp_key(
            name,
            context.scale,
            context.training_runs,
            THRESHOLDS,
            context.stride_threshold,
            entries,
            ways,
            config,
        )
    cached = _cached_grid(context, "ilp", cache_key)
    if cached is not None:
        context.memo[memo_key] = cached
        return cached
    program = context.program(name)
    engines: Dict[str, Optional[PredictionEngine]] = {
        "novp": None,
        FSM_LABEL: PredictionEngine(
            program,
            predictor=StridePredictor(entries, ways),
            scheme=HardwareClassification(),
        ),
    }
    for threshold in THRESHOLDS:
        annotated = context.annotated(name, threshold)
        engines[threshold_label(threshold)] = PredictionEngine(
            annotated,
            predictor=StridePredictor(entries, ways),
            scheme=ProfileClassification(annotated),
        )
    results = measure_ilp_many(
        program, context.test_inputs(name), engines, config=config
    )
    return _finish(context, memo_key, "ilp", cache_key, results)
