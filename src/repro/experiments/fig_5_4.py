"""Figure 5.4 — increase in incorrect predictions over the hardware scheme.

Paper: the companion of Figure 5.3 — the percent change in *taken
incorrect* predictions (mispredictions) of the profile scheme relative to
the saturating counters, same finite table.

Expected shape: large *reductions* (negative changes) at tight
thresholds; the reduction shrinks as the threshold loosens.
"""

from __future__ import annotations

from ..workloads import TABLE_4_1_NAMES
from .context import THRESHOLDS, ExperimentContext
from .shared import FSM_LABEL, finite_table_stats, threshold_label
from .tables import ExperimentTable, percent_change

EXPERIMENT_ID = "fig-5.4"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("finite",)


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="% increase in incorrect predictions vs saturating counters "
        "(512-entry 2-way stride table)",
        headers=["benchmark"] + [f"th={t:g}%" for t in THRESHOLDS],
    )
    for name in TABLE_4_1_NAMES:
        stats = finite_table_stats(context, name)
        baseline = stats[FSM_LABEL].taken_incorrect
        table.add_row(
            name,
            *[
                percent_change(stats[threshold_label(t)].taken_incorrect, baseline)
                for t in THRESHOLDS
            ],
        )
    return table
