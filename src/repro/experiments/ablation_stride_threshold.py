"""Ablation — the stride-efficiency split for directive selection.

The paper suggests tagging an instruction "stride" when the majority
(>50%) of its correct predictions used a non-zero stride, and mentions a
user-supplied threshold as the alternative.  This ablation sweeps that
split and reports, for a hybrid 128/384 predictor at accuracy threshold
70, how the directive mix and the delivered correct predictions move.

Expected shape: the split barely matters across a wide middle range —
the stride-efficiency distribution is bimodal (Figure 2.3), so almost
every tagged instruction sits near 0% or near 100%.
"""

from __future__ import annotations

from typing import Dict

from ..annotate import AnnotationPolicy, annotate_program
from ..core import PredictionEngine, ProfileClassification, simulate_prediction_many
from ..isa import Directive
from ..predictors import HybridPredictor
from ..workloads import TABLE_4_1_NAMES
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "ablation-stride-threshold"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("profile",)

ACCURACY_THRESHOLD = 70.0
SPLITS = (10.0, 30.0, 50.0, 70.0, 90.0)


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="Stride/last-value split sweep (hybrid 128/384, acc th=70): "
        "totals over Table 4.1 benchmarks",
        headers=["split [%]", "stride tags", "lv tags", "taken correct",
                 "taken incorrect"],
    )
    for split in SPLITS:
        stride_tags = 0
        lv_tags = 0
        correct = 0
        incorrect = 0
        for name in TABLE_4_1_NAMES:
            policy = AnnotationPolicy(
                accuracy_threshold=ACCURACY_THRESHOLD, stride_threshold=split
            )
            annotated = annotate_program(
                context.program(name), context.merged_profile(name), policy
            )
            directives = annotated.directives()
            stride_tags += sum(
                1 for d in directives.values() if d is Directive.STRIDE
            )
            lv_tags += sum(
                1 for d in directives.values() if d is Directive.LAST_VALUE
            )
            engines: Dict[str, PredictionEngine] = {
                "hybrid": PredictionEngine(
                    annotated,
                    predictor=HybridPredictor(128, 384, ways=2),
                    scheme=ProfileClassification(annotated),
                )
            }
            stats = simulate_prediction_many(
                annotated, context.test_inputs(name), engines, store=context.traces
            )
            correct += stats["hybrid"].taken_correct
            incorrect += stats["hybrid"].taken_incorrect
        table.add_row(split, stride_tags, lv_tags, correct, incorrect)
    return table
