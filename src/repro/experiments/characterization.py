"""Extension — workload characterization (the paper's Table 4.1 context).

The paper introduces its benchmarks with one-line descriptions
(Table 4.1); a reproduction built on stand-in workloads owes the reader
the numbers behind the claims made about them: dynamic instruction mix,
value-prediction-candidate density, and the *candidate footprint* — the
number of distinct candidate instructions competing for the 512-entry
prediction table, which drives the Figures 5.3/5.4 pressure results.
"""

from __future__ import annotations

from ..isa import Category
from ..machine import collect_statistics
from ..workloads import all_workloads
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "characterization"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ()


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="Workload characterization (test input)",
        headers=[
            "benchmark",
            "dynamic",
            "alu%",
            "fp%",
            "load%",
            "store%",
            "branch%",
            "cand%",
            "cand fp",
            "data fp",
        ],
    )
    for workload in all_workloads():
        program = workload.compile()
        stats = collect_statistics(program, workload.test_inputs(scale=context.scale))
        loads = stats.category_fraction(Category.INT_LOAD) + stats.category_fraction(
            Category.FP_LOAD
        )
        table.add_row(
            workload.name,
            stats.instructions,
            stats.category_fraction(Category.INT_ALU),
            stats.category_fraction(Category.FP_ALU),
            loads,
            stats.category_fraction(Category.STORE),
            stats.category_fraction(Category.BRANCH),
            stats.candidate_fraction,
            stats.candidate_footprint,
            stats.data_footprint,
        )
    table.notes.append(
        "cand fp = distinct candidate instructions executed (prediction-table "
        "working set); data fp = distinct data words touched"
    )
    return table
