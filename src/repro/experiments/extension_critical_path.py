"""Extension — profile-guided critical-path analysis (Section 6 future work).

The paper closes with: "We are examining the effect of the profiling
information on the scheduling of instruction within a basic block and the
analysis of the critical path."  This experiment implements that study:
for each benchmark, compute every basic block's dataflow critical path,
then recompute it with profile-classified value-predictable producers
collapsed (their consumers speculate on the predicted value), and report
the mean shortening at two thresholds.

Expected shape: a meaningful fraction (tens of percent) of the mean
intra-block critical path disappears, more at looser thresholds; blocks
dominated by unpredictable data chains shorten least.
"""

from __future__ import annotations

from ..analysis import analyze_blocks, summarize_paths
from ..workloads import TABLE_4_1_NAMES
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "extension-critical-path"

#: Shared cells this experiment consumes; the parallel engine
#: precomputes them across benchmarks (see repro.runner.jobs).
CELLS = ("profile",)

THRESHOLDS = (90.0, 50.0)
MIN_BLOCK_SIZE = 3


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="Mean basic-block critical path with value-predictable "
        "producers collapsed",
        headers=["benchmark", "blocks", "plain"]
        + [f"th={t:g}%" for t in THRESHOLDS]
        + [f"shorter@{t:g}% [%]" for t in THRESHOLDS],
    )
    for name in TABLE_4_1_NAMES:
        program = context.program(name)
        image = context.merged_profile(name)
        lengths = []
        shortenings = []
        blocks = 0
        plain = 0.0
        for threshold in THRESHOLDS:
            paths = analyze_blocks(
                program, image, context.policy(threshold), min_size=MIN_BLOCK_SIZE
            )
            summary = summarize_paths(paths)
            blocks = summary.blocks
            plain = summary.mean_length
            lengths.append(summary.mean_predicted_length)
            shortenings.append(100.0 * summary.relative_shortening)
        table.add_row(name, blocks, plain, *lengths, *shortenings)
    table.notes.append(
        f"blocks of >= {MIN_BLOCK_SIZE} instructions; unit latencies, "
        "store->load serialized within the block"
    )
    return table
