"""Shared state for the experiment harness.

Most experiments need the same expensive artifacts — compiled binaries,
the five training-run profile images per benchmark, merged profiles and
annotated binaries per threshold.  :class:`ExperimentContext` memoizes
them in-process and, when a ``cache_dir`` is given, persists them in the
content-addressed :class:`~repro.runner.cache.ArtifactCache` shared with
the parallel experiment engine (:mod:`repro.runner`), so the full
experiment suite pays for each artifact once — per machine, not per run.

Cache keys digest the program text, the exact input streams and the
relevant configuration (:mod:`repro.runner.keys`); a changed workload
source, input generator or ``scale`` therefore misses cleanly, and a
corrupt cache entry is discarded and recomputed.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..annotate import AnnotationPolicy, annotate_program
from ..isa import Number, Program
from ..machine import TraceStore
from ..profiling import (
    ProfileFormatError,
    ProfileImage,
    collect_profile,
    dumps_profile,
    loads_profile,
    merge_profiles,
)
from ..runner import keys
from ..runner.cache import ArtifactCache
from ..workloads import TRAINING_RUNS, Workload, get_workload

#: The five classification thresholds swept in Section 5.
THRESHOLDS = (90.0, 80.0, 70.0, 60.0, 50.0)

#: The finite prediction-table geometry of Sections 5.2-5.3.
TABLE_ENTRIES = 512
TABLE_WAYS = 2


@dataclasses.dataclass
class ExperimentContext:
    """Configuration + memoized artifacts for one experiment session.

    Args:
        scale: workload input scale; 1.0 is experiment grade
            (~200-500k dynamic instructions per run), smaller values
            shrink runs proportionally for quick checks and benchmarks.
        training_runs: how many training input sets to profile (paper: 5).
        cache_dir: optional root of the on-disk content-addressed
            artifact cache (profile images, merged profiles, simulation
            cells, finished tables).
        stride_threshold: stride-efficiency split for directive type.

    Attributes:
        memo: typed scratch space for derived computations keyed by
            hashable tuples — :mod:`repro.experiments.shared` stores its
            simulation/ILP grids here, and the parallel engine primes it
            with cells computed in pool workers.
        artifacts: the :class:`ArtifactCache` under ``cache_dir``, or
            ``None`` when no disk cache was requested.
        traces: the session's :class:`~repro.machine.TraceStore` — every
            profiling/simulation pass captures or replays through it, so
            each distinct (program, inputs, budget) execution is
            interpreted once per session (once per machine with a
            ``cache_dir``) no matter how many analyses consume it.
    """

    scale: float = 1.0
    training_runs: int = TRAINING_RUNS
    cache_dir: Optional[Path] = None
    stride_threshold: float = 50.0

    def __post_init__(self) -> None:
        self.artifacts: Optional[ArtifactCache] = None
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
            self.artifacts = ArtifactCache(self.cache_dir)
        self.traces = TraceStore(
            (self.cache_dir / "traces") if self.cache_dir is not None else None
        )
        self.memo: Dict[Hashable, Any] = {}
        self._profiles: Dict[Tuple[str, int], ProfileImage] = {}
        self._merged: Dict[str, ProfileImage] = {}
        self._annotated: Dict[Tuple[str, float], Program] = {}

    # -- basic artifacts -----------------------------------------------------

    def workload(self, name: str) -> Workload:
        return get_workload(name)

    def program(self, name: str) -> Program:
        return get_workload(name).compile()

    def training_inputs(self, name: str) -> List[List[Number]]:
        return get_workload(name).training_inputs(
            count=self.training_runs, scale=self.scale
        )

    def test_inputs(self, name: str) -> List[Number]:
        return get_workload(name).test_inputs(scale=self.scale)

    # -- disk cache ----------------------------------------------------------

    def _cached_profile(self, kind: str, key: str) -> Optional[ProfileImage]:
        if self.artifacts is None:
            return None
        payload = self.artifacts.load(kind, key, "profile")
        if payload is None:
            return None
        try:
            return loads_profile(payload)
        except ProfileFormatError:
            self.artifacts.discard(kind, key, "profile")
            return None

    def _store_profile(self, kind: str, key: str, image: ProfileImage) -> None:
        if self.artifacts is not None:
            self.artifacts.store(kind, key, dumps_profile(image), "profile")

    # -- profiles ------------------------------------------------------------

    def training_profile(self, name: str, run_index: int) -> ProfileImage:
        """Profile image of one training run (unbounded stride predictor)."""
        memo_key = (name, run_index)
        if memo_key in self._profiles:
            return self._profiles[memo_key]
        cache_key = None
        image = None
        if self.artifacts is not None:
            cache_key = keys.profile_key(name, run_index, self.scale)
            image = self._cached_profile("profile", cache_key)
        if image is None:
            workload = get_workload(name)
            image = collect_profile(
                workload.compile(),
                workload.input_set(run_index, scale=self.scale),
                run_label=f"train-{run_index}",
            )
            self._store_profile("profile", cache_key, image)
        self._profiles[memo_key] = image
        return image

    def training_profiles(self, name: str) -> List[ProfileImage]:
        return [
            self.training_profile(name, run_index)
            for run_index in range(self.training_runs)
        ]

    def merged_profile(self, name: str) -> ProfileImage:
        """All training runs merged into one profile image."""
        if name not in self._merged:
            cache_key = None
            image = None
            if self.artifacts is not None:
                cache_key = keys.merged_key(name, self.scale, self.training_runs)
                image = self._cached_profile("merged", cache_key)
            if image is None:
                image = merge_profiles(
                    self.training_profiles(name), program_name=name
                )
                self._store_profile("merged", cache_key, image)
            self._merged[name] = image
        return self._merged[name]

    # -- annotated binaries --------------------------------------------------

    def policy(self, threshold: float) -> AnnotationPolicy:
        return AnnotationPolicy(
            accuracy_threshold=threshold, stride_threshold=self.stride_threshold
        )

    def annotated(self, name: str, threshold: float) -> Program:
        """The phase-3 binary for one benchmark at one threshold."""
        key = (name, threshold)
        if key not in self._annotated:
            self._annotated[key] = annotate_program(
                self.program(name), self.merged_profile(name), self.policy(threshold)
            )
        return self._annotated[key]

    # -- engine priming ------------------------------------------------------
    #
    # The parallel engine (repro.runner) computes artifacts in pool
    # workers and installs them here, both in the parent after a job
    # completes and in workers before a dependent job starts.

    def has_profile(self, name: str, run_index: int) -> bool:
        return (name, run_index) in self._profiles

    def prime_profile(self, name: str, run_index: int, image: ProfileImage) -> None:
        self._profiles.setdefault((name, run_index), image)

    def has_annotated(self, name: str, threshold: float) -> bool:
        return (name, threshold) in self._annotated

    def prime_annotated(self, name: str, threshold: float, program: Program) -> None:
        self._annotated.setdefault((name, threshold), program)
