"""Shared state for the experiment harness.

Most experiments need the same expensive artifacts — compiled binaries,
the five training-run profile images per benchmark, merged profiles and
annotated binaries per threshold.  :class:`ExperimentContext` memoizes
them (optionally persisting profile images to a cache directory in the
profile-image file format) so the full experiment suite pays for each
artifact once.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..annotate import AnnotationPolicy, annotate_program
from ..isa import Number, Program
from ..profiling import (
    ProfileImage,
    collect_profile,
    merge_profiles,
    read_profile,
    save_profile,
)
from ..workloads import TRAINING_RUNS, Workload, get_workload

#: The five classification thresholds swept in Section 5.
THRESHOLDS = (90.0, 80.0, 70.0, 60.0, 50.0)

#: The finite prediction-table geometry of Sections 5.2-5.3.
TABLE_ENTRIES = 512
TABLE_WAYS = 2


@dataclasses.dataclass
class ExperimentContext:
    """Configuration + memoized artifacts for one experiment session.

    Args:
        scale: workload input scale; 1.0 is experiment grade
            (~200-500k dynamic instructions per run), smaller values
            shrink runs proportionally for quick checks and benchmarks.
        training_runs: how many training input sets to profile (paper: 5).
        cache_dir: optional directory for persisted profile images.
        stride_threshold: stride-efficiency split for directive type.
    """

    scale: float = 1.0
    training_runs: int = TRAINING_RUNS
    cache_dir: Optional[Path] = None
    stride_threshold: float = 50.0

    def __post_init__(self) -> None:
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._profiles: Dict[Tuple[str, int], ProfileImage] = {}
        self._merged: Dict[str, ProfileImage] = {}
        self._annotated: Dict[Tuple[str, float], Program] = {}

    # -- basic artifacts -----------------------------------------------------

    def workload(self, name: str) -> Workload:
        return get_workload(name)

    def program(self, name: str) -> Program:
        return get_workload(name).compile()

    def training_inputs(self, name: str) -> List[List[Number]]:
        return get_workload(name).training_inputs(
            count=self.training_runs, scale=self.scale
        )

    def test_inputs(self, name: str) -> List[Number]:
        return get_workload(name).test_inputs(scale=self.scale)

    # -- profiles ------------------------------------------------------------

    def _cache_path(self, name: str, run_index: int) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        stem = f"{name}_run{run_index}_scale{self.scale:g}.profile"
        return self.cache_dir / stem

    def training_profile(self, name: str, run_index: int) -> ProfileImage:
        """Profile image of one training run (unbounded stride predictor)."""
        key = (name, run_index)
        if key in self._profiles:
            return self._profiles[key]
        path = self._cache_path(name, run_index)
        if path is not None and path.exists():
            image = read_profile(path)
        else:
            workload = get_workload(name)
            image = collect_profile(
                workload.compile(),
                workload.input_set(run_index, scale=self.scale),
                run_label=f"train-{run_index}",
            )
            if path is not None:
                save_profile(image, path)
        self._profiles[key] = image
        return image

    def training_profiles(self, name: str) -> List[ProfileImage]:
        return [
            self.training_profile(name, run_index)
            for run_index in range(self.training_runs)
        ]

    def merged_profile(self, name: str) -> ProfileImage:
        """All training runs merged into one profile image."""
        if name not in self._merged:
            self._merged[name] = merge_profiles(
                self.training_profiles(name), program_name=name
            )
        return self._merged[name]

    # -- annotated binaries -----------------------------------------------------

    def policy(self, threshold: float) -> AnnotationPolicy:
        return AnnotationPolicy(
            accuracy_threshold=threshold, stride_threshold=self.stride_threshold
        )

    def annotated(self, name: str, threshold: float) -> Program:
        """The phase-3 binary for one benchmark at one threshold."""
        key = (name, threshold)
        if key not in self._annotated:
            self._annotated[key] = annotate_program(
                self.program(name), self.merged_profile(name), self.policy(threshold)
            )
        return self._annotated[key]
