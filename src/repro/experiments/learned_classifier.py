"""Learned classifier vs. profile thresholds vs. saturating counters.

The modern successor to the paper's question (PGO-without-Profiles,
PAPERS.md): train a :mod:`repro.classify` model on one corpus split —
each program labeled by its *own* phase-2 profile — then judge it on a
held-out split it has never seen, head-to-head against the paper's
threshold :class:`~repro.core.ProfileClassification` (which *does* get
to profile the held-out programs) and the hardware
:class:`~repro.core.HardwareClassification` baseline.

Two views per held-out benchmark:

* **static accuracy** — per-instruction 3-class label agreement
  (none / last-value / stride) against the held-out program's own
  profile labels, with the training corpus' majority class as the
  baseline to beat;
* **H2P-tail recovery** — following the hard-to-predict methodology of
  *Branch Prediction Is Not a Solved Problem* (PAPERS.md): the tail is
  the static instructions whose unbounded-predictor accuracy on the
  test inputs falls below :data:`H2P_ACCURACY_CUTOFF`; each mechanism's
  recovery is the share of the tail's would-be mispredictions its
  take/avoid decisions suppress (measured under
  :class:`~repro.core.ProbeScheme`, so every mechanism judges the
  identical suggestion stream).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..annotate import annotate_program
from ..classify import (
    LabeledProgram,
    build_dataset,
    dataset_rows,
    extract_features,
    label_program,
    majority_label,
    model_digest,
    profile_workload,
    train_model,
)
from ..core import (
    HardwareClassification,
    LearnedClassification,
    PredictionEngine,
    PredictionStats,
    ProbeScheme,
    ProfileClassification,
    simulate_prediction_many,
)
from ..predictors import StridePredictor
from ..workloads.corpus import generate_corpus
from .context import ExperimentContext
from .tables import ExperimentTable

EXPERIMENT_ID = "learned-classifier"

#: No shared cells: the corpus splits are private to this experiment.
CELLS = ()

#: Corpus geometry: programs 0..15 train the model, 16..23 are held out.
CORPUS_SEED = 1997
CORPUS_COUNT = 24
TRAIN_COUNT = 16

#: Seed for the model's Lcg (subsampling) and provenance stamp.
MODEL_SEED = 1997

#: The paper's headline profile threshold, reused for training labels.
LABEL_THRESHOLD = 90.0

#: Test-input accuracy below this marks an instruction hard-to-predict.
H2P_ACCURACY_CUTOFF = 50.0

#: Minimum test-input attempts before an instruction can join the tail.
H2P_MIN_ATTEMPTS = 4

_HEADERS = [
    "benchmark",
    "learned acc",
    "majority acc",
    "h2p insns",
    "h2p miss share",
    "learned recov",
    "prof90 recov",
    "fsm recov",
]

_ENGINES = ("learned", "prof90", "fsm")


def _h2p_addresses(stats: PredictionStats) -> List[int]:
    """The hard-to-predict tail, by unbounded would-be accuracy."""
    tail = []
    for address, record in sorted(stats.per_address.items()):
        if record.attempts < H2P_MIN_ATTEMPTS:
            continue
        if 100.0 * record.would_correct / record.attempts < H2P_ACCURACY_CUTOFF:
            tail.append(address)
    return tail


def _tail_recovery(stats: PredictionStats, tail: List[int]) -> Tuple[int, int]:
    """(would-be mispredictions in the tail, how many were avoided)."""
    would = avoided = 0
    for address in tail:
        record = stats.per_address.get(address)
        if record is None:
            continue
        would += record.would_incorrect
        avoided += record.would_incorrect - record.taken_incorrect
    return would, avoided


def _percent(part: float, whole: float) -> float:
    return 100.0 * part / whole if whole else 100.0


def run(context: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=EXPERIMENT_ID,
        title="learned classifier vs profile/hardware on held-out corpus",
        headers=_HEADERS,
    )
    corpus = generate_corpus(CORPUS_SEED, CORPUS_COUNT)
    training, held_out = corpus[:TRAIN_COUNT], corpus[TRAIN_COUNT:]
    policy = context.policy(LABEL_THRESHOLD)
    labeled: List[LabeledProgram] = build_dataset(
        training,
        training_runs=context.training_runs,
        scale=context.scale,
        policy=policy,
    )
    rows = dataset_rows(labeled)
    model = train_model(rows, seed=MODEL_SEED)
    baseline = majority_label(rows)

    total = {"n": 0, "learned": 0, "majority": 0, "tail": 0}
    avoided_sum = {label: 0 for label in _ENGINES}
    would_total = 0
    tail_would = 0
    for workload in held_out:
        program, profile = profile_workload(
            workload, training_runs=context.training_runs, scale=context.scale
        )
        features = extract_features(program)
        labels = label_program(program, profile, policy)
        predictions = {
            address: model.predict(vector) for address, vector in features.items()
        }
        n = len(labels)
        learned_hits = sum(
            1 for address in labels if predictions[address] == labels[address]
        )
        majority_hits = sum(1 for label in labels.values() if label == baseline)

        annotated = annotate_program(program, profile, policy)
        engines: Dict[str, PredictionEngine] = {
            "learned": PredictionEngine(
                program,
                predictor=StridePredictor(),
                scheme=ProbeScheme(
                    LearnedClassification.from_model(model, program)
                ),
            ),
            "prof90": PredictionEngine(
                program,
                predictor=StridePredictor(),
                scheme=ProbeScheme(ProfileClassification(annotated)),
            ),
            "fsm": PredictionEngine(
                program,
                predictor=StridePredictor(),
                scheme=ProbeScheme(HardwareClassification()),
            ),
        }
        stats = simulate_prediction_many(
            program,
            workload.test_inputs(scale=context.scale),
            engines,
            store=context.traces,
        )
        tail = _h2p_addresses(stats["fsm"])
        would, _ = _tail_recovery(stats["fsm"], tail)
        recoveries = {}
        for label in _ENGINES:
            tail_would_one, avoided = _tail_recovery(stats[label], tail)
            recoveries[label] = _percent(avoided, tail_would_one)
            avoided_sum[label] += avoided
        table.add_row(
            workload.name,
            _percent(learned_hits, n),
            _percent(majority_hits, n),
            len(tail),
            _percent(would, stats["fsm"].would_incorrect),
            recoveries["learned"],
            recoveries["prof90"],
            recoveries["fsm"],
        )
        total["n"] += n
        total["learned"] += learned_hits
        total["majority"] += majority_hits
        total["tail"] += len(tail)
        tail_would += would
        would_total += stats["fsm"].would_incorrect

    table.add_row(
        "overall",
        _percent(total["learned"], total["n"]),
        _percent(total["majority"], total["n"]),
        total["tail"],
        _percent(tail_would, would_total),
        _percent(avoided_sum["learned"], tail_would),
        _percent(avoided_sum["prof90"], tail_would),
        _percent(avoided_sum["fsm"], tail_would),
    )
    table.notes.append(
        f"corpus seed {CORPUS_SEED}: programs 0-{TRAIN_COUNT - 1} train, "
        f"{TRAIN_COUNT}-{CORPUS_COUNT - 1} held out; labels at "
        f"{LABEL_THRESHOLD:g}% threshold"
    )
    table.notes.append(
        f"H2P tail: test-input accuracy < {H2P_ACCURACY_CUTOFF:g}% with >= "
        f"{H2P_MIN_ATTEMPTS} attempts (unbounded probe predictor); recovery = "
        "% of the tail's would-be mispredictions suppressed"
    )
    table.notes.append(
        f"model: seed {MODEL_SEED}, {model.training_rows} rows, "
        f"{model.node_count} nodes, sha256 {model_digest(model)[:16]}"
    )
    return table


__all__ = ["CELLS", "EXPERIMENT_ID", "run"]
