"""Trace-driven ILP model (the paper's Section 5.3 abstract machine)."""

from .model import (
    IlpConfig,
    IlpResult,
    WindowScheduler,
    ilp_increase,
    measure_ilp,
    measure_ilp_many,
)

__all__ = [
    "IlpConfig",
    "IlpResult",
    "WindowScheduler",
    "ilp_increase",
    "measure_ilp",
    "measure_ilp_many",
]
