"""The abstract ILP machine of the paper's Section 5.3.

"Our experiments consider an abstract machine with a finite instruction
window of 40 entries, unlimited number of execution units and a perfect
branch prediction mechanism. ... In case of value-misprediction, the
penalty in our abstract machine is 1 clock cycle."

:class:`WindowScheduler` walks the dynamic trace once and assigns each
instruction:

* an *enter* cycle — bounded by the 40-entry window (an instruction enters
  when the instruction 40 positions earlier retires);
* an *issue* cycle — when its operands are ready (unit execution latency,
  unlimited execution units, so issue = ready);
* a *retire* cycle — in order.

Value prediction changes when a producer's destination value becomes
visible to consumers: a correctly predicted (and taken) value is available
the moment the producer enters the window — the true-data dependence is
collapsed; a mispredicted taken value is available only after the producer
executes plus the misprediction penalty; an unpredicted value after the
producer executes.

Branches constrain nothing (perfect branch prediction).  Loads optionally
depend on the last store to the same address (perfect memory
disambiguation with store-to-load forwarding); disable
``track_memory_dependencies`` to treat memory as unconstrained, closer to
a pure register-dataflow limit study.

:func:`measure_ilp_many` schedules several machine configurations (e.g.
no-VP, VP+SC, VP+Prof at five thresholds) against a *single* execution of
the program — the trace is by far the dominant cost.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..isa import NUM_REGISTERS, Number, Opcode, Program, RA, ZERO
from ..machine import TraceRecord, trace_program
from ..core.simulate import PredictionEngine


@dataclasses.dataclass(frozen=True)
class IlpConfig:
    """Machine parameters (defaults = the paper's abstract machine)."""

    window_size: int = 40
    misprediction_penalty: int = 1
    track_memory_dependencies: bool = True

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window_size must be positive")
        if self.misprediction_penalty < 0:
            raise ValueError("misprediction_penalty must be non-negative")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "IlpConfig":
        return cls(
            window_size=int(payload["window_size"]),
            misprediction_penalty=int(payload["misprediction_penalty"]),
            track_memory_dependencies=bool(payload["track_memory_dependencies"]),
        )


@dataclasses.dataclass(frozen=True)
class IlpResult:
    """Outcome of one scheduled run."""

    instructions: int
    cycles: int
    taken_predictions: int
    correct_predictions: int
    mispredictions: int

    @property
    def ilp(self) -> float:
        """Retired instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def to_dict(self) -> dict:
        """Exact, JSON-compatible encoding for caching/pool transport."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "IlpResult":
        return cls(
            instructions=int(payload["instructions"]),
            cycles=int(payload["cycles"]),
            taken_predictions=int(payload["taken_predictions"]),
            correct_predictions=int(payload["correct_predictions"]),
            mispredictions=int(payload["mispredictions"]),
        )


_Decoded = Tuple[Tuple[int, ...], Optional[int], bool, bool, bool]


def _decode_for_scheduling(program: Program) -> List[_Decoded]:
    decoded: List[_Decoded] = []
    for instruction in program.instructions:
        dest = instruction.dest
        if instruction.opcode is Opcode.CALL:
            dest = RA  # call writes the return-address register
        decoded.append(
            (
                instruction.srcs,
                dest,
                instruction.opcode.reads_memory,
                instruction.opcode.writes_memory,
                instruction.is_prediction_candidate,
            )
        )
    return decoded


class WindowScheduler:
    """Schedules one dynamic instruction stream on the abstract machine.

    Feed it records in program order via :meth:`feed`, then read
    :meth:`result`.  Several schedulers (different engines/configs) can
    consume the same trace.
    """

    def __init__(
        self,
        program: Program,
        engine: Optional[PredictionEngine] = None,
        config: Optional[IlpConfig] = None,
        decoded: Optional[List[_Decoded]] = None,
    ) -> None:
        self.config = config or IlpConfig()
        self.engine = engine
        self._decoded = decoded if decoded is not None else _decode_for_scheduling(program)
        self._register_ready = [0] * NUM_REGISTERS
        self._memory_ready: Dict[int, int] = {}
        self._window: deque[int] = deque()
        self._retire_prev = 0
        self._instruction_count = 0
        self._taken = 0
        self._correct = 0
        self._mispredicted = 0

    def feed(self, record: TraceRecord) -> None:
        """Schedule one retired dynamic instruction."""
        srcs, dest, reads_memory, writes_memory, is_candidate = self._decoded[
            record.address
        ]
        self._instruction_count += 1
        config = self.config
        register_ready = self._register_ready

        window = self._window
        if len(window) >= config.window_size:
            enter = window.popleft()
        else:
            enter = 0

        ready = enter
        for source in srcs:
            source_ready = register_ready[source]
            if source_ready > ready:
                ready = source_ready
        if (
            config.track_memory_dependencies
            and reads_memory
            and record.mem_address is not None
        ):
            memory_time = self._memory_ready.get(record.mem_address, 0)
            if memory_time > ready:
                ready = memory_time

        complete = ready + 1

        taken = False
        correct = False
        if self.engine is not None and is_candidate:
            taken, correct = self.engine.step(record.address, record.value)
            if taken:
                self._taken += 1
                if correct:
                    self._correct += 1
                else:
                    self._mispredicted += 1

        if dest is not None and dest != ZERO:
            if taken and correct:
                # Collapsed dependence: consumers see the predicted value
                # as soon as the producer is in flight.
                register_ready[dest] = enter
            elif taken:
                register_ready[dest] = complete + config.misprediction_penalty
            else:
                register_ready[dest] = complete
        if (
            config.track_memory_dependencies
            and writes_memory
            and record.mem_address is not None
        ):
            self._memory_ready[record.mem_address] = complete

        retire = complete if complete > self._retire_prev else self._retire_prev
        self._retire_prev = retire
        window.append(retire)

    def result(self) -> IlpResult:
        return IlpResult(
            instructions=self._instruction_count,
            cycles=self._retire_prev,
            taken_predictions=self._taken,
            correct_predictions=self._correct,
            mispredictions=self._mispredicted,
        )


def measure_ilp(
    program: Program,
    inputs: Iterable[Number] = (),
    engine: Optional[PredictionEngine] = None,
    config: Optional[IlpConfig] = None,
    max_instructions: Optional[int] = None,
) -> IlpResult:
    """Schedule one run on the abstract machine and measure its ILP.

    Args:
        program: the binary to execute.
        inputs: the run's input stream.
        engine: value-prediction engine (predictor + classification
            scheme); ``None`` disables value prediction entirely — the
            pure dataflow baseline the paper's Table 5.2 normalizes to.
        config: machine parameters.
        max_instructions: optional dynamic-instruction cap.
    """
    results = measure_ilp_many(
        program,
        inputs,
        engines={"only": engine},
        config=config,
        max_instructions=max_instructions,
    )
    return results["only"]


def measure_ilp_many(
    program: Program,
    inputs: Iterable[Number] = (),
    engines: Optional[Mapping[str, Optional[PredictionEngine]]] = None,
    config: Optional[IlpConfig] = None,
    configs: Optional[Mapping[str, IlpConfig]] = None,
    max_instructions: Optional[int] = None,
) -> Dict[str, IlpResult]:
    """Schedule several machine configurations against one execution.

    ``engines`` maps a label to a :class:`PredictionEngine` or ``None``
    (no value prediction).  All schedulers consume the same trace, so the
    program executes exactly once.  ``configs`` optionally overrides the
    shared ``config`` per label — e.g. to sweep window sizes or penalties
    in the same pass.
    """
    if engines is None:
        engines = {"baseline": None}
    configs = configs or {}
    decoded = _decode_for_scheduling(program)
    schedulers = {
        label: WindowScheduler(
            program,
            engine=engine,
            config=configs.get(label, config),
            decoded=decoded,
        )
        for label, engine in engines.items()
    }
    kwargs = {}
    if max_instructions is not None:
        kwargs["max_instructions"] = max_instructions
    feeders = [scheduler.feed for scheduler in schedulers.values()]
    if len(feeders) == 1:
        feed = feeders[0]
        for record in trace_program(program, inputs, **kwargs):
            feed(record)
    else:
        for record in trace_program(program, inputs, **kwargs):
            for feed in feeders:
                feed(record)
    return {label: scheduler.result() for label, scheduler in schedulers.items()}


def ilp_increase(with_prediction: IlpResult, baseline: IlpResult) -> float:
    """Percent ILP increase of ``with_prediction`` over ``baseline`` (Table 5.2)."""
    if baseline.ilp == 0:
        return 0.0
    return 100.0 * (with_prediction.ilp - baseline.ilp) / baseline.ilp
