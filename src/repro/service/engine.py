"""Job execution against the service's shared stores.

One :class:`ServiceEngine` owns what every tenant shares: the
content-addressed :class:`~repro.machine.TraceStore` (capture a trace
once, every later job replays it), the on-disk
:class:`~repro.runner.cache.ArtifactCache`, and the
:class:`~repro.runner.retry.RetryPolicy` under which jobs re-run.

Each ``run_*`` method reproduces the corresponding batch CLI command's
computation exactly — same entry points, same ``run_label`` strings,
same default budgets — so a service :class:`~repro.service.api.JobResult`
``output`` is byte-identical to the bytes ``python -m repro
compile/trace/profile/annotate/experiments`` would have produced.  The
e2e test and the CI smoke job assert this equivalence.

Experiment jobs genuinely multiplex onto the fault-tolerant runner:
the job graph is built by :func:`repro.runner.build_experiment_graph`
and executed by :func:`repro.runner.executor.execute_graph` under the
engine's retry policy, and the run's
:class:`~repro.runner.retry.RunReport` rides back in the result meta.

Execution happens on worker threads (the server calls :meth:`execute`
through an executor), so everything here is thread-safe: the trace
store locks its LRU, experiment contexts are created under a lock, and
per-kind telemetry uses the registry's monotonic instruments.
"""

from __future__ import annotations

import io
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..annotate import AnnotationPolicy, annotate_program, annotation_report
from ..isa import assemble, disassemble
from ..lang import CompileError, compile_source
from ..machine import DEFAULT_BUDGET, ExecutionError, TraceStore
from ..machine.tracestore import trace_key
from ..profiling import (
    MergeAccumulator,
    ProfileFormatError,
    collect_profile,
    decode_profile_payload,
    dumps_profile,
    loads_profile,
    merge_profiles,
)
from ..runner.cache import ArtifactCache
from ..runner.retry import RetryPolicy
from ..telemetry import get_registry
from .api import (
    AnnotateJob,
    ApiError,
    ClassifyJob,
    CompileJob,
    EXECUTION_ERROR,
    ExperimentJob,
    FuseJob,
    INVALID_JOB,
    Job,
    ProfileJob,
    TraceJob,
)

#: Exceptions that mean the *job* is wrong, not the server — never retried.
_JOB_FAULTS = (CompileError, ProfileFormatError, SyntaxError, ValueError, KeyError)


class ServiceEngine:
    """Executes decoded jobs against the shared tenant-wide resources.

    Args:
        store_dir: on-disk root for the shared trace store (``None``
            keeps traces memory-only).
        cache_dir: on-disk root for the shared artifact cache used by
            experiment jobs (``None`` disables it).
        retry: policy under which the server re-runs failed attempts.
    """

    def __init__(
        self,
        store_dir: Optional[Path] = None,
        cache_dir: Optional[Path] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.store_dir = Path(store_dir) if store_dir else None
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.retry = retry or RetryPolicy()
        self.traces = TraceStore(self.store_dir)
        self.artifacts = ArtifactCache(self.cache_dir) if self.cache_dir else None
        self._contexts: Dict[Tuple[float, int], Any] = {}
        self._context_lock = threading.Lock()

    # -- dispatch ----------------------------------------------------

    def execute(self, job: Job) -> Tuple[str, Dict[str, Any]]:
        """Run one job; returns ``(output text, meta)``.

        Raises :class:`ApiError` — ``invalid-job`` for payloads that can
        never succeed (never retried by the server), ``execution-error``
        for runs the machine terminated.  Any other exception is a
        transient server-side failure eligible for retry.
        """
        telemetry = get_registry()
        started = time.perf_counter()
        try:
            if isinstance(job, CompileJob):
                result = self.run_compile(job)
            elif isinstance(job, TraceJob):
                result = self.run_trace(job)
            elif isinstance(job, ProfileJob):
                result = self.run_profile(job)
            elif isinstance(job, AnnotateJob):
                result = self.run_annotate(job)
            elif isinstance(job, ExperimentJob):
                result = self.run_experiment(job)
            elif isinstance(job, FuseJob):
                result = self.run_fuse(job)
            elif isinstance(job, ClassifyJob):
                result = self.run_classify(job)
            else:  # pragma: no cover - decoding rejects unknown kinds
                raise ApiError(INVALID_JOB, f"unsupported job type {type(job).__name__}")
        except ApiError:
            telemetry.counter("serve.jobs_failed").add(1)
            raise
        except _JOB_FAULTS as error:
            telemetry.counter("serve.jobs_failed").add(1)
            raise ApiError(INVALID_JOB, f"{type(error).__name__}: {error}") from error
        finally:
            elapsed = time.perf_counter() - started
            telemetry.timer("serve.job_latency").add(elapsed)
            telemetry.timer(f"serve.job.{job.KIND}").add(elapsed)
        telemetry.counter("serve.jobs").add(1)
        return result

    # -- per-kind computations (each mirrors one CLI command) --------

    def _assemble(self, text: str, name: str):
        try:
            return assemble(text, name=name)
        except Exception as error:
            raise ApiError(INVALID_JOB, f"bad program: {error}") from error

    def run_compile(self, job: CompileJob) -> Tuple[str, Dict[str, Any]]:
        program = compile_source(job.source, name=job.name, optimize=job.optimize)
        meta = {
            "name": program.name,
            "instructions": len(program),
            "candidates": len(program.candidate_addresses),
        }
        return disassemble(program), meta

    def run_trace(self, job: TraceJob) -> Tuple[str, Dict[str, Any]]:
        program = self._assemble(job.program, job.name)
        budget = DEFAULT_BUDGET if job.max_instructions is None else job.max_instructions
        buffer = io.StringIO()
        buffer.write("# repro-trace v1\n")
        buffer.write(f"# program: {program.name}\n")
        count = 0
        try:
            for batch in self.traces.batches(
                program, job.inputs, max_instructions=budget
            ):
                count += write_trace_records(batch, buffer)
        except ExecutionError as error:
            raise ApiError(
                EXECUTION_ERROR, f"{type(error).__name__}: {error}"
            ) from error
        meta = {
            "records": count,
            "trace_key": trace_key(program, list(job.inputs), budget),
        }
        return buffer.getvalue(), meta

    def run_profile(self, job: ProfileJob) -> Tuple[str, Dict[str, Any]]:
        program = self._assemble(job.program, job.name)
        try:
            images = [
                collect_profile(
                    program,
                    list(inputs),
                    run_label=f"run-{index}",
                    max_instructions=job.max_instructions,
                    sample_every=job.sample_every,
                    store=self.traces,
                )
                for index, inputs in enumerate(job.input_sets)
            ]
        except ExecutionError as error:
            raise ApiError(
                EXECUTION_ERROR, f"{type(error).__name__}: {error}"
            ) from error
        image = images[0] if len(images) == 1 else merge_profiles(images)
        meta = {"instructions": len(image), "runs": len(images)}
        return dumps_profile(image), meta

    def run_fuse(self, job: FuseJob) -> Tuple[str, Dict[str, Any]]:
        accumulator = MergeAccumulator(
            run_label=job.name, require_common=job.require_common
        )
        sketches = 0
        for payload in job.profiles:
            if not payload.startswith("# repro-profile-image"):
                sketches += 1
            accumulator.fold(decode_profile_payload(payload))
        image = accumulator.result()
        meta = {
            "images": accumulator.images_folded,
            "sketches": sketches,
            "instructions": len(image),
        }
        return dumps_profile(image), meta

    def run_annotate(self, job: AnnotateJob) -> Tuple[str, Dict[str, Any]]:
        program = self._assemble(job.program, job.name)
        image = loads_profile(job.profile)
        policy = AnnotationPolicy(
            accuracy_threshold=job.accuracy_threshold,
            stride_threshold=job.stride_threshold,
        )
        annotated = annotate_program(program, image, policy)
        report = annotation_report(program, image, policy)
        meta = {
            "candidates": report.candidates,
            "stride_tagged": report.stride_tagged,
            "last_value_tagged": report.last_value_tagged,
        }
        return disassemble(annotated), meta

    def run_classify(self, job: ClassifyJob) -> Tuple[str, Dict[str, Any]]:
        from ..classify import ModelFormatError, annotate_with_model, loads_model, model_digest

        program = self._assemble(job.program, job.name)
        try:
            model = loads_model(job.model)
        except ModelFormatError as error:
            raise ApiError(INVALID_JOB, f"bad model: {error}") from error
        annotated = annotate_with_model(model, program)
        directives = annotated.directives()
        meta = {
            "candidates": len(program.candidate_addresses),
            "tagged": len(directives),
            "model_digest": model_digest(model),
        }
        return disassemble(annotated), meta

    def run_experiment(self, job: ExperimentJob) -> Tuple[str, Dict[str, Any]]:
        from ..experiments.runner import EXPERIMENTS
        from ..runner import build_experiment_graph
        from ..runner.executor import execute_graph

        if job.experiment not in EXPERIMENTS:
            raise ApiError(
                INVALID_JOB,
                f"unknown experiment {job.experiment!r} "
                "(see `python -m repro experiments list`)",
            )
        context = self._context(job.scale, job.training_runs)
        graph = build_experiment_graph([job.experiment], context)
        outcome = execute_graph(graph, context, jobs=1, retry=self.retry)
        table = outcome.tables.get(job.experiment)
        meta: Dict[str, Any] = {}
        if outcome.report is not None:
            meta["run_report"] = outcome.report.to_dict()
        if table is None:
            causes = [
                cause
                for entry in (outcome.report.failed if outcome.report else [])
                for cause in entry.causes
            ]
            detail = causes[-1] if causes else "experiment produced no table"
            raise ApiError(EXECUTION_ERROR, detail)
        meta["tsv"] = table.to_tsv()
        return table.format(), meta

    def _context(self, scale: float, training_runs: int):
        """One memoizing :class:`ExperimentContext` per (scale, runs) pair.

        All contexts share the engine's trace store and artifact cache,
        so every tenant's experiment jobs replay each other's traces.
        """
        from ..experiments.context import ExperimentContext

        key = (scale, training_runs)
        with self._context_lock:
            context = self._contexts.get(key)
            if context is None:
                context = ExperimentContext(
                    scale=scale,
                    training_runs=training_runs,
                    cache_dir=self.cache_dir,
                )
                context.traces = self.traces
                self._contexts[key] = context
            return context


def write_trace_records(batch, stream: io.StringIO) -> int:
    """Append one :class:`~repro.machine.TraceBatch`'s records to ``stream``.

    Emits exactly the body lines :func:`repro.machine.write_trace`
    writes, so a streamed service trace concatenates to the batch CLI's
    file format.
    """
    count = 0
    for record in batch.records():
        value = "-" if record.value is None else repr(record.value)
        mem = "-" if record.mem_address is None else repr(record.mem_address)
        stream.write(f"{record.address} {value} {record.phase} {mem}\n")
        count += 1
    return count


__all__ = ["ServiceEngine"]
