"""CLI front ends: ``python -m repro serve`` and ``python -m repro client``.

``serve`` runs the daemon in the foreground until drained (SIGINT/
SIGTERM or a client ``shutdown``), then prints the session's
:class:`~repro.runner.retry.RunReport` summary and exits with its
status.  ``client`` mirrors the batch toolchain commands one-for-one —
``compile``/``trace``/``profile``/``annotate``/``classify``/``experiment``/``fuse``
take the same flags and produce the same bytes, just computed by a
daemon that shares one trace store across every caller — plus ``status``,
``result``, ``stats``, ``health`` and ``shutdown``.

Both sides speak exclusively through :mod:`repro.service.api` types.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path
from typing import List, Optional

from ..runner.cache import default_cache_dir
from ..runner.retry import RetryPolicy
from ..telemetry import enable as enable_telemetry
from .api import (
    AnnotateJob,
    ApiError,
    ClassifyJob,
    CompileJob,
    ExperimentJob,
    FuseJob,
    ProfileJob,
    TraceJob,
)
from .client import ServiceClient
from .engine import ServiceEngine
from .server import ServiceServer

DEFAULT_PORT = 8750


# -- serve -------------------------------------------------------------------


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port (default {DEFAULT_PORT}; 0 picks a free port)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job slots (default 2)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64,
        help="maximum queued jobs before 429 queue-full (default 64)",
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=8,
        help="maximum in-flight jobs per tenant before 429 quota-exceeded "
        "(default 8)",
    )
    parser.add_argument(
        "--cache-dir", default=str(default_cache_dir()),
        help="shared artifact-cache root; traces live under <dir>/traces "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--store-dir", default=None,
        help="override the shared trace-store directory",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="keep traces and artifacts memory-only",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per failed job (default 0)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="reserved per-attempt budget recorded in the retry policy",
    )
    parser.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="write the drain RunReport here as JSON",
    )


def run_serve(arguments: argparse.Namespace) -> int:
    enable_telemetry()
    cache_dir = None if arguments.no_cache else Path(arguments.cache_dir)
    if arguments.store_dir is not None:
        store_dir: Optional[Path] = Path(arguments.store_dir)
    else:
        store_dir = (cache_dir / "traces") if cache_dir is not None else None
    engine = ServiceEngine(
        store_dir=store_dir,
        cache_dir=cache_dir,
        retry=RetryPolicy.from_cli(
            retries=arguments.retries, job_timeout=arguments.job_timeout
        ),
    )
    server = ServiceServer(
        engine=engine,
        host=arguments.host,
        port=arguments.port,
        workers=arguments.workers,
        queue_depth=arguments.queue_depth,
        tenant_quota=arguments.tenant_quota,
    )

    async def main() -> int:
        loop = asyncio.get_running_loop()

        def request_drain() -> None:
            if server.state == "serving":
                asyncio.ensure_future(server.drain())

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        serve_task = asyncio.ensure_future(server.serve())
        await asyncio.sleep(0)
        while not server.ready.is_set() and not serve_task.done():
            await asyncio.sleep(0.01)
        print(f"serving on {server.host}:{server.port}", file=sys.stderr, flush=True)
        report = await serve_task
        print(report.format(), file=sys.stderr)
        if arguments.report_json:
            Path(arguments.report_json).write_text(
                report.to_json(), encoding="utf-8"
            )
        return report.exit_code

    return asyncio.run(main())


# -- client ------------------------------------------------------------------


def add_client_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="server port"
    )
    parser.add_argument(
        "--tenant", default="default", help="tenant name for quota accounting"
    )
    parser.add_argument(
        "--priority", type=int, default=0,
        help="queue priority (higher dispatches first)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="per-request timeout"
    )
    actions = parser.add_subparsers(dest="action", required=True)

    compile_parser = actions.add_parser(
        "compile", help="compile mini-C to assembly on the server"
    )
    compile_parser.add_argument("source", help="mini-C source file")
    compile_parser.add_argument("-o", "--output", help="assembly output (default stdout)")
    compile_parser.add_argument(
        "--no-optimize", action="store_true", help="disable -O2 stand-in passes"
    )

    trace_parser = actions.add_parser(
        "trace", help="execute once on the server; result is the textual trace"
    )
    trace_parser.add_argument("program", help="assembly file")
    trace_parser.add_argument(
        "--inputs", action="append",
        help="input stream: '1,2,3' inline or '@file' (repeatable; "
        "streams concatenate)",
    )
    trace_parser.add_argument(
        "--max-instructions", type=int, default=None, help="dynamic budget"
    )
    trace_parser.add_argument("-o", "--output", help="trace output (default stdout)")

    profile_parser = actions.add_parser(
        "profile", help="collect a profile image on the server (phase 2)"
    )
    profile_parser.add_argument("program", help="assembly file")
    profile_parser.add_argument(
        "--inputs", action="append",
        help="one training input stream per flag (repeatable)",
    )
    profile_parser.add_argument(
        "--max-instructions", type=int, default=None, help="dynamic budget"
    )
    profile_parser.add_argument(
        "--sample-every",
        type=int,
        default=1,
        metavar="K",
        help="keep every K-th dynamic record (1 = full profile, the default)",
    )
    profile_parser.add_argument("-o", "--output", help="profile output (default stdout)")

    annotate_parser = actions.add_parser(
        "annotate", help="insert value-prediction directives (phase 3)"
    )
    annotate_parser.add_argument("program", help="assembly file")
    annotate_parser.add_argument("profile", help="profile image file")
    annotate_parser.add_argument(
        "--threshold", type=float, default=90.0, help="accuracy threshold [%%]"
    )
    annotate_parser.add_argument(
        "--stride-threshold", type=float, default=50.0,
        help="stride-efficiency split [%%]",
    )
    annotate_parser.add_argument(
        "-o", "--output", help="annotated assembly output (default stdout)"
    )

    experiment_parser = actions.add_parser(
        "experiment", help="run one paper table/figure on the server"
    )
    experiment_parser.add_argument("experiment", help="experiment id (e.g. table-5.2)")
    experiment_parser.add_argument(
        "--scale", type=float, default=1.0, help="workload input scale"
    )
    experiment_parser.add_argument(
        "--training-runs", type=int, default=5,
        help="training input sets to profile (default 5)",
    )

    fuse_parser = actions.add_parser(
        "fuse", help="fuse many profile images/sketches on the server"
    )
    fuse_parser.add_argument(
        "profiles", nargs="+",
        help="profile/sketch files or glob patterns (formats auto-detected)",
    )
    fuse_parser.add_argument(
        "--require-common", action="store_true",
        help="keep only instructions present in every input",
    )
    fuse_parser.add_argument(
        "-o", "--output", help="merged profile output (default stdout)"
    )

    classify_parser = actions.add_parser(
        "classify", help="re-tag a binary with a learned model on the server"
    )
    classify_parser.add_argument("model", help="repro-classify-model file")
    classify_parser.add_argument("program", help="assembly file")
    classify_parser.add_argument(
        "-o", "--output", help="annotated assembly output (default stdout)"
    )

    status_parser = actions.add_parser("status", help="one job's lifecycle state")
    status_parser.add_argument("job_id")

    result_parser = actions.add_parser(
        "result", help="stream one job's result (blocks until terminal)"
    )
    result_parser.add_argument("job_id")
    result_parser.add_argument("-o", "--output", help="output file (default stdout)")

    actions.add_parser("stats", help="queue/tenant snapshot")
    actions.add_parser("health", help="liveness probe")
    actions.add_parser(
        "shutdown", help="drain the server and print its session RunReport"
    )


def _write_output(text: str, output: Optional[str]) -> None:
    if output is None or output == "-":
        sys.stdout.write(text)
    else:
        Path(output).write_text(text, encoding="utf-8")


def _build_job(arguments: argparse.Namespace):
    from ..cli import parse_input_sets, parse_input_stream

    action = arguments.action
    if action == "compile":
        path = Path(arguments.source)
        return CompileJob(
            source=path.read_text(encoding="utf-8"),
            name=path.stem,
            optimize=not arguments.no_optimize,
        )
    if action == "trace":
        path = Path(arguments.program)
        return TraceJob(
            program=path.read_text(encoding="utf-8"),
            name=path.stem,
            inputs=tuple(parse_input_stream(arguments.inputs or [])),
            max_instructions=arguments.max_instructions,
        )
    if action == "profile":
        path = Path(arguments.program)
        return ProfileJob(
            program=path.read_text(encoding="utf-8"),
            name=path.stem,
            input_sets=tuple(
                tuple(inputs) for inputs in parse_input_sets(arguments.inputs or [""])
            ),
            max_instructions=arguments.max_instructions,
            sample_every=arguments.sample_every,
        )
    if action == "annotate":
        path = Path(arguments.program)
        return AnnotateJob(
            program=path.read_text(encoding="utf-8"),
            profile=Path(arguments.profile).read_text(encoding="utf-8"),
            name=path.stem,
            accuracy_threshold=arguments.threshold,
            stride_threshold=arguments.stride_threshold,
        )
    if action == "classify":
        path = Path(arguments.program)
        return ClassifyJob(
            program=path.read_text(encoding="utf-8"),
            model=Path(arguments.model).read_text(encoding="utf-8"),
            name=path.stem,
        )
    if action == "experiment":
        return ExperimentJob(
            experiment=arguments.experiment,
            scale=arguments.scale,
            training_runs=arguments.training_runs,
        )
    if action == "fuse":
        import glob as glob_module

        from ..profiling import encode_profile_payload

        paths: List[str] = []
        for pattern in arguments.profiles:
            matches = sorted(glob_module.glob(pattern))
            if not matches:
                raise ApiError(
                    "invalid-job", f"no profiles match {pattern!r}"
                )
            paths.extend(match for match in matches if match not in paths)
        return FuseJob(
            profiles=tuple(
                encode_profile_payload(Path(path).read_bytes()) for path in paths
            ),
            require_common=arguments.require_common,
        )
    return None


def run_client(arguments: argparse.Namespace) -> int:
    client = ServiceClient(
        host=arguments.host, port=arguments.port, timeout=arguments.timeout
    )
    try:
        action = arguments.action
        if action == "health":
            payload = client.health()
            print(f"ok state={payload.get('state')}")
            return 0
        if action == "stats":
            stats = client.stats()
            print(
                f"state={stats.state} queued={stats.queued} "
                f"running={stats.running} finished={stats.finished}"
            )
            for tenant, count in sorted(stats.tenants.items()):
                print(f"  tenant {tenant}: {count} in flight")
            return 0
        if action == "status":
            status = client.status(arguments.job_id)
            line = f"{status.job_id} {status.state}"
            if status.error is not None:
                line += f" ({status.error.code}: {status.error.message})"
            print(line)
            return 0
        if action == "result":
            result = client.result(arguments.job_id)
            _write_output(result.output, arguments.output)
            return 0
        if action == "shutdown":
            report = client.shutdown()
            print(report.format())
            return report.exit_code
        job = _build_job(arguments)
        result = client.run(job, tenant=arguments.tenant, priority=arguments.priority)
        _write_output(result.output, getattr(arguments, "output", None))
        meta = " ".join(f"{key}={value}" for key, value in sorted(result.meta.items())
                        if not isinstance(value, (dict, list)))
        print(f"{result.job_id} done {meta}".rstrip(), file=sys.stderr)
        return 0
    except ApiError as error:
        print(f"error [{error.code}]: {error.message}", file=sys.stderr)
        return 1
    except ConnectionError as error:
        print(f"cannot reach {client.host}:{client.port}: {error}", file=sys.stderr)
        return 1


__all__ = [
    "DEFAULT_PORT",
    "add_client_arguments",
    "add_serve_arguments",
    "run_client",
    "run_serve",
]
