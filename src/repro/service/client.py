"""Synchronous client library for the ``repro serve`` daemon.

Built on :mod:`http.client` (stdlib, handles chunked transfer decoding)
and typed entirely by :mod:`repro.service.api` — the same dataclasses
the server handlers use, so client and server agree on the wire format
by construction.  One connection per request mirrors the server's
``Connection: close`` policy.

Usage::

    from repro.service import ServiceClient, CompileJob

    client = ServiceClient("127.0.0.1", 8750)
    result = client.run(CompileJob(source=minic_text, name="demo"))
    print(result.output)          # the textual assembly

:meth:`ServiceClient.run` submits and blocks on the streaming result
endpoint; :meth:`submit` / :meth:`status` / :meth:`stream_result` give
finer control (e.g. overlapping many jobs before collecting any).
Server-reported failures raise :class:`~repro.service.api.ApiError`
with the taxonomy code the server chose.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, Optional, Tuple

from ..runner.retry import JobReport, RunReport
from . import api
from .api import (
    ApiError,
    ErrorInfo,
    Job,
    JobResult,
    JobStatus,
    ServerStats,
    SubmitReply,
    SubmitRequest,
)


class ServiceClient:
    """Typed HTTP client for one ``repro serve`` endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8750, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- low-level transport -----------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            decoded = json.loads(response.read().decode("utf-8"))
            return response.status, decoded
        finally:
            connection.close()

    @staticmethod
    def _check(status: int, payload: dict) -> dict:
        # Only an HTTP failure is a transport error; a 200 JobStatus for
        # a failed job legitimately carries its own ``error`` field.
        if status >= 400:
            error = payload.get("error")
            if error:
                ErrorInfo.from_dict(error).raise_()
            raise ApiError(api.INTERNAL_ERROR, f"HTTP {status} without error body")
        return payload

    # -- endpoints ----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        status, payload = self._request("GET", api.HEALTH_PATH)
        return self._check(status, payload)

    def stats(self) -> ServerStats:
        status, payload = self._request("GET", api.STATS_PATH)
        return ServerStats.from_dict(self._check(status, payload))

    def submit(
        self,
        job: Job,
        tenant: str = api.DEFAULT_TENANT,
        priority: int = 0,
    ) -> SubmitReply:
        request = SubmitRequest(job=job, tenant=tenant, priority=priority)
        status, payload = self._request("POST", api.JOBS_PATH, request.to_dict())
        return SubmitReply.from_dict(self._check(status, payload))

    def status(self, job_id: str) -> JobStatus:
        status, payload = self._request("GET", api.job_path(job_id))
        return JobStatus.from_dict(self._check(status, payload))

    def stream_result(self, job_id: str) -> Iterator[dict]:
        """The raw result event stream: ``status``/``chunk``/``end``/``error``.

        Yields each decoded ndjson event; ``http.client`` transparently
        undoes the chunked transfer encoding.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", api.result_path(job_id))
            response = connection.getresponse()
            if response.status >= 400:
                payload = json.loads(response.read().decode("utf-8"))
                self._check(response.status, payload)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def result(self, job_id: str) -> JobResult:
        """Block until ``job_id`` finishes; reassemble its streamed output.

        Raises :class:`ApiError` when the stream ends in an ``error``
        event (carrying the server's taxonomy code).
        """
        chunks = []
        for event in self.stream_result(job_id):
            kind = event.get("event")
            if kind == api.EVENT_CHUNK:
                chunks.append(event.get("data", ""))
            elif kind == api.EVENT_END:
                result = JobResult.from_dict(event["result"])
                # The chunks are authoritative for the output bytes; the
                # end event repeats them only for single-shot consumers.
                return JobResult(
                    job_id=result.job_id,
                    kind=result.kind,
                    state=result.state,
                    output="".join(chunks),
                    meta=result.meta,
                    error=result.error,
                )
            elif kind == api.EVENT_ERROR:
                result = JobResult.from_dict(event["result"])
                if result.error is not None:
                    result.error.raise_()
                raise ApiError(api.EXECUTION_ERROR, f"job {job_id} failed")
        raise ApiError(api.INTERNAL_ERROR, f"result stream for {job_id} ended early")

    def run(
        self,
        job: Job,
        tenant: str = api.DEFAULT_TENANT,
        priority: int = 0,
    ) -> JobResult:
        """Submit one job and block for its complete result."""
        reply = self.submit(job, tenant=tenant, priority=priority)
        return self.result(reply.job_id)

    def shutdown(self) -> RunReport:
        """Drain the server; returns its session :class:`RunReport`."""
        status, payload = self._request("POST", api.SHUTDOWN_PATH)
        checked = self._check(status, payload)
        report_dict = checked.get("report") or {}
        report = RunReport(
            retries=int(report_dict.get("retries", 0)),
            timeouts=int(report_dict.get("timeouts", 0)),
            pool_rebuilds=int(report_dict.get("pool_rebuilds", 0)),
        )
        for entry in report_dict.get("jobs", []):
            report.jobs.append(
                JobReport(
                    job_id=str(entry["job_id"]),
                    kind=str(entry["kind"]),
                    label=str(entry.get("label", "")),
                    status=str(entry["status"]),
                    attempts=int(entry.get("attempts", 0)),
                    seconds=float(entry.get("seconds", 0.0)),
                    causes=tuple(entry.get("causes", ())),
                )
            )
        return report


__all__ = ["ServiceClient"]
