"""The daemon's priority job queue with per-tenant admission quotas.

Admission control happens here, synchronously, at submit time: a tenant
over its in-flight quota or a queue at depth is rejected with a typed
:class:`~repro.service.api.ApiError` (HTTP 429) rather than being
accepted and starved.  Dispatch order is highest priority first, FIFO
within a priority level (a monotonic sequence number breaks ties, so
equal-priority jobs never reorder).

The queue is single-threaded by construction — every method runs on the
server's event loop — so the heap needs no lock; workers block in
:meth:`get` on an :class:`asyncio.Condition`.  A tenant's quota slot is
held from admission until :meth:`release` at the job's terminal state,
which makes the quota a bound on *in-flight* work (queued + running),
not merely on queue residency.

Telemetry: ``serve.queue_depth`` (gauge), ``serve.admissions`` /
``serve.rejections`` (counters) plus per-tenant
``serve.tenant.<tenant>.admissions`` / ``.rejections`` families.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Dict, List, Optional, Tuple

from ..telemetry import get_registry
from .api import ApiError, QUEUE_FULL, QUOTA_EXCEEDED, SHUTTING_DOWN

#: Heap entry: (negated priority, admission sequence, payload).
_Entry = Tuple[int, int, object]


class JobQueue:
    """Priority queue + admission control for one server instance.

    Args:
        max_depth: maximum *queued* (not yet dispatched) jobs.
        tenant_quota: maximum in-flight (queued + running) jobs per
            tenant.
    """

    def __init__(self, max_depth: int = 64, tenant_quota: int = 8) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if tenant_quota < 1:
            raise ValueError(f"tenant_quota must be >= 1, got {tenant_quota}")
        self.max_depth = max_depth
        self.tenant_quota = tenant_quota
        self._heap: List[_Entry] = []
        self._sequence = 0
        self._in_flight: Dict[str, int] = {}
        self._closed = False
        self._condition = asyncio.Condition()

    # -- admission ---------------------------------------------------

    def submit(self, tenant: str, priority: int, payload: object) -> int:
        """Admit one job; returns its 0-based queue position.

        Raises :class:`ApiError` (``shutting-down`` / ``quota-exceeded``
        / ``queue-full``) when the job cannot be admitted; the caller
        maps the code straight to an HTTP response.
        """
        telemetry = get_registry()
        if self._closed:
            self._reject(tenant)
            raise ApiError(SHUTTING_DOWN, "server is draining; try again later")
        if self._in_flight.get(tenant, 0) >= self.tenant_quota:
            self._reject(tenant)
            raise ApiError(
                QUOTA_EXCEEDED,
                f"tenant {tenant!r} already has {self.tenant_quota} job(s) in flight",
            )
        if len(self._heap) >= self.max_depth:
            self._reject(tenant)
            raise ApiError(QUEUE_FULL, f"queue is at depth {self.max_depth}")
        position = len(self._heap)
        heapq.heappush(self._heap, (-priority, self._sequence, payload))
        self._sequence += 1
        self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1
        telemetry.counter("serve.admissions").add(1)
        telemetry.counter(f"serve.tenant.{tenant}.admissions").add(1)
        telemetry.gauge("serve.queue_depth").set(len(self._heap))
        self._notify()
        return position

    def _reject(self, tenant: str) -> None:
        telemetry = get_registry()
        telemetry.counter("serve.rejections").add(1)
        telemetry.counter(f"serve.tenant.{tenant}.rejections").add(1)

    # -- dispatch ----------------------------------------------------

    async def get(self) -> Optional[object]:
        """The next job by priority, or ``None`` once closed and empty."""
        async with self._condition:
            while not self._heap and not self._closed:
                await self._condition.wait()
            if not self._heap:
                return None
            _, _, payload = heapq.heappop(self._heap)
            get_registry().gauge("serve.queue_depth").set(len(self._heap))
            return payload

    def release(self, tenant: str) -> None:
        """Return a tenant's quota slot at its job's terminal state."""
        count = self._in_flight.get(tenant, 0)
        if count <= 1:
            self._in_flight.pop(tenant, None)
        else:
            self._in_flight[tenant] = count - 1
        self._notify()

    # -- shutdown ----------------------------------------------------

    def close(self) -> None:
        """Stop admissions; queued jobs still drain through :meth:`get`."""
        self._closed = True
        self._notify()

    @property
    def closed(self) -> bool:
        return self._closed

    def _notify(self) -> None:
        async def wake() -> None:
            async with self._condition:
                self._condition.notify_all()

        # submit/release run on the loop thread; scheduling a task keeps
        # them synchronous (usable from plain handlers) while still
        # waking coroutines blocked in get().
        asyncio.get_running_loop().create_task(wake())

    # -- introspection -----------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._heap)

    def in_flight(self) -> Dict[str, int]:
        """Per-tenant in-flight counts (a copy)."""
        return dict(self._in_flight)


__all__ = ["JobQueue"]
