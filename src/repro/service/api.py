"""The service wire contract (schema ``repro-serve/1``).

Everything that crosses the HTTP boundary is defined here, once: job
payloads, the submission envelope, job states, status/result shapes and
the error taxonomy.  The server handlers (:mod:`repro.service.server`),
the client library (:mod:`repro.service.client`) and the ``repro
client`` CLI (:mod:`repro.service.cli`) all import these types rather
than hand-rolling dictionaries, so the wire protocol, the Python API
and the CLI cannot drift apart.

Design rules:

* Payloads are text, in the repo's existing on-disk formats — mini-C
  source, textual assembly, ``# repro-profile-image v1`` images,
  ``# repro-trace v1`` traces.  A service result is therefore
  byte-comparable to the equivalent batch CLI output.
* Every envelope carries ``"schema": "repro-serve/1"``; decoding
  rejects unknown schemas up front instead of failing deep in a
  handler.
* Errors are closed-vocabulary: an :class:`ApiError` carries one of
  :data:`ERROR_CODES`, each with a fixed HTTP status
  (:data:`HTTP_STATUS`).  Clients can switch on the code without
  parsing prose.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Version tag carried by every request and response envelope.
SCHEMA = "repro-serve/1"

# -- job states -------------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every state a job can be observed in, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

# -- error taxonomy ---------------------------------------------------------

BAD_REQUEST = "bad-request"          # malformed envelope / JSON / schema
INVALID_JOB = "invalid-job"          # well-formed but unexecutable payload
UNKNOWN_JOB = "unknown-job"          # job id the server has never seen
QUOTA_EXCEEDED = "quota-exceeded"    # tenant at its admission quota
QUEUE_FULL = "queue-full"            # global queue depth reached
SHUTTING_DOWN = "shutting-down"      # server is draining; no admissions
EXECUTION_ERROR = "execution-error"  # the job itself failed
INTERNAL_ERROR = "internal-error"    # anything else; a server bug

ERROR_CODES = (
    BAD_REQUEST,
    INVALID_JOB,
    UNKNOWN_JOB,
    QUOTA_EXCEEDED,
    QUEUE_FULL,
    SHUTTING_DOWN,
    EXECUTION_ERROR,
    INTERNAL_ERROR,
)

#: The one HTTP status each error code maps to.
HTTP_STATUS: Dict[str, int] = {
    BAD_REQUEST: 400,
    INVALID_JOB: 400,
    UNKNOWN_JOB: 404,
    QUOTA_EXCEEDED: 429,
    QUEUE_FULL: 429,
    SHUTTING_DOWN: 503,
    EXECUTION_ERROR: 500,
    INTERNAL_ERROR: 500,
}


class ApiError(Exception):
    """A failure with a closed-vocabulary ``code`` and an HTTP status."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            code = INTERNAL_ERROR
        self.code = code
        self.message = message
        super().__init__(f"{code}: {message}")

    @property
    def http_status(self) -> int:
        return HTTP_STATUS[self.code]

    def to_info(self) -> "ErrorInfo":
        return ErrorInfo(code=self.code, message=self.message)


@dataclasses.dataclass(frozen=True)
class ErrorInfo:
    """The serialized form of an :class:`ApiError`."""

    code: str
    message: str

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_dict(cls, payload: dict) -> "ErrorInfo":
        return cls(
            code=str(payload.get("code", INTERNAL_ERROR)),
            message=str(payload.get("message", "")),
        )

    def raise_(self) -> None:
        raise ApiError(self.code, self.message)


# -- endpoints --------------------------------------------------------------

HEALTH_PATH = "/v1/health"
STATS_PATH = "/v1/stats"
JOBS_PATH = "/v1/jobs"
SHUTDOWN_PATH = "/v1/shutdown"


def job_path(job_id: str) -> str:
    return f"{JOBS_PATH}/{job_id}"


def result_path(job_id: str) -> str:
    return f"{JOBS_PATH}/{job_id}/result"


# -- job payloads -----------------------------------------------------------


def _require_text(payload: dict, field: str, kind: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str) or not value:
        raise ApiError(INVALID_JOB, f"{kind} job needs a non-empty {field!r} string")
    return value


def _number_list(values: Any, kind: str, field: str) -> Tuple[Number, ...]:
    if values is None:
        return ()
    if not isinstance(values, (list, tuple)):
        raise ApiError(INVALID_JOB, f"{kind} job {field!r} must be a list of numbers")
    out: List[Number] = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ApiError(
                INVALID_JOB, f"{kind} job {field!r} must be a list of numbers"
            )
        out.append(value)
    return tuple(out)


@dataclasses.dataclass(frozen=True)
class CompileJob:
    """Phase 1: compile mini-C source to textual assembly."""

    source: str
    name: str = "<minic>"
    optimize: bool = True

    KIND = "compile"

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "source": self.source,
            "name": self.name,
            "optimize": self.optimize,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CompileJob":
        return cls(
            source=_require_text(payload, "source", cls.KIND),
            name=str(payload.get("name", "<minic>")),
            optimize=bool(payload.get("optimize", True)),
        )


@dataclasses.dataclass(frozen=True)
class TraceJob:
    """Execute once through the shared store; result is the textual trace."""

    program: str
    name: str = "program"
    inputs: Tuple[Number, ...] = ()
    max_instructions: Optional[int] = None

    KIND = "trace"

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "program": self.program,
            "name": self.name,
            "inputs": list(self.inputs),
            "max_instructions": self.max_instructions,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceJob":
        budget = payload.get("max_instructions")
        if budget is not None and (isinstance(budget, bool) or not isinstance(budget, int)):
            raise ApiError(INVALID_JOB, "trace job max_instructions must be an int")
        return cls(
            program=_require_text(payload, "program", cls.KIND),
            name=str(payload.get("name", "program")),
            inputs=_number_list(payload.get("inputs"), cls.KIND, "inputs"),
            max_instructions=budget,
        )


@dataclasses.dataclass(frozen=True)
class ProfileJob:
    """Phase 2: one profile image over one or more training input streams."""

    program: str
    name: str = "program"
    input_sets: Tuple[Tuple[Number, ...], ...] = ((),)
    max_instructions: Optional[int] = None
    sample_every: int = 1

    KIND = "profile"

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "program": self.program,
            "name": self.name,
            "input_sets": [list(inputs) for inputs in self.input_sets],
            "max_instructions": self.max_instructions,
            "sample_every": self.sample_every,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProfileJob":
        raw_sets = payload.get("input_sets")
        if raw_sets is None:
            raw_sets = [[]]
        if not isinstance(raw_sets, (list, tuple)) or not raw_sets:
            raise ApiError(
                INVALID_JOB, "profile job 'input_sets' must be a non-empty list"
            )
        input_sets = tuple(
            _number_list(inputs, cls.KIND, "input_sets") for inputs in raw_sets
        )
        budget = payload.get("max_instructions")
        if budget is not None and (isinstance(budget, bool) or not isinstance(budget, int)):
            raise ApiError(INVALID_JOB, "profile job max_instructions must be an int")
        sample_every = payload.get("sample_every", 1)
        if (
            isinstance(sample_every, bool)
            or not isinstance(sample_every, int)
            or sample_every < 1
        ):
            raise ApiError(
                INVALID_JOB, "profile job sample_every must be an int >= 1"
            )
        return cls(
            program=_require_text(payload, "program", cls.KIND),
            name=str(payload.get("name", "program")),
            input_sets=input_sets,
            max_instructions=budget,
            sample_every=sample_every,
        )


@dataclasses.dataclass(frozen=True)
class AnnotateJob:
    """Phase 3: re-tag a binary from a profile image."""

    program: str
    profile: str
    name: str = "program"
    accuracy_threshold: float = 90.0
    stride_threshold: float = 50.0

    KIND = "annotate"

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "program": self.program,
            "profile": self.profile,
            "name": self.name,
            "accuracy_threshold": self.accuracy_threshold,
            "stride_threshold": self.stride_threshold,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AnnotateJob":
        for field in ("accuracy_threshold", "stride_threshold"):
            value = payload.get(field)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, (int, float))
            ):
                raise ApiError(INVALID_JOB, f"annotate job {field!r} must be a number")
        return cls(
            program=_require_text(payload, "program", cls.KIND),
            profile=_require_text(payload, "profile", cls.KIND),
            name=str(payload.get("name", "program")),
            accuracy_threshold=float(payload.get("accuracy_threshold", 90.0)),
            stride_threshold=float(payload.get("stride_threshold", 50.0)),
        )


@dataclasses.dataclass(frozen=True)
class ExperimentJob:
    """One paper table/figure on the fault-tolerant runner."""

    experiment: str
    scale: float = 1.0
    training_runs: int = 5

    KIND = "experiment"

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "experiment": self.experiment,
            "scale": self.scale,
            "training_runs": self.training_runs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentJob":
        scale = payload.get("scale", 1.0)
        runs = payload.get("training_runs", 5)
        if isinstance(scale, bool) or not isinstance(scale, (int, float)) or scale <= 0:
            raise ApiError(INVALID_JOB, "experiment job 'scale' must be positive")
        if isinstance(runs, bool) or not isinstance(runs, int) or runs < 1:
            raise ApiError(INVALID_JOB, "experiment job 'training_runs' must be >= 1")
        return cls(
            experiment=_require_text(payload, "experiment", cls.KIND),
            scale=float(scale),
            training_runs=runs,
        )


@dataclasses.dataclass(frozen=True)
class FuseJob:
    """Fuse tenant-uploaded profiles/sketches into one merged image.

    Each ``profiles`` entry is either a ``# repro-profile-image v1``
    text image verbatim, or a base64-encoded binary sketch
    (:mod:`repro.profiling.sketch`) — the engine sniffs per entry.  The
    result output is the merged image in the v1 text format, byte-
    identical to ``repro fuse`` over the same inputs.
    """

    profiles: Tuple[str, ...]
    name: str = "merged"
    require_common: bool = False

    KIND = "fuse"

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "profiles": list(self.profiles),
            "name": self.name,
            "require_common": self.require_common,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuseJob":
        raw = payload.get("profiles")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ApiError(
                INVALID_JOB, "fuse job 'profiles' must be a non-empty list"
            )
        entries: List[str] = []
        for entry in raw:
            if not isinstance(entry, str) or not entry:
                raise ApiError(
                    INVALID_JOB,
                    "fuse job 'profiles' entries must be non-empty strings",
                )
            entries.append(entry)
        return cls(
            profiles=tuple(entries),
            name=str(payload.get("name", "merged")),
            require_common=bool(payload.get("require_common", False)),
        )


@dataclasses.dataclass(frozen=True)
class ClassifyJob:
    """Re-tag a binary with a learned predictability model.

    ``model`` is a ``repro-classify-model/1`` file verbatim
    (:mod:`repro.classify`); the result output is the annotated assembly,
    byte-identical to ``repro classify predict`` over the same inputs.
    """

    program: str
    model: str
    name: str = "program"

    KIND = "classify"

    def to_dict(self) -> dict:
        return {
            "kind": self.KIND,
            "program": self.program,
            "model": self.model,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClassifyJob":
        return cls(
            program=_require_text(payload, "program", cls.KIND),
            model=_require_text(payload, "model", cls.KIND),
            name=str(payload.get("name", "program")),
        )


Job = Union[
    CompileJob, TraceJob, ProfileJob, AnnotateJob, ExperimentJob, FuseJob, ClassifyJob
]

_JOB_TYPES = {
    cls.KIND: cls
    for cls in (
        CompileJob,
        TraceJob,
        ProfileJob,
        AnnotateJob,
        ExperimentJob,
        FuseJob,
        ClassifyJob,
    )
}

#: The closed set of job kinds the service accepts.
JOB_KINDS = tuple(_JOB_TYPES)


def job_from_dict(payload: Any) -> Job:
    """Decode one job payload; raises :class:`ApiError` on anything off."""
    if not isinstance(payload, dict):
        raise ApiError(BAD_REQUEST, "job payload must be an object")
    kind = payload.get("kind")
    job_type = _JOB_TYPES.get(kind)
    if job_type is None:
        raise ApiError(
            INVALID_JOB,
            f"unknown job kind {kind!r} (expected one of {', '.join(JOB_KINDS)})",
        )
    return job_type.from_dict(payload)


def job_digest(job: Job) -> str:
    """SHA-256 content digest of a job's canonical JSON form."""
    canonical = json.dumps(job.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- envelopes --------------------------------------------------------------

DEFAULT_TENANT = "default"


@dataclasses.dataclass(frozen=True)
class SubmitRequest:
    """``POST /v1/jobs`` body: one job plus its admission metadata."""

    job: Job
    tenant: str = DEFAULT_TENANT
    priority: int = 0

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "tenant": self.tenant,
            "priority": self.priority,
            "job": self.job.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "SubmitRequest":
        if not isinstance(payload, dict):
            raise ApiError(BAD_REQUEST, "submit body must be a JSON object")
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ApiError(
                BAD_REQUEST, f"unsupported schema {schema!r} (expected {SCHEMA!r})"
            )
        tenant = payload.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise ApiError(BAD_REQUEST, "tenant must be a non-empty string")
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ApiError(BAD_REQUEST, "priority must be an integer")
        return cls(
            job=job_from_dict(payload.get("job")), tenant=tenant, priority=priority
        )


@dataclasses.dataclass(frozen=True)
class SubmitReply:
    """``POST /v1/jobs`` response: the admitted job's identity."""

    job_id: str
    state: str
    position: int

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "job_id": self.job_id,
            "state": self.state,
            "position": self.position,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SubmitReply":
        return cls(
            job_id=str(payload["job_id"]),
            state=str(payload["state"]),
            position=int(payload["position"]),
        )


@dataclasses.dataclass(frozen=True)
class JobStatus:
    """``GET /v1/jobs/<id>`` response: where one job is in its lifecycle."""

    job_id: str
    kind: str
    tenant: str
    state: str
    priority: int = 0
    attempts: int = 0
    seconds: float = 0.0
    error: Optional[ErrorInfo] = None

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "job_id": self.job_id,
            "kind": self.kind,
            "tenant": self.tenant,
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "seconds": self.seconds,
            "error": self.error.to_dict() if self.error else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobStatus":
        error = payload.get("error")
        return cls(
            job_id=str(payload["job_id"]),
            kind=str(payload["kind"]),
            tenant=str(payload["tenant"]),
            state=str(payload["state"]),
            priority=int(payload.get("priority", 0)),
            attempts=int(payload.get("attempts", 0)),
            seconds=float(payload.get("seconds", 0.0)),
            error=ErrorInfo.from_dict(error) if error else None,
        )


@dataclasses.dataclass(frozen=True)
class JobResult:
    """The terminal outcome of one job.

    ``output`` is the job's primary artifact as text — exactly the bytes
    the equivalent batch CLI command would have produced on stdout (or
    written with ``-o``).  ``meta`` carries the side-channel facts the
    CLI prints to stderr (instruction counts, annotation tallies, the
    experiment ``RunReport``), keyed per job kind.
    """

    job_id: str
    kind: str
    state: str
    output: str = ""
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)
    error: Optional[ErrorInfo] = None

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "output": self.output,
            "meta": self.meta,
            "error": self.error.to_dict() if self.error else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobResult":
        error = payload.get("error")
        return cls(
            job_id=str(payload["job_id"]),
            kind=str(payload["kind"]),
            state=str(payload["state"]),
            output=str(payload.get("output", "")),
            meta=dict(payload.get("meta") or {}),
            error=ErrorInfo.from_dict(error) if error else None,
        )


@dataclasses.dataclass(frozen=True)
class ServerStats:
    """``GET /v1/stats`` response: one queue/tenant snapshot."""

    state: str
    queued: int
    running: int
    finished: int
    tenants: Dict[str, int]
    queue_depth: int
    tenant_quota: int

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "state": self.state,
            "queued": self.queued,
            "running": self.running,
            "finished": self.finished,
            "tenants": dict(self.tenants),
            "queue_depth": self.queue_depth,
            "tenant_quota": self.tenant_quota,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServerStats":
        return cls(
            state=str(payload["state"]),
            queued=int(payload["queued"]),
            running=int(payload["running"]),
            finished=int(payload["finished"]),
            tenants={
                str(name): int(count)
                for name, count in (payload.get("tenants") or {}).items()
            },
            queue_depth=int(payload["queue_depth"]),
            tenant_quota=int(payload["tenant_quota"]),
        )


#: Result-stream event names (``GET /v1/jobs/<id>/result`` ndjson lines).
EVENT_STATUS = "status"
EVENT_CHUNK = "chunk"
EVENT_END = "end"
EVENT_ERROR = "error"


__all__ = [
    "ApiError",
    "AnnotateJob",
    "BAD_REQUEST",
    "CANCELLED",
    "ClassifyJob",
    "CompileJob",
    "DEFAULT_TENANT",
    "DONE",
    "ERROR_CODES",
    "EVENT_CHUNK",
    "EVENT_END",
    "EVENT_ERROR",
    "EVENT_STATUS",
    "EXECUTION_ERROR",
    "ErrorInfo",
    "ExperimentJob",
    "FAILED",
    "FuseJob",
    "HEALTH_PATH",
    "HTTP_STATUS",
    "INTERNAL_ERROR",
    "INVALID_JOB",
    "JOBS_PATH",
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobResult",
    "JobStatus",
    "ProfileJob",
    "QUEUED",
    "QUEUE_FULL",
    "QUOTA_EXCEEDED",
    "RUNNING",
    "SCHEMA",
    "SHUTDOWN_PATH",
    "SHUTTING_DOWN",
    "STATS_PATH",
    "ServerStats",
    "SubmitReply",
    "SubmitRequest",
    "TERMINAL_STATES",
    "TraceJob",
    "UNKNOWN_JOB",
    "job_digest",
    "job_from_dict",
    "job_path",
    "result_path",
]
