"""Profiling-as-a-service: the daemon behind ``python -m repro serve``.

The paper's central economy is *profile once, reuse the result*; this
package is that economy as a long-running service.  One process owns a
shared :class:`~repro.machine.TraceStore` and artifact cache, accepts
compile/trace/profile/annotate/classify/experiment jobs from many
tenants over HTTP, and multiplexes them onto the fault-tolerant runner.

Layering — the wire contract is the single source of truth:

* :mod:`repro.service.api` — versioned request/response dataclasses
  (schema ``repro-serve/1``), job states and the error taxonomy.  The
  server, the client library and the CLI all import their types from
  here, so the three can never drift.
* :mod:`repro.service.queue` — the priority job queue with per-tenant
  admission quotas.
* :mod:`repro.service.engine` — executes one job against the shared
  stores, byte-identical to the equivalent batch CLI invocation.
* :mod:`repro.service.server` — the stdlib-asyncio HTTP daemon:
  streaming (chunked) result delivery and graceful drain into a
  :class:`~repro.runner.retry.RunReport`.
* :mod:`repro.service.client` — the synchronous client library used by
  ``python -m repro client``.
"""

from .api import (
    SCHEMA,
    AnnotateJob,
    ApiError,
    ClassifyJob,
    CompileJob,
    ErrorInfo,
    ExperimentJob,
    FuseJob,
    JobResult,
    JobStatus,
    ProfileJob,
    SubmitReply,
    SubmitRequest,
    TraceJob,
)
from .client import ServiceClient
from .server import ServiceServer

__all__ = [
    "SCHEMA",
    "AnnotateJob",
    "ApiError",
    "ClassifyJob",
    "CompileJob",
    "ErrorInfo",
    "ExperimentJob",
    "FuseJob",
    "JobResult",
    "JobStatus",
    "ProfileJob",
    "ServiceClient",
    "ServiceServer",
    "SubmitReply",
    "SubmitRequest",
    "TraceJob",
]
