"""The stdlib-asyncio HTTP daemon behind ``python -m repro serve``.

One process, one event loop, no dependencies beyond the standard
library: requests are parsed straight off :func:`asyncio.start_server`
streams (HTTP/1.1, one request per connection, ``Connection: close``).
Submitted jobs flow through the :class:`~repro.service.queue.JobQueue`
to a small pool of worker coroutines; the compute itself runs on a
thread pool so the event loop keeps serving while a job simulates.

Endpoints (all shapes defined in :mod:`repro.service.api`):

========  ==========================  =======================================
method    path                        body / response
========  ==========================  =======================================
GET       ``/v1/health``              liveness + server state
GET       ``/v1/stats``               ``ServerStats``
POST      ``/v1/jobs``                ``SubmitRequest`` -> ``SubmitReply``
GET       ``/v1/jobs/<id>``           ``JobStatus``
GET       ``/v1/jobs/<id>/result``    chunked ndjson event stream
POST      ``/v1/shutdown``            drain, then the ``RunReport``
========  ==========================  =======================================

The result stream is chunked transfer encoding, one JSON event per
line: ``status`` events while the job progresses, then the output in
``chunk`` events (16 KiB apiece, so a long experiment table streams
instead of buffering), then one ``end`` event carrying the result meta
— or one ``error`` event.  Clients reassemble the chunks; the bytes
equal the batch CLI's output exactly.

Graceful shutdown (``POST /v1/shutdown`` or SIGINT) closes admissions,
drains every admitted job to a terminal state, and reports the whole
service session as a :class:`~repro.runner.retry.RunReport` (schema
``repro-run/1``) — the same artifact a batch engine run produces.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..runner.retry import (
    FAILED as RUN_FAILED,
    JobReport,
    OK as RUN_OK,
    RetryPolicy,
    RunReport,
    SKIPPED as RUN_SKIPPED,
)
from ..telemetry import get_registry
from . import api
from .api import ApiError, ErrorInfo, JobResult, JobStatus, ServerStats, SubmitReply
from .engine import ServiceEngine
from .queue import JobQueue

#: Result-stream chunk size, in characters of output per ``chunk`` event.
CHUNK_SIZE = 16 * 1024

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class JobEntry:
    """Server-side lifecycle record of one admitted job."""

    __slots__ = (
        "job_id", "job", "tenant", "priority", "state", "attempts",
        "seconds", "output", "meta", "error",
    )

    def __init__(self, job_id: str, job: api.Job, tenant: str, priority: int) -> None:
        self.job_id = job_id
        self.job = job
        self.tenant = tenant
        self.priority = priority
        self.state = api.QUEUED
        self.attempts = 0
        self.seconds = 0.0
        self.output = ""
        self.meta: Dict[str, Any] = {}
        self.error: Optional[ErrorInfo] = None

    @property
    def terminal(self) -> bool:
        return self.state in api.TERMINAL_STATES

    def status(self) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            kind=self.job.KIND,
            tenant=self.tenant,
            state=self.state,
            priority=self.priority,
            attempts=self.attempts,
            seconds=self.seconds,
            error=self.error,
        )

    def result(self) -> JobResult:
        return JobResult(
            job_id=self.job_id,
            kind=self.job.KIND,
            state=self.state,
            output=self.output,
            meta=self.meta,
            error=self.error,
        )

    def report(self) -> JobReport:
        """This job as one :class:`~repro.runner.retry.RunReport` entry."""
        status = {api.DONE: RUN_OK, api.FAILED: RUN_FAILED}.get(self.state, RUN_SKIPPED)
        causes: Tuple[str, ...] = ()
        if self.error is not None:
            causes = (f"{self.error.code}: {self.error.message}",)
        return JobReport(
            job_id=self.job_id,
            kind=self.job.KIND,
            label=f"{self.tenant}/{self.job.KIND}",
            status=status,
            attempts=self.attempts,
            seconds=self.seconds,
            causes=causes,
        )


class ServiceServer:
    """The daemon: queue, workers, HTTP front end, drain logic.

    Args:
        engine: the shared-store executor (a default one is built when
            omitted).
        host / port: bind address; port 0 picks a free port, exposed as
            :attr:`port` once serving.
        workers: concurrent job slots (worker coroutines + threads).
        queue_depth / tenant_quota: admission limits
            (see :class:`~repro.service.queue.JobQueue`).
    """

    def __init__(
        self,
        engine: Optional[ServiceEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_depth: int = 64,
        tenant_quota: int = 8,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.engine = engine or ServiceEngine()
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_depth = queue_depth
        self.tenant_quota = tenant_quota
        self.state = "serving"
        self.ready = threading.Event()
        self.report: Optional[RunReport] = None
        self._entries: Dict[str, JobEntry] = {}
        self._order: List[str] = []
        self._sequence = 0
        self._retries = 0
        self._queue: Optional[JobQueue] = None
        self._changed: Optional[asyncio.Condition] = None
        self._stopping: Optional[asyncio.Event] = None
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle ---------------------------------------------------

    async def serve(self) -> RunReport:
        """Run until drained; returns the session's :class:`RunReport`."""
        self._loop = asyncio.get_running_loop()
        self._queue = JobQueue(self.queue_depth, self.tenant_quota)
        self._changed = asyncio.Condition()
        self._stopping = asyncio.Event()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        worker_tasks = [
            asyncio.ensure_future(self._worker()) for _ in range(self.workers)
        ]
        self.ready.set()
        try:
            await self._stopping.wait()
            await asyncio.gather(*worker_tasks)
        finally:
            server.close()
            await server.wait_closed()
            self._pool.shutdown(wait=True)
            self.ready.clear()
        if self.report is None:
            self.report = self._build_report()
        return self.report

    def run_in_thread(self) -> threading.Thread:
        """Start :meth:`serve` on a daemon thread (tests, embedding)."""

        def runner() -> None:
            asyncio.run(self.serve())

        thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
        thread.start()
        if not self.ready.wait(timeout=30.0):
            raise RuntimeError("service failed to start within 30s")
        return thread

    async def drain(self) -> RunReport:
        """Stop admissions, finish every admitted job, report the session."""
        assert self._queue is not None and self._changed is not None
        self.state = "draining"
        self._queue.close()
        async with self._changed:
            await self._changed.wait_for(
                lambda: all(e.terminal for e in self._entries.values())
            )
        report = self._build_report()
        self.report = report
        get_registry().counter("serve.drains").add(1)
        self._stopping.set()
        return report

    def _build_report(self) -> RunReport:
        report = RunReport(retries=self._retries)
        for job_id in self._order:
            report.jobs.append(self._entries[job_id].report())
        return report

    # -- job lifecycle -----------------------------------------------

    def _admit(self, request: api.SubmitRequest) -> SubmitReply:
        digest = api.job_digest(request.job)
        job_id = f"{request.job.KIND}-{self._sequence:05d}-{digest[:8]}"
        entry = JobEntry(job_id, request.job, request.tenant, request.priority)
        position = self._queue.submit(request.tenant, request.priority, entry)
        self._sequence += 1
        self._entries[job_id] = entry
        self._order.append(job_id)
        return SubmitReply(job_id=job_id, state=entry.state, position=position)

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            entry = await self._queue.get()
            if entry is None:
                return
            await self._run_entry(entry)

    async def _run_entry(self, entry: JobEntry) -> None:
        policy = self.engine.retry
        started = time.perf_counter()
        await self._transition(entry, api.RUNNING)
        for attempt in range(1, policy.max_attempts + 1):
            entry.attempts = attempt
            try:
                output, meta = await self._loop.run_in_executor(
                    self._pool, self.engine.execute, entry.job
                )
            except ApiError as error:
                # A typed failure is deterministic — the job payload or
                # the simulated machine, not the server — so retrying
                # cannot help.
                entry.error = error.to_info()
                break
            except Exception as error:  # noqa: BLE001 - boundary: anything else is transient
                entry.error = ErrorInfo(
                    api.INTERNAL_ERROR, f"{type(error).__name__}: {error}"
                )
                if attempt < policy.max_attempts:
                    self._retries += 1
                    get_registry().counter("serve.retries").add(1)
                    await asyncio.sleep(policy.backoff_seconds(entry.job_id, attempt))
            else:
                entry.output = output
                entry.meta = meta
                entry.error = None
                break
        entry.seconds = time.perf_counter() - started
        self._queue.release(entry.tenant)
        await self._transition(
            entry, api.DONE if entry.error is None else api.FAILED
        )

    async def _transition(self, entry: JobEntry, state: str) -> None:
        entry.state = state
        async with self._changed:
            self._changed.notify_all()

    # -- HTTP front end ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, body = await self._read_request(reader)
        except (ValueError, asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        get_registry().counter("serve.requests").add(1)
        try:
            await self._route(method, path, body, writer)
        except ApiError as error:
            await self._send_json(
                writer,
                error.http_status,
                {"schema": api.SCHEMA, "error": error.to_info().to_dict()},
            )
        except ConnectionError:
            pass
        except Exception as error:  # noqa: BLE001 - last-resort 500
            info = ErrorInfo(api.INTERNAL_ERROR, f"{type(error).__name__}: {error}")
            try:
                await self._send_json(
                    writer, 500, {"schema": api.SCHEMA, "error": info.to_dict()}
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _route(
        self, method: str, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        if path == api.HEALTH_PATH and method == "GET":
            await self._send_json(
                writer, 200, {"schema": api.SCHEMA, "ok": True, "state": self.state}
            )
        elif path == api.STATS_PATH and method == "GET":
            await self._send_json(writer, 200, self._stats().to_dict())
        elif path == api.JOBS_PATH and method == "POST":
            reply = self._admit(self._decode_submit(body))
            await self._send_json(writer, 202, reply.to_dict())
        elif path == api.SHUTDOWN_PATH and method == "POST":
            report = await self.drain()
            await self._send_json(
                writer, 200, {"schema": api.SCHEMA, "report": report.to_dict()}
            )
        elif path.startswith(api.JOBS_PATH + "/"):
            await self._route_job(method, path, writer)
        else:
            raise ApiError(api.BAD_REQUEST, f"no route for {method} {path}")

    async def _route_job(
        self, method: str, path: str, writer: asyncio.StreamWriter
    ) -> None:
        tail = path[len(api.JOBS_PATH) + 1 :]
        if tail.endswith("/result"):
            job_id, want_result = tail[: -len("/result")], True
        else:
            job_id, want_result = tail, False
        entry = self._entries.get(job_id)
        if entry is None or method != "GET":
            if method != "GET":
                raise ApiError(api.BAD_REQUEST, f"no route for {method} {path}")
            raise ApiError(api.UNKNOWN_JOB, f"no such job {job_id!r}")
        if want_result:
            await self._stream_result(entry, writer)
        else:
            await self._send_json(writer, 200, entry.status().to_dict())

    def _decode_submit(self, body: bytes) -> api.SubmitRequest:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ApiError(api.BAD_REQUEST, f"body is not JSON: {error}") from error
        return api.SubmitRequest.from_dict(payload)

    def _stats(self) -> ServerStats:
        states = [entry.state for entry in self._entries.values()]
        return ServerStats(
            state=self.state,
            queued=states.count(api.QUEUED),
            running=states.count(api.RUNNING),
            finished=sum(1 for state in states if state in api.TERMINAL_STATES),
            tenants=self._queue.in_flight() if self._queue else {},
            queue_depth=self.queue_depth,
            tenant_quota=self.tenant_quota,
        )

    # -- streaming result delivery -----------------------------------

    async def _stream_result(
        self, entry: JobEntry, writer: asyncio.StreamWriter
    ) -> None:
        await self._send_headers(
            writer, 200, "application/x-ndjson", chunked=True
        )
        last_state = None
        while not entry.terminal:
            if entry.state != last_state:
                last_state = entry.state
                await self._send_chunk(
                    writer,
                    {"event": api.EVENT_STATUS, "status": entry.status().to_dict()},
                )
                continue
            async with self._changed:
                # wait_for re-checks under the lock, so a transition
                # between the loop test and this wait cannot be missed.
                await self._changed.wait_for(lambda: entry.state != last_state)
        if entry.state == api.DONE:
            output = entry.output
            for offset in range(0, len(output), CHUNK_SIZE) or (0,):
                await self._send_chunk(
                    writer,
                    {
                        "event": api.EVENT_CHUNK,
                        "data": output[offset : offset + CHUNK_SIZE],
                    },
                )
            # The chunks above are authoritative for the output bytes;
            # the end event carries only identity + meta.
            summary = entry.result().to_dict()
            summary["output"] = ""
            await self._send_chunk(
                writer, {"event": api.EVENT_END, "result": summary}
            )
        else:
            await self._send_chunk(
                writer,
                {"event": api.EVENT_ERROR, "result": entry.result().to_dict()},
            )
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _send_chunk(self, writer: asyncio.StreamWriter, event: dict) -> None:
        data = (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await writer.drain()

    # -- response plumbing -------------------------------------------

    async def _send_headers(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        *,
        chunked: bool = False,
        length: Optional[int] = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            "Connection: close",
        ]
        if chunked:
            lines.append("Transfer-Encoding: chunked")
        else:
            lines.append(f"Content-Length: {length or 0}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        await self._send_headers(
            writer, status, "application/json", length=len(body)
        )
        writer.write(body)
        await writer.drain()


__all__ = ["CHUNK_SIZE", "JobEntry", "ServiceServer"]
