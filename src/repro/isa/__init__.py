"""The reproduction's RISC-like instruction set (the paper's SPARC stand-in).

Public surface:

* :class:`Opcode`, :class:`Category` — operations and their measurement
  classes (integer ALU, FP computation, int/FP loads, ...).
* :class:`Instruction` — immutable instruction record.
* :class:`Program` — executable image (code + data + symbols).
* :class:`Directive` — the ``stride`` / ``last-value`` opcode hints of the
  profile-guided classification scheme.
* :func:`assemble` / :func:`disassemble` — textual format round-trip.
"""

from .directives import Directive
from .instruction import Instruction, Number
from .opcodes import Category, Opcode, opcode_from_mnemonic
from .program import Program, ProgramError, build_program
from .registers import (
    FP,
    GP,
    NUM_REGISTERS,
    RA,
    SP,
    TEMP_FIRST,
    TEMP_LAST,
    ZERO,
    parse_register,
    register_name,
)
from .assembler import AssemblerError, assemble
from .disassembler import disassemble

__all__ = [
    "AssemblerError",
    "Category",
    "Directive",
    "FP",
    "GP",
    "Instruction",
    "NUM_REGISTERS",
    "Number",
    "Opcode",
    "Program",
    "ProgramError",
    "RA",
    "SP",
    "TEMP_FIRST",
    "TEMP_LAST",
    "ZERO",
    "assemble",
    "build_program",
    "disassemble",
    "opcode_from_mnemonic",
    "parse_register",
    "register_name",
]
