"""Register-file conventions for the reproduction ISA.

The machine has 32 general-purpose registers, ``r0`` .. ``r31``.  Registers
hold Python numbers (int or float); the *opcode*, not the register file,
decides whether an instruction counts as integer or floating point — the
same split the paper's measurements use.

Software conventions (fixed by the mini-C code generator):

========  =====  ==========================================
Register  Alias  Role
========  =====  ==========================================
r0        zero   hardwired zero; writes are discarded
r1..r23   t0..   expression temporaries (caller-saved)
r24..r27  a0..a3 scratch used around calls
r28       gp     global pointer (base of the data segment)
r29       sp     stack pointer
r30       fp     frame pointer
r31       ra     return address
========  =====  ==========================================
"""

from __future__ import annotations

NUM_REGISTERS = 32

ZERO = 0
GP = 28
SP = 29
FP = 30
RA = 31

#: First and one-past-last register of the temporary pool available to the
#: expression code generator.
TEMP_FIRST = 1
TEMP_LAST = 24  # exclusive

_ALIASES = {"zero": ZERO, "gp": GP, "sp": SP, "fp": FP, "ra": RA}
_NAMES = {ZERO: "zero", GP: "gp", SP: "sp", FP: "fp", RA: "ra"}


def register_name(index: int) -> str:
    """Return the canonical assembler name for register ``index``."""
    if index in _NAMES:
        return _NAMES[index]
    return f"r{index}"


def parse_register(name: str) -> int:
    """Parse an assembler register name (``r7``, ``sp``, ...) to its index.

    Raises:
        ValueError: if the name is not a valid register.
    """
    lowered = name.lower()
    if lowered in _ALIASES:
        return _ALIASES[lowered]
    if lowered.startswith("r"):
        try:
            index = int(lowered[1:])
        except ValueError:
            raise ValueError(f"invalid register name: {name!r}") from None
        if 0 <= index < NUM_REGISTERS:
            return index
    raise ValueError(f"invalid register name: {name!r}")
