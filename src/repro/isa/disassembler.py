"""Disassembler: render a :class:`~repro.isa.program.Program` back to text.

The output round-trips through :func:`repro.isa.assembler.assemble` —
re-assembling a disassembly yields an equivalent program (same
instructions, same data image).  Branch targets are rendered as generated
labels so the output stays readable after annotation.
"""

from __future__ import annotations

from typing import Dict, List

from .instruction import Instruction
from .program import Program
from .registers import register_name
from .directives import SUFFIX_OF
from .formats import FORMATS


def disassemble(program: Program) -> str:
    """Return assembler text for ``program``."""
    lines: List[str] = [f".name {program.name}"]
    if program.data:
        lines.append(".data")
        address_to_symbol = {addr: sym for sym, addr in program.symbols.items()}
        expected = 0
        for address in sorted(program.data):
            if address != expected:
                lines.append(f".org {address}")
            expected = address + 1
            prefix = ""
            if address in address_to_symbol:
                prefix = f"{address_to_symbol[address]}: "
            lines.append(f"{prefix}{program.data[address]!r}")
    lines.append(".text")
    target_labels = _target_labels(program)
    for address, instruction in enumerate(program.instructions):
        if address in target_labels:
            lines.append(f"{target_labels[address]}:")
        lines.append("    " + _render(instruction, target_labels))
    return "\n".join(lines) + "\n"


def _target_labels(program: Program) -> Dict[int, str]:
    """Map every branch/jump/call target address to a stable label name."""
    address_to_label = {addr: name for name, addr in program.labels.items()}
    labels: Dict[int, str] = {}
    for instruction in program.instructions:
        target = instruction.target
        if target is None or target in labels:
            continue
        labels[target] = address_to_label.get(target, f"L{target}")
    return labels


def _render(instruction: Instruction, labels: Dict[int, str]) -> str:
    mnemonic = instruction.opcode.value
    if instruction.directive is not None:
        mnemonic = f"{mnemonic}.{SUFFIX_OF[instruction.directive]}"
    signature = FORMATS[instruction.opcode]
    operands: List[str] = []
    src_iter = iter(instruction.srcs)
    for kind in signature:
        if kind == "d":
            operands.append(register_name(instruction.dest))
        elif kind == "s":
            operands.append(register_name(next(src_iter)))
        elif kind == "i":
            operands.append(repr(instruction.imm))
        else:  # "t"
            operands.append(labels[instruction.target])
    if operands:
        return f"{mnemonic} " + ", ".join(operands)
    return mnemonic
