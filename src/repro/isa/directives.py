"""Value-predictability opcode directives (the paper's Section 3.2).

The profile-guided scheme communicates classification results to the
hardware through two opcode directives:

* ``STRIDE`` — the instruction tends to exhibit stride patterns and should
  be allocated into the stride prediction table;
* ``LAST_VALUE`` — the instruction tends to repeat its most recent value
  and should be allocated into the last-value prediction table.

An instruction carrying *no* directive is "not recommended to be value
predicted" and is never allocated into a prediction table by the
profile-guided classifier.

The paper considers such directives feasible because contemporary
processors (PowerPC 601) already consumed branch hints from opcode bits.
"""

from __future__ import annotations

import enum


class Directive(enum.Enum):
    """A value-predictability hint carried in an instruction's opcode."""

    STRIDE = "stride"
    LAST_VALUE = "last_value"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Directive.{self.name}"


#: Assembler suffix -> directive.  The assembler writes directives as
#: ``add.s`` (stride) / ``add.lv`` (last-value).
SUFFIXES: dict[str, Directive] = {"s": Directive.STRIDE, "lv": Directive.LAST_VALUE}

#: Directive -> assembler suffix.
SUFFIX_OF: dict[Directive, str] = {d: s for s, d in SUFFIXES.items()}
